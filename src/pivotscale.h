// PivotScale public API umbrella header.
//
// Typical use:
//
//   #include "pivotscale.h"
//   using namespace pivotscale;
//
//   Graph g = LoadGraph("graph.el");                 // or a generator
//   BigCount cliques = CountKCliquesSimple(g, 8);    // full pipeline
//
// Fine-grained control (choose orderings, subgraph structures, collect
// instrumentation) is available through the individual headers, all of
// which this file includes.
#ifndef PIVOTSCALE_PIVOTSCALE_H_
#define PIVOTSCALE_PIVOTSCALE_H_

#include "analysis/analysis.h"
#include "analysis/densest.h"
#include "analysis/ktruss.h"
#include "approx/approx_count.h"
#include "baselines/enumeration.h"
#include "baselines/gpu_pivot_model.h"
#include "baselines/pivoter_naive.h"
#include "graph/builder.h"
#include "graph/dag.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "graph/transform.h"
#include "order/approx_core_order.h"
#include "order/centrality_order.h"
#include "order/coloring_order.h"
#include "order/core_order.h"
#include "order/degree_order.h"
#include "order/heuristic.h"
#include "order/kcore_order.h"
#include "order/ordering.h"
#include "pivot/count.h"
#include "pivot/hybrid.h"
#include "pivot/maximal.h"
#include "pivot/pivoter.h"
#include "pivot/profile.h"
#include "pivot/pivotscale.h"
#include "sim/cache_sim.h"
#include "sim/mem_model.h"
#include "sim/scaling_sim.h"
#include "sim/work_trace.h"
#include "util/ascii_chart.h"
#include "util/binomial.h"
#include "util/timer.h"
#include "util/uint128.h"

#endif  // PIVOTSCALE_PIVOTSCALE_H_
