// Fixed worker pool behind a bounded admission queue: the counting half
// of the TCP serving layer.
//
// The epoll thread (src/net/event_loop.*) parses request lines and
// submits whole batches here; workers run them through a shared
// QueryEngine and hand the serialized NDJSON response block to a
// completion callback. Two properties carry the load-shedding story:
//
//  * Admission is TrySubmit, never blocking. When `queue_depth` batches
//    are already waiting the submit fails and the caller answers every
//    request in the batch with {"ok":false,"error":"overloaded"} right
//    away — bounded memory and bounded queueing delay instead of an
//    unbounded backlog.
//
//  * Each request may carry an absolute steady-clock deadline. Deadlines
//    are checked at batch-group boundaries (once per same-graph group,
//    just before its counting run): expired requests get
//    {"ok":false,"error":"deadline exceeded"} instead of being counted.
//    A request that expires *while* its group is counting still gets its
//    answer — counting runs are not interruptible.
//
// Telemetry (when a registry is configured): counters "net.batches",
// "net.requests", "net.timed_out"; gauge "net.queue_depth_high_water";
// span "net.batch" per executed batch.
#ifndef PIVOTSCALE_NET_WORKER_POOL_H_
#define PIVOTSCALE_NET_WORKER_POOL_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/query_engine.h"

namespace pivotscale {

class TelemetryRegistry;

// One request line of a batch, as admitted by the I/O thread. Lines that
// failed parsing (or were oversized) ride along unparsed so the response
// block preserves request order.
struct NetRequest {
  bool parsed = false;
  std::int64_t id = -1;
  std::string parse_error;  // response payload when !parsed
  ServiceQuery query;
  // Absolute deadline; time_point::max() when the request carried none.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
};

// A flushed batch from one connection.
struct NetBatch {
  std::uint64_t connection_id = 0;
  std::vector<NetRequest> requests;
};

// Runs one batch through the engine and returns the response block: one
// serialized NDJSON line per request, each '\n'-terminated, in request
// order. Parse errors become error lines; parsed requests are grouped by
// graph (the engine dedups each group into at most one counting run) with
// the deadline check at every group boundary. Exposed standalone so the
// stdin server and tests reuse the exact network semantics.
std::string ServeNetBatch(QueryEngine& engine,
                          std::vector<NetRequest>& requests,
                          TelemetryRegistry* telemetry);

struct WorkerPoolOptions {
  std::size_t queue_depth = 64;  // max batches waiting (not running)
  // Fixed worker-thread count. Clamped at construction to
  // [1, ThreadBudget::Global().capacity()] so serving concurrency and
  // per-run counting threads draw from one machine-wide budget (see
  // exec/thread_budget.h and docs/parallelism.md).
  int workers = 2;
  TelemetryRegistry* telemetry = nullptr;  // not owned; may be null
};

class WorkerPool {
 public:
  // `on_complete(connection_id, response_block)` fires on a worker thread
  // once per executed batch. Both `engine` and the callback must outlive
  // the pool.
  WorkerPool(QueryEngine* engine, WorkerPoolOptions options,
             std::function<void(std::uint64_t, std::string)> on_complete);

  // Drains and joins.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  // Admits a batch unless the queue is full; returns false (batch
  // untouched aside from the move) when the caller must shed it.
  bool TrySubmit(NetBatch&& batch);

  // Stops admission, waits for every queued batch to finish (completions
  // still fire), and joins the workers. Idempotent.
  void Drain();

  // Deepest the queue ever got (ops / tests).
  std::size_t queue_high_water() const;

 private:
  void WorkerMain();

  QueryEngine* engine_;
  WorkerPoolOptions options_;
  std::function<void(std::uint64_t, std::string)> on_complete_;

  mutable std::mutex mutex_;
  std::condition_variable work_ready_;
  std::deque<NetBatch> queue_;
  std::size_t high_water_ = 0;
  bool draining_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace pivotscale

#endif  // PIVOTSCALE_NET_WORKER_POOL_H_
