#include "net/worker_pool.h"

#include <algorithm>
#include <map>

#include "exec/thread_budget.h"
#include "service/protocol.h"
#include "util/check.h"
#include "util/telemetry.h"

namespace pivotscale {

std::string ServeNetBatch(QueryEngine& engine,
                          std::vector<NetRequest>& requests,
                          TelemetryRegistry* telemetry) {
  TelemetryRegistry::ScopedSpan span(telemetry, "net.batch");
  std::vector<std::string> responses(requests.size());

  // Group parseable requests by artifact, preserving first-appearance
  // order so the per-group deadline checks walk the batch front to back.
  std::map<std::string, std::vector<std::size_t>> by_graph;
  std::vector<std::string> group_order;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const NetRequest& req = requests[i];
    if (!req.parsed) {
      responses[i] = SerializeError(req.id, req.parse_error);
      continue;
    }
    auto [it, inserted] = by_graph.try_emplace(req.query.graph);
    if (inserted) group_order.push_back(req.query.graph);
    it->second.push_back(i);
  }

  std::uint64_t timed_out = 0;
  for (const std::string& graph : group_order) {
    const std::vector<std::size_t>& members = by_graph[graph];
    // The batch-group boundary: everything already past its deadline is
    // answered without counting; the rest run as one deduplicated group.
    const auto now = std::chrono::steady_clock::now();
    std::vector<ServiceQuery> live;
    std::vector<std::size_t> live_indices;
    live.reserve(members.size());
    for (std::size_t i : members) {
      if (requests[i].deadline <= now) {
        responses[i] = SerializeError(requests[i].id, "deadline exceeded");
        ++timed_out;
      } else {
        live.push_back(requests[i].query);
        live_indices.push_back(i);
      }
    }
    if (live.empty()) continue;
    const std::vector<ServiceResult> results = engine.RunBatch(live);
    // The engine's contract: results align positionally with the queries.
    CHECK_EQ(results.size(), live_indices.size());
    for (std::size_t j = 0; j < live_indices.size(); ++j)
      responses[live_indices[j]] =
          SerializeResponse(requests[live_indices[j]].id, results[j]);
  }

  if (telemetry != nullptr) {
    telemetry->AddCounter("net.batches", 1);
    telemetry->AddCounter("net.requests", requests.size());
    if (timed_out > 0) telemetry->AddCounter("net.timed_out", timed_out);
  }

  std::string block;
  for (std::string& line : responses) {
    block += line;
    block += '\n';
  }
  return block;
}

WorkerPool::WorkerPool(
    QueryEngine* engine, WorkerPoolOptions options,
    std::function<void(std::uint64_t, std::string)> on_complete)
    : engine_(engine),
      options_(options),
      on_complete_(std::move(on_complete)) {
  CHECK(engine_ != nullptr) << "WorkerPool needs a QueryEngine";
  CHECK(on_complete_) << "WorkerPool needs a completion callback";
  // Serving concurrency draws from the same machine as counting: cap the
  // worker count at the shared budget's capacity so `workers` x counting
  // threads cannot be provisioned past the core count. Each worker's
  // counting runs then acquire their threads as executor leases, which
  // shrink dynamically when several workers count at once.
  options_.workers = std::clamp(options_.workers, 1,
                                ThreadBudget::Global().capacity());
  options_.queue_depth = std::max<std::size_t>(1, options_.queue_depth);
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int w = 0; w < options_.workers; ++w)
    workers_.emplace_back([this] { WorkerMain(); });
}

WorkerPool::~WorkerPool() { Drain(); }

bool WorkerPool::TrySubmit(NetBatch&& batch) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_ || queue_.size() >= options_.queue_depth) return false;
    queue_.push_back(std::move(batch));
    DCHECK_LE(queue_.size(), options_.queue_depth);
    high_water_ = std::max(high_water_, queue_.size());
    if (options_.telemetry != nullptr)
      options_.telemetry->SetGauge("net.queue_depth_high_water",
                                   static_cast<double>(high_water_));
  }
  work_ready_.notify_one();
  return true;
}

void WorkerPool::Drain() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    draining_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_)
    if (worker.joinable()) worker.join();
}

std::size_t WorkerPool::queue_high_water() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return high_water_;
}

void WorkerPool::WorkerMain() {
  for (;;) {
    NetBatch batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock,
                       [this] { return draining_ || !queue_.empty(); });
      if (queue_.empty()) return;  // draining and nothing left
      batch = std::move(queue_.front());
      queue_.pop_front();
    }
    std::string block =
        ServeNetBatch(*engine_, batch.requests, options_.telemetry);
    on_complete_(batch.connection_id, std::move(block));
  }
}

}  // namespace pivotscale
