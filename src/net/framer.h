// Incremental NDJSON line framing shared by the stdin server
// (pivotscale_serve) and the TCP serving layer (src/net/event_loop.*).
//
// A framer turns an arbitrary byte stream into protocol lines:
//   * lines are terminated by '\n'; a trailing '\r' is stripped so CRLF
//     clients (telnet, Windows netcat) speak the same protocol;
//   * an empty line (including a bare "\r\n") is the batch-flush marker
//     and comes out as an empty FramedLine;
//   * a line longer than max_line_bytes is *not* buffered: its bytes are
//     discarded as they arrive and the line surfaces with oversized =
//     true once its terminator shows up, so a hostile or broken client
//     cannot grow the server's memory without bound. Framing resumes
//     cleanly on the next line.
// Feed() may be called with any chunking — byte-at-a-time or megabytes —
// and Finish() flushes a final unterminated line at EOF.
#ifndef PIVOTSCALE_NET_FRAMER_H_
#define PIVOTSCALE_NET_FRAMER_H_

#include <cstddef>
#include <string>
#include <vector>

namespace pivotscale {

// One framed protocol line. `text` has the terminator (and any trailing
// '\r') removed; when `oversized` is set the content was discarded and
// `text` is empty.
struct FramedLine {
  std::string text;
  bool oversized = false;
};

class ReadLineFramer {
 public:
  static constexpr std::size_t kDefaultMaxLineBytes = std::size_t{1} << 20;

  explicit ReadLineFramer(
      std::size_t max_line_bytes = kDefaultMaxLineBytes);

  // Consumes `size` bytes, appending every completed line to `out`.
  void Feed(const char* data, std::size_t size,
            std::vector<FramedLine>* out);

  // Flushes a final line that ended at EOF without a terminator. Returns
  // false (and leaves `out` untouched) when nothing was pending. Resets
  // the framer either way.
  bool Finish(FramedLine* out);

  std::size_t max_line_bytes() const { return max_line_bytes_; }
  std::size_t buffered_bytes() const { return current_.size(); }

 private:
  std::size_t max_line_bytes_;
  std::string current_;
  bool dropping_ = false;  // current line exceeded the limit
};

}  // namespace pivotscale

#endif  // PIVOTSCALE_NET_FRAMER_H_
