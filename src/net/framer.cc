#include "net/framer.h"

#include <cstring>

#include "util/check.h"

namespace pivotscale {

ReadLineFramer::ReadLineFramer(std::size_t max_line_bytes)
    : max_line_bytes_(max_line_bytes == 0 ? 1 : max_line_bytes) {}

void ReadLineFramer::Feed(const char* data, std::size_t size,
                          std::vector<FramedLine>* out) {
  CHECK(out != nullptr);
  DCHECK(data != nullptr || size == 0);
  std::size_t pos = 0;
  while (pos < size) {
    const char* nl = static_cast<const char*>(
        std::memchr(data + pos, '\n', size - pos));
    const std::size_t end = nl == nullptr
                                ? size
                                : static_cast<std::size_t>(nl - data);
    if (!dropping_) {
      const std::size_t take = end - pos;
      if (current_.size() + take > max_line_bytes_) {
        // Too long even before the terminator: stop buffering and eat
        // the rest of the line as it streams in.
        dropping_ = true;
        current_.clear();
        current_.shrink_to_fit();
      } else {
        current_.append(data + pos, take);
      }
    }
    if (nl == nullptr) break;  // terminator not in this chunk yet
    FramedLine line;
    if (dropping_) {
      line.oversized = true;
      dropping_ = false;
    } else {
      if (!current_.empty() && current_.back() == '\r')
        current_.pop_back();
      line.text = std::move(current_);
      current_.clear();
    }
    out->push_back(std::move(line));
    pos = end + 1;
  }
}

bool ReadLineFramer::Finish(FramedLine* out) {
  const bool pending = dropping_ || !current_.empty();
  if (pending) {
    FramedLine line;
    if (dropping_) {
      line.oversized = true;
    } else {
      if (!current_.empty() && current_.back() == '\r')
        current_.pop_back();
      line.text = std::move(current_);
    }
    *out = std::move(line);
  }
  current_.clear();
  dropping_ = false;
  return pending;
}

}  // namespace pivotscale
