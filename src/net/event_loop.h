// Epoll-based TCP front end for the clique-query service.
//
// One I/O thread owns everything socket-shaped: a non-blocking listener,
// per-connection read/write buffers with NDJSON line framing
// (net/framer.*, protocol of src/service/protocol.*), and an eventfd the
// worker pool uses to hand finished response blocks back. Counting never
// happens on the I/O thread — a blank line (or read-side EOF) flushes the
// connection's pending lines as one NetBatch into the bounded admission
// queue (net/worker_pool.*), and a full queue sheds the batch with
// immediate {"ok":false,"error":"overloaded"} lines instead of buffering.
//
// Robustness model:
//  * accept beyond --max-connections: the extra socket is closed right
//    away (counted as net.rejected) rather than admitted;
//  * oversized request lines are discarded by the framer and answered
//    with a per-line error — client memory cannot grow the server;
//  * SIGPIPE is ignored (writes use MSG_NOSIGNAL) and half-closed
//    connections flush their final batch, get their responses, and are
//    reaped once the write buffer empties;
//  * RequestDrain() — wired to SIGTERM/SIGINT by pivotscale_served — is
//    async-signal-safe: stop accepting, stop reading, finish every
//    in-flight batch, flush every write buffer, then Run() returns.
//
// Telemetry: counters "net.accepted", "net.rejected", "net.shed",
// "net.closed" and the "net.active" gauge, plus the worker-pool records
// ("net.batches", "net.requests", "net.timed_out",
// "net.queue_depth_high_water", "net.batch" spans).
#ifndef PIVOTSCALE_NET_EVENT_LOOP_H_
#define PIVOTSCALE_NET_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "net/framer.h"
#include "net/worker_pool.h"
#include "service/query_engine.h"

namespace pivotscale {

struct NetServerOptions {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;     // 0 = ephemeral; see port() after Start()
  int max_connections = 1024;
  std::size_t queue_depth = 64;
  int workers = 2;
  std::size_t max_line_bytes = ReadLineFramer::kDefaultMaxLineBytes;
  TelemetryRegistry* telemetry = nullptr;  // not owned; may be null
};

class NetServer {
 public:
  // `engine` must outlive the server.
  NetServer(QueryEngine* engine, NetServerOptions options);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  // Binds, listens, and spawns the worker pool; throws std::runtime_error
  // on socket failures. After Start(), port() returns the bound port.
  void Start();
  std::uint16_t port() const { return port_; }

  // Runs the event loop on the calling thread until a drain completes.
  void Run();

  // Triggers graceful drain; safe from any thread and from a signal
  // handler (atomic store + eventfd write only).
  void RequestDrain();

 private:
  struct Connection {
    int fd = -1;
    ReadLineFramer framer;
    std::vector<NetRequest> pending;  // lines awaiting the batch flush
    std::string out;                  // unwritten response bytes
    std::size_t out_offset = 0;
    std::uint64_t inflight = 0;       // batches in the pool
    bool read_closed = false;         // peer EOF or draining
    bool want_write = false;          // EPOLLOUT armed
    explicit Connection(std::size_t max_line_bytes)
        : framer(max_line_bytes) {}
  };

  void HandleAccept();
  void HandleReadable(std::uint64_t conn_id);
  void HandleWritable(std::uint64_t conn_id);
  void HandleCompletions();
  void ProcessLine(std::uint64_t conn_id, Connection& conn,
                   FramedLine&& line);
  void FlushBatch(std::uint64_t conn_id, Connection& conn);
  void TryWrite(std::uint64_t conn_id, Connection& conn);
  void CloseIfFinished(std::uint64_t conn_id, Connection& conn);
  void DestroyConnection(std::uint64_t conn_id);
  void BeginDrain();
  void UpdateEpoll(Connection& conn, std::uint64_t conn_id);
  void AddCounter(const char* name, std::uint64_t delta);
  void SetActiveGauge();

  QueryEngine* engine_;
  NetServerOptions options_;
  std::unique_ptr<WorkerPool> pool_;

  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  int wake_fd_ = -1;
  std::uint16_t port_ = 0;

  std::uint64_t next_conn_id_ = 2;  // 0 = listener, 1 = wake eventfd
  std::map<std::uint64_t, std::unique_ptr<Connection>> connections_;

  std::atomic<bool> drain_requested_{false};
  bool draining_ = false;

  std::mutex completions_mutex_;
  std::vector<std::pair<std::uint64_t, std::string>> completions_;
};

}  // namespace pivotscale

#endif  // PIVOTSCALE_NET_EVENT_LOOP_H_
