#include "net/event_loop.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <stdexcept>

#include "service/protocol.h"
#include "util/check.h"
#include "util/telemetry.h"

namespace pivotscale {

namespace {

constexpr std::uint64_t kListenerId = 0;
constexpr std::uint64_t kWakeId = 1;

[[noreturn]] void ThrowErrno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " +
                           std::strerror(errno));
}

}  // namespace

NetServer::NetServer(QueryEngine* engine, NetServerOptions options)
    : engine_(engine), options_(std::move(options)) {}

NetServer::~NetServer() {
  if (pool_ != nullptr) pool_->Drain();
  for (auto& [id, conn] : connections_)
    if (conn->fd >= 0) ::close(conn->fd);
  connections_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void NetServer::Start() {
  CHECK(engine_ != nullptr) << "NetServer needs a QueryEngine";
  CHECK(listen_fd_ < 0) << "NetServer::Start called twice";
  // Dead clients must surface as EPIPE from send(), not kill the process.
  ::signal(SIGPIPE, SIG_IGN);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) ThrowErrno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(),
                  &addr.sin_addr) != 1)
    throw std::runtime_error("invalid bind address " +
                             options_.bind_address);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) < 0)
    ThrowErrno("bind");
  if (::listen(listen_fd_, 128) < 0) ThrowErrno("listen");

  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) < 0)
    ThrowErrno("getsockname");
  port_ = ntohs(addr.sin_port);

  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) ThrowErrno("eventfd");

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) ThrowErrno("epoll_create1");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerId;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) < 0)
    ThrowErrno("epoll_ctl(listener)");
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeId;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0)
    ThrowErrno("epoll_ctl(eventfd)");

  WorkerPoolOptions pool_options;
  pool_options.queue_depth = options_.queue_depth;
  pool_options.workers = options_.workers;
  pool_options.telemetry = options_.telemetry;
  pool_ = std::make_unique<WorkerPool>(
      engine_, pool_options,
      [this](std::uint64_t conn_id, std::string block) {
        {
          std::lock_guard<std::mutex> lock(completions_mutex_);
          completions_.emplace_back(conn_id, std::move(block));
        }
        const std::uint64_t tick = 1;
        [[maybe_unused]] ssize_t n =
            ::write(wake_fd_, &tick, sizeof(tick));
      });
}

void NetServer::RequestDrain() {
  drain_requested_.store(true, std::memory_order_release);
  if (wake_fd_ >= 0) {
    const std::uint64_t tick = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &tick, sizeof(tick));
  }
}

void NetServer::Run() {
  if (epoll_fd_ < 0)
    throw std::logic_error("NetServer::Run before Start");
  epoll_event events[64];
  for (;;) {
    if (drain_requested_.load(std::memory_order_acquire) && !draining_)
      BeginDrain();
    HandleCompletions();
    if (draining_ && connections_.empty()) break;

    const int n = ::epoll_wait(epoll_fd_, events, 64, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      ThrowErrno("epoll_wait");
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t id = events[i].data.u64;
      if (id == kListenerId) {
        HandleAccept();
      } else if (id == kWakeId) {
        std::uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
      } else {
        if (events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR))
          HandleReadable(id);
        if (events[i].events & EPOLLOUT) HandleWritable(id);
      }
    }
  }
  pool_->Drain();
}

void NetServer::BeginDrain() {
  draining_ = true;
  if (listen_fd_ >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Stop reading everywhere; lines never admitted to the queue are
  // dropped, in-flight batches and buffered responses still flush.
  std::vector<std::uint64_t> ids;
  ids.reserve(connections_.size());
  for (auto& [id, conn] : connections_) ids.push_back(id);
  for (std::uint64_t id : ids) {
    auto it = connections_.find(id);
    if (it == connections_.end()) continue;
    Connection& conn = *it->second;
    conn.read_closed = true;
    conn.pending.clear();
    UpdateEpoll(conn, id);
    CloseIfFinished(id, conn);
  }
}

void NetServer::HandleAccept() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
          errno == ECONNABORTED)
        return;
      return;  // transient accept failure; the loop keeps serving
    }
    if (draining_ ||
        connections_.size() >=
            static_cast<std::size_t>(options_.max_connections)) {
      ::close(fd);
      AddCounter("net.rejected", 1);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const std::uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<Connection>(options_.max_line_bytes);
    conn->fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      continue;
    }
    connections_.emplace(id, std::move(conn));
    AddCounter("net.accepted", 1);
    SetActiveGauge();
  }
}

void NetServer::HandleReadable(std::uint64_t conn_id) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  Connection& conn = *it->second;
  if (conn.read_closed) return;

  char buf[16384];
  std::vector<FramedLine> lines;
  for (;;) {
    const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      lines.clear();
      conn.framer.Feed(buf, static_cast<std::size_t>(n), &lines);
      for (FramedLine& line : lines) {
        ProcessLine(conn_id, conn, std::move(line));
        if (connections_.find(conn_id) == connections_.end()) return;
      }
      continue;
    }
    if (n == 0) {
      // Peer EOF (including shutdown(SHUT_WR) half-close): a final
      // unterminated line still counts, and EOF flushes the batch just
      // like the stdin server.
      FramedLine last;
      if (conn.framer.Finish(&last))
        ProcessLine(conn_id, conn, std::move(last));
      if (connections_.find(conn_id) == connections_.end()) return;
      FlushBatch(conn_id, conn);
      if (connections_.find(conn_id) == connections_.end()) return;
      conn.read_closed = true;
      UpdateEpoll(conn, conn_id);
      CloseIfFinished(conn_id, conn);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    DestroyConnection(conn_id);  // ECONNRESET and friends
    return;
  }
}

void NetServer::ProcessLine(std::uint64_t conn_id, Connection& conn,
                            FramedLine&& line) {
  if (line.oversized) {
    NetRequest req;
    req.parse_error = "line exceeds " +
                      std::to_string(options_.max_line_bytes) + " bytes";
    conn.pending.push_back(std::move(req));
    return;
  }
  if (line.text.empty()) {
    FlushBatch(conn_id, conn);
    return;
  }
  NetRequest req;
  try {
    ProtocolRequest parsed = ParseRequest(line.text);
    req.parsed = true;
    req.id = parsed.id;
    req.query = std::move(parsed.query);
    if (parsed.deadline_ms >= 0)
      req.deadline = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(parsed.deadline_ms);
  } catch (const std::exception& e) {
    req.parse_error = e.what();
  }
  conn.pending.push_back(std::move(req));
}

void NetServer::FlushBatch(std::uint64_t conn_id, Connection& conn) {
  if (conn.pending.empty()) return;
  NetBatch batch;
  batch.connection_id = conn_id;
  batch.requests = std::move(conn.pending);
  conn.pending.clear();
  if (pool_->TrySubmit(std::move(batch))) {
    ++conn.inflight;
    return;
  }
  // Admission queue full: shed the whole batch with immediate errors
  // instead of queueing it — bounded memory, bounded latency.
  AddCounter("net.shed", batch.requests.size());
  for (const NetRequest& req : batch.requests) {
    conn.out += SerializeError(req.id, "overloaded");
    conn.out += '\n';
  }
  TryWrite(conn_id, conn);
}

void NetServer::HandleWritable(std::uint64_t conn_id) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  Connection& conn = *it->second;
  TryWrite(conn_id, conn);
  it = connections_.find(conn_id);
  if (it != connections_.end()) CloseIfFinished(conn_id, *it->second);
}

void NetServer::TryWrite(std::uint64_t conn_id, Connection& conn) {
  DCHECK_LE(conn.out_offset, conn.out.size());
  while (conn.out_offset < conn.out.size()) {
    const ssize_t n =
        ::send(conn.fd, conn.out.data() + conn.out_offset,
               conn.out.size() - conn.out_offset, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_offset += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn.want_write) {
        conn.want_write = true;
        UpdateEpoll(conn, conn_id);
      }
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    DestroyConnection(conn_id);  // EPIPE / ECONNRESET: peer is gone
    return;
  }
  conn.out.clear();
  conn.out_offset = 0;
  if (conn.want_write) {
    conn.want_write = false;
    UpdateEpoll(conn, conn_id);
  }
}

void NetServer::HandleCompletions() {
  std::vector<std::pair<std::uint64_t, std::string>> done;
  {
    std::lock_guard<std::mutex> lock(completions_mutex_);
    done.swap(completions_);
  }
  for (auto& [conn_id, block] : done) {
    auto it = connections_.find(conn_id);
    if (it == connections_.end()) continue;  // connection died mid-batch
    Connection& conn = *it->second;
    // A completion can only come from a batch this connection submitted;
    // an underflow means the inflight bookkeeping double-counted and the
    // drain logic would close a connection with work still pending.
    CHECK_GT(conn.inflight, 0)
        << "NetServer: completion for connection " << conn_id
        << " with no inflight batch";
    --conn.inflight;
    conn.out += block;
    TryWrite(conn_id, conn);
    it = connections_.find(conn_id);
    if (it != connections_.end()) CloseIfFinished(conn_id, *it->second);
  }
}

void NetServer::CloseIfFinished(std::uint64_t conn_id, Connection& conn) {
  if (conn.read_closed && conn.inflight == 0 && conn.pending.empty() &&
      conn.out_offset >= conn.out.size())
    DestroyConnection(conn_id);
}

void NetServer::DestroyConnection(std::uint64_t conn_id) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second->fd, nullptr);
  ::close(it->second->fd);
  connections_.erase(it);
  AddCounter("net.closed", 1);
  SetActiveGauge();
}

void NetServer::UpdateEpoll(Connection& conn, std::uint64_t conn_id) {
  epoll_event ev{};
  ev.events = (conn.read_closed ? 0u : static_cast<unsigned>(EPOLLIN)) |
              (conn.want_write ? static_cast<unsigned>(EPOLLOUT) : 0u);
  ev.data.u64 = conn_id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

void NetServer::AddCounter(const char* name, std::uint64_t delta) {
  if (options_.telemetry != nullptr)
    options_.telemetry->AddCounter(name, delta);
}

void NetServer::SetActiveGauge() {
  if (options_.telemetry != nullptr)
    options_.telemetry->SetGauge("net.active",
                                 static_cast<double>(connections_.size()));
}

}  // namespace pivotscale
