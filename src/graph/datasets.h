// The evaluation dataset suite: deterministic analogs of the paper's
// Table I graphs.
//
// The original suite (DBLP ... Friendster) is not redistributable inside
// this environment, so each entry here is a seeded synthetic graph built to
// exercise the same topology class as its namesake (see DESIGN.md):
//
//   dblp-like        co-authorship: thousands of small overlapping cliques
//   skitter-like     power-law internet topology with mid-size cliques
//   baidu-like       web-link graph: skewed but clique-poor (degree wins)
//   wikitalk-like    hub-dominated broadcast graph, moderate cliques
//   orkut-like       dense social network with community structure
//   livejournal-like clique-rich social network (combinatorial explosion)
//   webedu-like      very sparse web graph with a single huge clique
//   friendster-like  largest graph; high degree, relatively clique-poor
//
// `scale` multiplies vertex counts (1.0 is the default bench size; tests use
// smaller scales). All generation is deterministic per (name, scale).
#ifndef PIVOTSCALE_GRAPH_DATASETS_H_
#define PIVOTSCALE_GRAPH_DATASETS_H_

#include <string>
#include <vector>

#include "graph/graph.h"

namespace pivotscale {

struct Dataset {
  std::string name;          // e.g. "dblp-like"
  std::string paper_analog;  // e.g. "DBLP"
  std::string description;
  Graph graph;               // undirected, simple
};

// Names in the canonical (Table I) order.
const std::vector<std::string>& DatasetNames();

// Builds one dataset by name; throws std::invalid_argument on unknown
// names. scale in (0, 4] multiplies the vertex count.
Dataset MakeDataset(const std::string& name, double scale = 1.0);

// Builds the full eight-graph suite in Table I order.
std::vector<Dataset> MakeDatasetSuite(double scale = 1.0);

}  // namespace pivotscale

#endif  // PIVOTSCALE_GRAPH_DATASETS_H_
