#include "graph/graph.h"

#include <algorithm>
#include <stdexcept>

#include "util/check.h"

namespace pivotscale {

Graph::Graph(std::vector<EdgeId> offsets, std::vector<NodeId> neighbors,
             bool undirected)
    : num_nodes_(offsets.empty()
                     ? 0
                     : static_cast<NodeId>(offsets.size() - 1)),
      undirected_(undirected),
      offsets_(std::move(offsets)),
      neighbors_(std::move(neighbors)) {
  if (offsets_.empty()) offsets_.push_back(0);
  if (offsets_.back() != neighbors_.size())
    throw std::invalid_argument(
        "Graph: offsets.back() != neighbors.size()");
  // Internal contract, not input validation: every producer of CSR arrays
  // (builder, generators, directionalize, the validated file readers) must
  // hand over monotone offsets. A violation here means counts upstream
  // would silently read a negative-length row — fail fast instead.
  for (NodeId u = 0; u < num_nodes_; ++u)
    CHECK_LE(offsets_[u], offsets_[u + 1])
        << "Graph: corrupt CSR offsets (decreasing at vertex " << u << ")";
}

bool Graph::HasEdge(NodeId u, NodeId v) const {
  const auto nbrs = Neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

EdgeId Graph::MaxDegree() const {
  EdgeId max_deg = 0;
  for (NodeId u = 0; u < num_nodes_; ++u)
    max_deg = std::max(max_deg, Degree(u));
  return max_deg;
}

}  // namespace pivotscale
