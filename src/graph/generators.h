// Synthetic graph generators.
//
// The evaluation suite cannot ship the SNAP/Konect graphs the paper uses, so
// datasets.h composes these generators into deterministic analogs of each
// input graph (see DESIGN.md, "Environment substitutions"). The generators
// are also the workload source for the property-based tests.
//
// All generators are seeded and deterministic. They return edge lists;
// callers normalize with BuildGraph (symmetrize + dedup + de-loop).
#ifndef PIVOTSCALE_GRAPH_GENERATORS_H_
#define PIVOTSCALE_GRAPH_GENERATORS_H_

#include <cstdint>

#include "graph/graph.h"

namespace pivotscale {

// --- Random models -------------------------------------------------------

// Erdos-Renyi G(n, p): each unordered pair is an edge independently with
// probability p. O(n^2) sampling; use for n up to a few thousand (tests).
EdgeList ErdosRenyi(NodeId n, double p, std::uint64_t seed);

// G(n, m): exactly m distinct undirected edges sampled uniformly.
EdgeList GnM(NodeId n, EdgeId m, std::uint64_t seed);

// RMAT (Chakrabarti et al.) power-law graph over 2^scale vertices with
// about avg_degree * 2^scale edges and partition probabilities (a, b, c):
// the skewed-degree model used by Graph500 and the GAP benchmark suite.
EdgeList Rmat(int scale, double avg_degree, double a, double b, double c,
              std::uint64_t seed);

// Convenience RMAT with Graph500 constants a=0.57, b=c=0.19.
EdgeList Rmat(int scale, double avg_degree, std::uint64_t seed);

// Barabasi-Albert preferential attachment: each new vertex attaches to
// `attach` existing vertices chosen proportionally to degree.
EdgeList BarabasiAlbert(NodeId n, NodeId attach, std::uint64_t seed);

// Star-heavy graph: `hubs` high-degree centers each connected to a random
// subset of leaves (Wiki-Talk-like broadcast topology).
EdgeList StarHeavy(NodeId n, NodeId hubs, double leaf_fraction,
                   std::uint64_t seed);

// Watts-Strogatz small world: a ring lattice where each vertex connects to
// its `k_nearest` nearest neighbors (k_nearest even), with each edge
// endpoint rewired uniformly with probability `rewire_p`. High clustering
// at low rewire_p, random-graph-like at rewire_p = 1.
EdgeList WattsStrogatz(NodeId n, NodeId k_nearest, double rewire_p,
                       std::uint64_t seed);

// --- Community / clique structure ----------------------------------------

// Overlapping-community (affiliation) model: `communities` vertex subsets of
// size in [min_size, max_size], members drawn uniformly; within a community
// each pair is an edge with probability `intra_p`. High intra_p plants
// near-cliques, which is how social/co-authorship clique structure arises.
EdgeList CommunityModel(NodeId n, NodeId communities, NodeId min_size,
                        NodeId max_size, double intra_p,
                        std::uint64_t seed);

// Appends `count` planted cliques with sizes uniform in [min_size, max_size]
// over vertex ids in [0, n) to `edges`. Cliques overlap freely.
void PlantCliques(EdgeList* edges, NodeId n, NodeId count, NodeId min_size,
                  NodeId max_size, std::uint64_t seed);

// Relabels vertices by a random permutation of [0, n). Generators place
// structure (hot regions, planted cliques) at low ids for overlap control;
// shuffling removes that id locality, matching real datasets whose vertex
// ids carry no structural meaning.
void ShuffleVertexIds(EdgeList* edges, NodeId n, std::uint64_t seed);

// --- Reference graphs with closed-form clique counts ---------------------

EdgeList CompleteGraph(NodeId n);             // K_n: C(n, k) k-cliques
EdgeList PathGraph(NodeId n);                 // no cliques beyond edges
EdgeList CycleGraph(NodeId n);                // ditto (n >= 4)
EdgeList StarGraph(NodeId n);                 // center 0, leaves 1..n-1
EdgeList CompleteBipartite(NodeId a, NodeId b);  // triangle-free
// Turán graph T(n, r): complete r-partite with balanced parts; the largest
// clique has exactly r vertices.
EdgeList TuranGraph(NodeId n, NodeId r);

}  // namespace pivotscale

#endif  // PIVOTSCALE_GRAPH_GENERATORS_H_
