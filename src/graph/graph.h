// Immutable CSR (compressed sparse row) graph.
//
// The whole pipeline operates on this one representation: undirected inputs
// store each edge in both directions; directionalized DAGs store each edge
// once, from lower to higher ordering rank. Adjacency lists are sorted by
// vertex id, which the counting kernels rely on for merge-style
// intersections.
#ifndef PIVOTSCALE_GRAPH_GRAPH_H_
#define PIVOTSCALE_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "util/check.h"

namespace pivotscale {

// Vertex identifier. 32 bits covers every graph this repository targets
// (the paper's largest input has 65.6 M vertices).
using NodeId = std::uint32_t;

// Edge index into the CSR neighbor array.
using EdgeId = std::uint64_t;

// An edge as read from input or produced by a generator.
using Edge = std::pair<NodeId, NodeId>;
using EdgeList = std::vector<Edge>;

class Graph {
 public:
  Graph() = default;

  // Takes ownership of prebuilt CSR arrays. offsets.size() must equal
  // num_nodes + 1 and offsets.back() must equal neighbors.size().
  // `undirected` records whether the CSR stores both directions of each
  // edge (affects NumUndirectedEdges and sanity checks only).
  Graph(std::vector<EdgeId> offsets, std::vector<NodeId> neighbors,
        bool undirected);

  NodeId NumNodes() const { return num_nodes_; }

  // Number of directed adjacency entries (for an undirected graph this is
  // 2x the edge count).
  EdgeId NumDirectedEdges() const { return neighbors_.size(); }

  // Number of undirected edges. Only meaningful when undirected() is true.
  EdgeId NumUndirectedEdges() const { return neighbors_.size() / 2; }

  bool undirected() const { return undirected_; }

  EdgeId Degree(NodeId u) const {
    DCHECK_LT(u, num_nodes_);
    return offsets_[u + 1] - offsets_[u];
  }

  // Out-neighbors of u, sorted ascending by id.
  std::span<const NodeId> Neighbors(NodeId u) const {
    DCHECK_LT(u, num_nodes_);
    return {neighbors_.data() + offsets_[u],
            static_cast<std::size_t>(offsets_[u + 1] - offsets_[u])};
  }

  // Binary search for edge (u, v). O(log Degree(u)).
  bool HasEdge(NodeId u, NodeId v) const;

  // Average degree: directed entries / nodes (equals the paper's delta for
  // undirected graphs since each edge contributes twice over 2x... the paper
  // reports |E|/|V| with |E| counted once; this matches that convention).
  double AverageDegree() const {
    if (num_nodes_ == 0) return 0;
    const double edges = undirected_
                             ? static_cast<double>(NumUndirectedEdges())
                             : static_cast<double>(NumDirectedEdges());
    return edges / static_cast<double>(num_nodes_);
  }

  // Largest degree over all vertices (0 for the empty graph).
  EdgeId MaxDegree() const;

  // Heap bytes held by the CSR arrays.
  std::size_t HeapBytes() const {
    return offsets_.capacity() * sizeof(EdgeId) +
           neighbors_.capacity() * sizeof(NodeId);
  }

  const std::vector<EdgeId>& offsets() const { return offsets_; }
  const std::vector<NodeId>& neighbor_array() const { return neighbors_; }

 private:
  NodeId num_nodes_ = 0;
  bool undirected_ = true;
  std::vector<EdgeId> offsets_;    // size num_nodes_ + 1
  std::vector<NodeId> neighbors_;  // size offsets_.back()
};

}  // namespace pivotscale

#endif  // PIVOTSCALE_GRAPH_GRAPH_H_
