#include "graph/transform.h"

#include <algorithm>
#include <vector>

#include "graph/builder.h"
#include "order/kcore_order.h"

namespace pivotscale {

InducedResult InduceSubgraph(const Graph& g,
                             std::span<const NodeId> vertices) {
  constexpr NodeId kAbsent = ~NodeId{0};
  std::vector<NodeId> new_id(g.NumNodes(), kAbsent);
  InducedResult result;
  for (NodeId v : vertices) {
    if (new_id[v] != kAbsent) continue;  // duplicate
    new_id[v] = static_cast<NodeId>(result.original_ids.size());
    result.original_ids.push_back(v);
  }

  EdgeList edges;
  for (NodeId old_u : result.original_ids) {
    for (NodeId old_v : g.Neighbors(old_u)) {
      if (new_id[old_v] == kAbsent) continue;
      if (old_u < old_v)  // emit each undirected edge once
        edges.emplace_back(new_id[old_u], new_id[old_v]);
    }
  }
  result.graph = BuildUndirected(
      std::move(edges), static_cast<NodeId>(result.original_ids.size()));
  return result;
}

InducedResult ExtractKCore(const Graph& g, EdgeId k) {
  const std::vector<EdgeId> coreness = CoreDecomposition(g);
  std::vector<NodeId> survivors;
  for (NodeId v = 0; v < g.NumNodes(); ++v)
    if (coreness[v] >= k) survivors.push_back(v);
  return InduceSubgraph(g, survivors);
}

std::vector<NodeId> ConnectedComponents(const Graph& g) {
  constexpr NodeId kUnvisited = ~NodeId{0};
  const NodeId n = g.NumNodes();
  std::vector<NodeId> component(n, kUnvisited);
  std::vector<NodeId> stack;
  NodeId next_component = 0;
  for (NodeId start = 0; start < n; ++start) {
    if (component[start] != kUnvisited) continue;
    component[start] = next_component;
    stack.push_back(start);
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      for (NodeId v : g.Neighbors(u)) {
        if (component[v] == kUnvisited) {
          component[v] = next_component;
          stack.push_back(v);
        }
      }
    }
    ++next_component;
  }
  return component;
}

InducedResult LargestConnectedComponent(const Graph& g) {
  const std::vector<NodeId> component = ConnectedComponents(g);
  NodeId num_components = 0;
  for (NodeId c : component)
    num_components = std::max(num_components, static_cast<NodeId>(c + 1));
  std::vector<NodeId> sizes(num_components, 0);
  for (NodeId c : component) ++sizes[c];
  const NodeId best = static_cast<NodeId>(
      std::max_element(sizes.begin(), sizes.end()) - sizes.begin());

  std::vector<NodeId> members;
  for (NodeId v = 0; v < g.NumNodes(); ++v)
    if (component[v] == best) members.push_back(v);
  return InduceSubgraph(g, members);
}

Graph DisjointUnion(const Graph& a, const Graph& b) {
  EdgeList edges;
  const NodeId offset = a.NumNodes();
  for (NodeId u = 0; u < a.NumNodes(); ++u)
    for (NodeId v : a.Neighbors(u))
      if (u < v) edges.emplace_back(u, v);
  for (NodeId u = 0; u < b.NumNodes(); ++u)
    for (NodeId v : b.Neighbors(u))
      if (u < v) edges.emplace_back(u + offset, v + offset);
  return BuildUndirected(std::move(edges), offset + b.NumNodes());
}

}  // namespace pivotscale
