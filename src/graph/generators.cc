#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

#include "util/rng.h"

namespace pivotscale {

EdgeList ErdosRenyi(NodeId n, double p, std::uint64_t seed) {
  Rng rng(seed);
  EdgeList edges;
  if (p > 0 && n > 1)
    edges.reserve(static_cast<std::size_t>(p * n * (n - 1) / 2 * 1.1));
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = u + 1; v < n; ++v)
      if (rng.Chance(p)) edges.emplace_back(u, v);
  return edges;
}

EdgeList GnM(NodeId n, EdgeId m, std::uint64_t seed) {
  if (n < 2) return {};
  const EdgeId max_edges = static_cast<EdgeId>(n) * (n - 1) / 2;
  if (m > max_edges)
    throw std::invalid_argument("GnM: m exceeds possible edges");
  Rng rng(seed);
  std::set<Edge> chosen;
  while (chosen.size() < m) {
    NodeId u = static_cast<NodeId>(rng.Below(n));
    NodeId v = static_cast<NodeId>(rng.Below(n));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    chosen.emplace(u, v);
  }
  return EdgeList(chosen.begin(), chosen.end());
}

EdgeList Rmat(int scale, double avg_degree, double a, double b, double c,
              std::uint64_t seed) {
  if (scale < 1 || scale > 30)
    throw std::invalid_argument("Rmat: scale out of range");
  const double d = 1.0 - a - b - c;
  if (a < 0 || b < 0 || c < 0 || d < 0)
    throw std::invalid_argument("Rmat: probabilities must sum to <= 1");
  const NodeId n = NodeId{1} << scale;
  const EdgeId m =
      static_cast<EdgeId>(avg_degree * static_cast<double>(n) / 2.0);
  Rng rng(seed);
  EdgeList edges;
  edges.reserve(m);
  for (EdgeId i = 0; i < m; ++i) {
    NodeId u = 0, v = 0;
    for (int bit = scale - 1; bit >= 0; --bit) {
      const double r = rng.NextDouble();
      if (r < a) {
        // top-left quadrant: no bits set
      } else if (r < a + b) {
        v |= NodeId{1} << bit;
      } else if (r < a + b + c) {
        u |= NodeId{1} << bit;
      } else {
        u |= NodeId{1} << bit;
        v |= NodeId{1} << bit;
      }
    }
    edges.emplace_back(u, v);
  }
  return edges;
}

EdgeList Rmat(int scale, double avg_degree, std::uint64_t seed) {
  return Rmat(scale, avg_degree, 0.57, 0.19, 0.19, seed);
}

EdgeList BarabasiAlbert(NodeId n, NodeId attach, std::uint64_t seed) {
  if (attach == 0 || n <= attach)
    throw std::invalid_argument("BarabasiAlbert: need n > attach > 0");
  Rng rng(seed);
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(n) * attach);
  // `targets` holds one entry per edge endpoint; sampling uniformly from it
  // realizes degree-proportional attachment.
  std::vector<NodeId> targets;
  targets.reserve(static_cast<std::size_t>(n) * attach * 2);
  // Seed clique over the first attach+1 vertices.
  for (NodeId u = 0; u <= attach; ++u)
    for (NodeId v = u + 1; v <= attach; ++v) {
      edges.emplace_back(u, v);
      targets.push_back(u);
      targets.push_back(v);
    }
  for (NodeId u = attach + 1; u < n; ++u) {
    std::set<NodeId> picked;
    while (picked.size() < attach)
      picked.insert(targets[rng.Below(targets.size())]);
    for (NodeId v : picked) {
      edges.emplace_back(u, v);
      targets.push_back(u);
      targets.push_back(v);
    }
  }
  return edges;
}

EdgeList StarHeavy(NodeId n, NodeId hubs, double leaf_fraction,
                   std::uint64_t seed) {
  if (hubs >= n) throw std::invalid_argument("StarHeavy: hubs >= n");
  Rng rng(seed);
  EdgeList edges;
  for (NodeId h = 0; h < hubs; ++h) {
    for (NodeId v = hubs; v < n; ++v)
      if (rng.Chance(leaf_fraction)) edges.emplace_back(h, v);
  }
  // Hubs talk to each other (this is what makes the topology assortative at
  // the top: the max-degree vertex has a high-degree neighbor).
  for (NodeId h1 = 0; h1 < hubs; ++h1)
    for (NodeId h2 = h1 + 1; h2 < hubs; ++h2) edges.emplace_back(h1, h2);
  return edges;
}

EdgeList WattsStrogatz(NodeId n, NodeId k_nearest, double rewire_p,
                       std::uint64_t seed) {
  if (k_nearest % 2 != 0 || k_nearest == 0 || k_nearest >= n)
    throw std::invalid_argument(
        "WattsStrogatz: k_nearest must be even and in (0, n)");
  Rng rng(seed);
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(n) * k_nearest / 2);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId step = 1; step <= k_nearest / 2; ++step) {
      NodeId v = (u + step) % n;
      if (rng.Chance(rewire_p)) {
        // Rewire the far endpoint to a uniform non-self target; duplicate
        // edges are cleaned up by the builder.
        NodeId w = static_cast<NodeId>(rng.Below(n));
        while (w == u) w = static_cast<NodeId>(rng.Below(n));
        v = w;
      }
      edges.emplace_back(u, v);
    }
  }
  return edges;
}

EdgeList CommunityModel(NodeId n, NodeId communities, NodeId min_size,
                        NodeId max_size, double intra_p,
                        std::uint64_t seed) {
  if (min_size < 2 || max_size < min_size || max_size > n)
    throw std::invalid_argument("CommunityModel: bad size range");
  Rng rng(seed);
  EdgeList edges;
  std::vector<NodeId> members;
  for (NodeId c = 0; c < communities; ++c) {
    const NodeId size = static_cast<NodeId>(
        rng.Between(min_size, max_size));
    members.clear();
    std::set<NodeId> chosen;
    while (chosen.size() < size)
      chosen.insert(static_cast<NodeId>(rng.Below(n)));
    members.assign(chosen.begin(), chosen.end());
    for (std::size_t i = 0; i < members.size(); ++i)
      for (std::size_t j = i + 1; j < members.size(); ++j)
        if (rng.Chance(intra_p)) edges.emplace_back(members[i], members[j]);
  }
  return edges;
}

void PlantCliques(EdgeList* edges, NodeId n, NodeId count, NodeId min_size,
                  NodeId max_size, std::uint64_t seed) {
  if (min_size < 2 || max_size < min_size || max_size > n)
    throw std::invalid_argument("PlantCliques: bad size range");
  Rng rng(seed);
  for (NodeId c = 0; c < count; ++c) {
    const NodeId size = static_cast<NodeId>(
        rng.Between(min_size, max_size));
    std::set<NodeId> chosen;
    while (chosen.size() < size)
      chosen.insert(static_cast<NodeId>(rng.Below(n)));
    std::vector<NodeId> members(chosen.begin(), chosen.end());
    for (std::size_t i = 0; i < members.size(); ++i)
      for (std::size_t j = i + 1; j < members.size(); ++j)
        edges->emplace_back(members[i], members[j]);
  }
}

void ShuffleVertexIds(EdgeList* edges, NodeId n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<NodeId> relabel(n);
  for (NodeId i = 0; i < n; ++i) relabel[i] = i;
  // Fisher-Yates.
  for (NodeId i = n; i > 1; --i)
    std::swap(relabel[i - 1], relabel[rng.Below(i)]);
  for (Edge& e : *edges) {
    e.first = relabel[e.first];
    e.second = relabel[e.second];
  }
}

EdgeList CompleteGraph(NodeId n) {
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = u + 1; v < n; ++v) edges.emplace_back(u, v);
  return edges;
}

EdgeList PathGraph(NodeId n) {
  EdgeList edges;
  for (NodeId u = 0; u + 1 < n; ++u) edges.emplace_back(u, u + 1);
  return edges;
}

EdgeList CycleGraph(NodeId n) {
  EdgeList edges = PathGraph(n);
  if (n >= 3) edges.emplace_back(n - 1, 0);
  return edges;
}

EdgeList StarGraph(NodeId n) {
  EdgeList edges;
  for (NodeId v = 1; v < n; ++v) edges.emplace_back(0, v);
  return edges;
}

EdgeList CompleteBipartite(NodeId a, NodeId b) {
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(a) * b);
  for (NodeId u = 0; u < a; ++u)
    for (NodeId v = 0; v < b; ++v) edges.emplace_back(u, a + v);
  return edges;
}

EdgeList TuranGraph(NodeId n, NodeId r) {
  if (r == 0) throw std::invalid_argument("TuranGraph: r must be >= 1");
  EdgeList edges;
  // Vertex u belongs to part u % r; connect vertices in different parts.
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = u + 1; v < n; ++v)
      if (u % r != v % r) edges.emplace_back(u, v);
  return edges;
}

}  // namespace pivotscale
