#include "graph/io.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "graph/builder.h"
#include "util/atomic_file.h"

namespace pivotscale {

namespace {
constexpr char kMagic[4] = {'P', 'S', 'G', '1'};

void AppendBytes(std::string* out, const void* data, std::size_t bytes) {
  out->append(static_cast<const char*>(data), bytes);
}
}  // namespace

EdgeList ReadEdgeList(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  EdgeList edges;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    std::uint64_t u = 0, v = 0;
    if (!(ls >> u >> v))
      throw std::runtime_error(path + ":" + std::to_string(line_no) +
                               ": malformed edge line");
    constexpr std::uint64_t kMaxId = std::numeric_limits<NodeId>::max();
    if (u > kMaxId || v > kMaxId)
      throw std::runtime_error(
          path + ":" + std::to_string(line_no) + ": vertex id " +
          std::to_string(u > kMaxId ? u : v) + " exceeds the " +
          std::to_string(kMaxId) + " NodeId limit");
    edges.emplace_back(static_cast<NodeId>(u), static_cast<NodeId>(v));
  }
  return edges;
}

void WriteEdgeList(const std::string& path, const EdgeList& edges) {
  // Buffered + atomic rename like every other writer: a half-written edge
  // list silently loads as a smaller graph, the worst failure mode.
  std::string payload;
  payload.reserve(edges.size() * 12);
  for (const Edge& e : edges) {
    payload += std::to_string(e.first);
    payload += ' ';
    payload += std::to_string(e.second);
    payload += '\n';
  }
  WriteFileAtomic(path, payload);
}

void WriteBinaryGraph(const std::string& path, const Graph& g) {
  const std::uint64_t num_nodes = g.NumNodes();
  const std::uint64_t num_entries = g.NumDirectedEdges();
  std::string payload;
  payload.reserve(sizeof(kMagic) + 1 + 2 * sizeof(std::uint64_t) +
                  (num_nodes + 1) * sizeof(EdgeId) +
                  num_entries * sizeof(NodeId));
  AppendBytes(&payload, kMagic, sizeof(kMagic));
  const std::uint8_t undirected = g.undirected() ? 1 : 0;
  AppendBytes(&payload, &undirected, 1);
  AppendBytes(&payload, &num_nodes, sizeof(num_nodes));
  AppendBytes(&payload, &num_entries, sizeof(num_entries));
  AppendBytes(&payload, g.offsets().data(),
              (num_nodes + 1) * sizeof(EdgeId));
  AppendBytes(&payload, g.neighbor_array().data(),
              num_entries * sizeof(NodeId));
  // Temp file + rename: an interrupted write can never leave a truncated
  // .psg that a later ReadBinaryGraph half-accepts.
  WriteFileAtomic(path, payload);
}

Graph ReadBinaryGraph(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    throw std::runtime_error(path + ": not a PSG1 graph file");
  std::uint8_t undirected = 0;
  in.read(reinterpret_cast<char*>(&undirected), 1);
  std::uint64_t num_nodes = 0, num_entries = 0;
  in.read(reinterpret_cast<char*>(&num_nodes), sizeof(num_nodes));
  in.read(reinterpret_cast<char*>(&num_entries), sizeof(num_entries));
  if (!in) throw std::runtime_error(path + ": truncated header");
  // Header sanity before allocating: a corrupt/crafted file must error
  // cleanly, not reserve petabytes or index out of bounds downstream.
  if (num_nodes > std::numeric_limits<NodeId>::max())
    throw std::runtime_error(path + ": header num_nodes " +
                             std::to_string(num_nodes) +
                             " exceeds the NodeId limit");
  const auto body_start = in.tellg();
  in.seekg(0, std::ios::end);
  const std::uint64_t body_bytes =
      static_cast<std::uint64_t>(in.tellg() - body_start);
  in.seekg(body_start);
  const std::uint64_t expected_bytes =
      (num_nodes + 1) * sizeof(EdgeId) + num_entries * sizeof(NodeId);
  if (body_bytes != expected_bytes)
    throw std::runtime_error(
        path + ": header promises " + std::to_string(expected_bytes) +
        " body bytes but the file holds " + std::to_string(body_bytes));
  std::vector<EdgeId> offsets(num_nodes + 1);
  std::vector<NodeId> neighbors(num_entries);
  in.read(reinterpret_cast<char*>(offsets.data()),
          static_cast<std::streamsize>(offsets.size() * sizeof(EdgeId)));
  in.read(reinterpret_cast<char*>(neighbors.data()),
          static_cast<std::streamsize>(neighbors.size() * sizeof(NodeId)));
  if (!in) throw std::runtime_error(path + ": truncated body");
  // CSR invariants the whole pipeline assumes: monotone offsets that cover
  // exactly the neighbor array, and every neighbor id in range.
  for (std::uint64_t u = 0; u < num_nodes; ++u)
    if (offsets[u] > offsets[u + 1])
      throw std::runtime_error(path + ": corrupt offsets (decreasing at " +
                               std::to_string(u) + ")");
  if (offsets[0] != 0 || offsets[num_nodes] != num_entries)
    throw std::runtime_error(
        path + ": corrupt offsets (span [" + std::to_string(offsets[0]) +
        ", " + std::to_string(offsets[num_nodes]) +
        "] does not cover the " + std::to_string(num_entries) +
        " neighbor entries)");
  for (std::uint64_t e = 0; e < num_entries; ++e)
    if (neighbors[e] >= num_nodes)
      throw std::runtime_error(path + ": neighbor id " +
                               std::to_string(neighbors[e]) + " at entry " +
                               std::to_string(e) + " is out of range (" +
                               std::to_string(num_nodes) + " nodes)");
  return Graph(std::move(offsets), std::move(neighbors), undirected != 0);
}

Graph LoadGraph(const std::string& path) {
  if (path.size() >= 4 && path.compare(path.size() - 4, 4, ".psg") == 0)
    return ReadBinaryGraph(path);
  return BuildGraph(ReadEdgeList(path));
}

}  // namespace pivotscale
