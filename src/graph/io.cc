#include "graph/io.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "graph/builder.h"

namespace pivotscale {

namespace {
constexpr char kMagic[4] = {'P', 'S', 'G', '1'};
}  // namespace

EdgeList ReadEdgeList(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  EdgeList edges;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    std::uint64_t u = 0, v = 0;
    if (!(ls >> u >> v))
      throw std::runtime_error(path + ":" + std::to_string(line_no) +
                               ": malformed edge line");
    edges.emplace_back(static_cast<NodeId>(u), static_cast<NodeId>(v));
  }
  return edges;
}

void WriteEdgeList(const std::string& path, const EdgeList& edges) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path + " for write");
  for (const Edge& e : edges) out << e.first << ' ' << e.second << '\n';
  if (!out) throw std::runtime_error("write failure on " + path);
}

void WriteBinaryGraph(const std::string& path, const Graph& g) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open " + path + " for write");
  out.write(kMagic, sizeof(kMagic));
  const std::uint8_t undirected = g.undirected() ? 1 : 0;
  out.write(reinterpret_cast<const char*>(&undirected), 1);
  const std::uint64_t num_nodes = g.NumNodes();
  const std::uint64_t num_entries = g.NumDirectedEdges();
  out.write(reinterpret_cast<const char*>(&num_nodes), sizeof(num_nodes));
  out.write(reinterpret_cast<const char*>(&num_entries),
            sizeof(num_entries));
  out.write(reinterpret_cast<const char*>(g.offsets().data()),
            static_cast<std::streamsize>((num_nodes + 1) * sizeof(EdgeId)));
  out.write(reinterpret_cast<const char*>(g.neighbor_array().data()),
            static_cast<std::streamsize>(num_entries * sizeof(NodeId)));
  if (!out) throw std::runtime_error("write failure on " + path);
}

Graph ReadBinaryGraph(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    throw std::runtime_error(path + ": not a PSG1 graph file");
  std::uint8_t undirected = 0;
  in.read(reinterpret_cast<char*>(&undirected), 1);
  std::uint64_t num_nodes = 0, num_entries = 0;
  in.read(reinterpret_cast<char*>(&num_nodes), sizeof(num_nodes));
  in.read(reinterpret_cast<char*>(&num_entries), sizeof(num_entries));
  if (!in) throw std::runtime_error(path + ": truncated header");
  std::vector<EdgeId> offsets(num_nodes + 1);
  std::vector<NodeId> neighbors(num_entries);
  in.read(reinterpret_cast<char*>(offsets.data()),
          static_cast<std::streamsize>(offsets.size() * sizeof(EdgeId)));
  in.read(reinterpret_cast<char*>(neighbors.data()),
          static_cast<std::streamsize>(neighbors.size() * sizeof(NodeId)));
  if (!in) throw std::runtime_error(path + ": truncated body");
  return Graph(std::move(offsets), std::move(neighbors), undirected != 0);
}

Graph LoadGraph(const std::string& path) {
  if (path.size() >= 4 && path.compare(path.size() - 4, 4, ".psg") == 0)
    return ReadBinaryGraph(path);
  return BuildGraph(ReadEdgeList(path));
}

}  // namespace pivotscale
