// Directionalization: undirected graph -> DAG under a total order.
//
// Given a rank permutation w, the edge {u, v} is kept as u -> v iff
// w[u] < w[v] (edges point from lower to higher rank), so every clique has
// exactly one canonical root — the member with the lowest rank. The maximum
// out-degree of the resulting DAG is the paper's measure of ordering
// quality (Section III).
#ifndef PIVOTSCALE_GRAPH_DAG_H_
#define PIVOTSCALE_GRAPH_DAG_H_

#include <span>

#include "graph/graph.h"

namespace pivotscale {

class TelemetryRegistry;

// Builds the DAG induced by `ranks` over the undirected graph `g`.
// `ranks` must be a permutation of [0, n) (checked); the result stores each
// undirected edge exactly once. Parallelized over vertices. When
// `telemetry` is non-null, records the "directionalize.max_out_degree" and
// "directionalize.edges" gauges plus the "directionalize.edge_flips"
// counter (edges whose kept direction u -> v runs against the vertex-id
// order, i.e. u > v — how far the ordering departs from the identity).
Graph Directionalize(const Graph& g, std::span<const NodeId> ranks,
                     TelemetryRegistry* telemetry = nullptr);

// Largest out-degree of a directionalized graph — the ordering-quality
// metric used throughout the evaluation.
EdgeId MaxOutDegree(const Graph& dag);

// True iff `ranks` holds each value in [0, n) exactly once.
bool IsPermutation(std::span<const NodeId> ranks);

}  // namespace pivotscale

#endif  // PIVOTSCALE_GRAPH_DAG_H_
