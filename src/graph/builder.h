// Edge-list to CSR construction.
//
// All inputs (generators, file readers) produce edge lists; the builder
// normalizes them the way the paper's evaluation prescribes: symmetrized to
// undirected, self-loops removed, duplicate edges removed, adjacency sorted.
// Counting kernels assume these invariants.
#ifndef PIVOTSCALE_GRAPH_BUILDER_H_
#define PIVOTSCALE_GRAPH_BUILDER_H_

#include <cstdint>

#include "graph/graph.h"

namespace pivotscale {

struct BuildOptions {
  // Add the reverse of every edge so the CSR is undirected. Default matches
  // the paper's preprocessing ("all graphs are ... symmetrized").
  bool symmetrize = true;
  // Drop (u, u) edges; cliques never contain self-loops.
  bool remove_self_loops = true;
  // Drop repeated edges after symmetrization.
  bool remove_duplicates = true;
  // Number of vertices; 0 means "max endpoint + 1".
  NodeId num_nodes = 0;
};

// Builds a CSR graph from an edge list. The input list is taken by value
// because normalization sorts it in place.
Graph BuildGraph(EdgeList edges, const BuildOptions& options = {});

// Convenience: undirected simple graph over exactly n vertices.
Graph BuildUndirected(EdgeList edges, NodeId n);

}  // namespace pivotscale

#endif  // PIVOTSCALE_GRAPH_BUILDER_H_
