#include "graph/dag.h"

#include <stdexcept>
#include <vector>

#include "exec/executor.h"
#include "util/check.h"
#include "util/prefix_sum.h"
#include "util/telemetry.h"

namespace pivotscale {

bool IsPermutation(std::span<const NodeId> ranks) {
  std::vector<bool> seen(ranks.size(), false);
  for (NodeId r : ranks) {
    if (r >= ranks.size() || seen[r]) return false;
    seen[r] = true;
  }
  return true;
}

Graph Directionalize(const Graph& g, std::span<const NodeId> ranks,
                     TelemetryRegistry* telemetry) {
  const NodeId n = g.NumNodes();
  if (ranks.size() != n)
    throw std::invalid_argument("Directionalize: ranks size mismatch");
  if (!IsPermutation(ranks))
    throw std::invalid_argument("Directionalize: ranks not a permutation");

  std::vector<EdgeId> out_degrees(n, 0);
  ExecOptions exec_options;
  exec_options.grain = 1024;
  ParallelFor(n, exec_options, [&](std::size_t i) {
    const auto u = static_cast<NodeId>(i);
    EdgeId deg = 0;
    for (NodeId v : g.Neighbors(u)) {
      // Always-on range check: an out-of-range neighbor here would index
      // ranks[] out of bounds and silently corrupt every count downstream.
      // The file readers validate their own input, so a failure means an
      // in-memory producer broke the CSR contract.
      CHECK_LT(v, n) << "Directionalize: neighbor of vertex " << u
                     << " is outside the graph";
      if (ranks[u] < ranks[v]) ++deg;
    }
    out_degrees[u] = deg;
  });

  std::vector<EdgeId> offsets;
  const EdgeId total = ParallelPrefixSum(out_degrees, &offsets);
  offsets.push_back(total);

  std::vector<NodeId> neighbors(total);
  const std::uint64_t edge_flips = ParallelReduce(
      n, exec_options, std::uint64_t{0},
      [&](std::uint64_t& flips, std::size_t i) {
        const auto u = static_cast<NodeId>(i);
        EdgeId pos = offsets[u];
        for (NodeId v : g.Neighbors(u))
          if (ranks[u] < ranks[v]) {
            DCHECK_LT(pos, offsets[u + 1]);
            neighbors[pos++] = v;
            if (u > v) ++flips;
          }
        // Both passes must agree on each row's out-degree or the CSR rows
        // would overlap.
        DCHECK_EQ(pos, offsets[u + 1]);
      },
      [](std::uint64_t& into, std::uint64_t from) { into += from; });

  Graph dag(std::move(offsets), std::move(neighbors),
            /*undirected=*/false);
  if (telemetry != nullptr) {
    telemetry->SetGauge("directionalize.max_out_degree",
                        static_cast<double>(dag.MaxDegree()));
    telemetry->SetGauge("directionalize.edges", static_cast<double>(total));
    telemetry->AddCounter("directionalize.edge_flips", edge_flips);
  }
  return dag;
}

EdgeId MaxOutDegree(const Graph& dag) { return dag.MaxDegree(); }

}  // namespace pivotscale
