// Graph transformations: preprocessing utilities a clique-counting
// workflow needs around the core pipeline — restricting to the dense part
// of a graph (k-core extraction), cutting out vertex-induced subgraphs,
// isolating the largest component, and composing test graphs.
#ifndef PIVOTSCALE_GRAPH_TRANSFORM_H_
#define PIVOTSCALE_GRAPH_TRANSFORM_H_

#include <span>
#include <vector>

#include "graph/graph.h"

namespace pivotscale {

// Result of a transformation that renumbers vertices: the new graph plus
// the mapping from new ids back to the original ids.
struct InducedResult {
  Graph graph;
  std::vector<NodeId> original_ids;  // original_ids[new] = old
};

// Vertex-induced subgraph on `vertices` (duplicates ignored); vertices are
// renumbered compactly in the order given.
InducedResult InduceSubgraph(const Graph& g,
                             std::span<const NodeId> vertices);

// The k-core: the maximal subgraph where every vertex has degree >= k.
// Returns an empty graph if no vertex survives.
InducedResult ExtractKCore(const Graph& g, EdgeId k);

// The largest connected component (ties broken by lowest contained id).
InducedResult LargestConnectedComponent(const Graph& g);

// Per-vertex component ids (0-based, in order of discovery from vertex 0).
std::vector<NodeId> ConnectedComponents(const Graph& g);

// Disjoint union: b's vertices are shifted by a.NumNodes(). Clique counts
// add across a disjoint union, which the tests exploit as an invariant.
Graph DisjointUnion(const Graph& a, const Graph& b);

}  // namespace pivotscale

#endif  // PIVOTSCALE_GRAPH_TRANSFORM_H_
