#include "graph/datasets.h"

#include <cmath>
#include <stdexcept>

#include "graph/builder.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace pivotscale {

namespace {

NodeId Scaled(double scale, NodeId n) {
  const double v = scale * static_cast<double>(n);
  return v < 16 ? 16 : static_cast<NodeId>(v);
}

// Log2 of the scaled vertex count for RMAT-based analogs.
int ScaledScale(double scale, int base_scale) {
  const int delta = static_cast<int>(std::lround(std::log2(scale)));
  const int s = base_scale + delta;
  return s < 4 ? 4 : s;
}

Dataset DblpLike(double scale) {
  // Co-authorship graphs are unions of small near-cliques (one per paper).
  // DBLP is the suite's smallest graph (0.3M vertices vs 1.7M+ for the
  // rest); the analog mirrors that so the heuristic's size gate excludes
  // exactly this graph, and so it plays DBLP's "too small to parallelize"
  // role in the scaling study.
  const NodeId n = Scaled(scale, 12000);
  EdgeList edges = CommunityModel(n, Scaled(scale, 3600), 3, 8,
                                  /*intra_p=*/1.0, /*seed=*/0xdb1f);
  PlantCliques(&edges, n, Scaled(scale, 16), 8, 20, 0xdb2f);
  PlantCliques(&edges, n, 1, 25, 25, 0xdb3f);  // the k_max clique
  EdgeList noise = GnM(n, Scaled(scale, 6000), 0xdb4f);
  edges.insert(edges.end(), noise.begin(), noise.end());
  ShuffleVertexIds(&edges, n, 0x5f5f + 0);
  return {"dblp-like", "DBLP",
          "co-authorship style: many small overlapping cliques",
          BuildUndirected(std::move(edges), n)};
}

Dataset SkitterLike(double scale) {
  // Internet topology: heavy-tailed RMAT plus mid-size cliques at exchange
  // points, which make the graph strongly assortative at the top.
  const int s = ScaledScale(scale, 16);
  const NodeId n = NodeId{1} << s;
  EdgeList edges = Rmat(s, 10.0, 0x5711);
  PlantCliques(&edges, n / 8, 40, 5, 25, 0x5722);  // clustered in hot ids
  PlantCliques(&edges, n / 8, 2, 40, 44, 0x5733);
  ShuffleVertexIds(&edges, n, 0x5f5f + 1);
  return {"skitter-like", "As-Skitter",
          "power-law internet topology with mid-size planted cliques",
          BuildUndirected(std::move(edges), n)};
}

Dataset BaiduLike(double scale) {
  // Web-link graph: skewed degrees but little clique structure, and low
  // assortativity (hubs link to low-degree pages).
  const int s = ScaledScale(scale, 16);
  const NodeId n = NodeId{1} << s;
  EdgeList edges = Rmat(s, 14.0, 0.45, 0.25, 0.20, 0xba1d);
  PlantCliques(&edges, n, 10, 4, 10, 0xba2d);
  ShuffleVertexIds(&edges, n, 0x5f5f + 2);
  return {"baidu-like", "Baidu",
          "web links: skewed but clique-poor, low assortativity",
          BuildUndirected(std::move(edges), n)};
}

Dataset WikitalkLike(double scale) {
  // Talk-page graph: a few dozen hubs (admins/bots) touching much of the
  // graph, plus moderate cliques among active editors.
  const NodeId n = Scaled(scale, 60000);
  const NodeId hubs = 30;
  // hubs * leaf_fraction * n total hub-leaf edges ~= 2n gives delta ~= 2 from
  // hubs; planted cliques bring the average near Wiki-Talk's ~4.
  const double leaf_fraction = 2.0 / static_cast<double>(hubs);
  EdgeList edges = StarHeavy(n, hubs, leaf_fraction, 0x111c);
  // Active-editor tier: a moderately dense blob of mid-degree vertices.
  // This is what separates the orderings on Wiki-Talk — under a degree
  // ordering the low-ranked actives direct edges at most of their
  // (higher-degree) peers, inflating the max out-degree well above the
  // blob's coreness.
  const NodeId actives = 250;
  EdgeList blob = ErdosRenyi(actives, 0.4, 0x113c);
  for (Edge& e : blob) {
    e.first += hubs;
    e.second += hubs;
  }
  edges.insert(edges.end(), blob.begin(), blob.end());
  Rng active_rng(0x114c);
  for (NodeId a = hubs; a < hubs + actives; ++a)
    for (int j = 0; j < 8; ++j)
      edges.emplace_back(a, static_cast<NodeId>(active_rng.Below(hubs)));
  PlantCliques(&edges, n / 16, 60, 4, 18, 0x112c);
  ShuffleVertexIds(&edges, n, 0x5f5f + 3);
  return {"wikitalk-like", "Wiki-Talk",
          "hub-dominated broadcast graph with moderate cliques",
          BuildUndirected(std::move(edges), n)};
}

Dataset OrkutLike(double scale) {
  // Dense social network: high average degree and strong community
  // structure, many mid-size cliques.
  const int s = ScaledScale(scale, 14);
  const NodeId n = NodeId{1} << s;
  EdgeList edges = Rmat(s, 24.0, 0x04c1);
  EdgeList comm =
      CommunityModel(n, Scaled(scale, 1500), 4, 10, 0.7, 0x0421);
  edges.insert(edges.end(), comm.begin(), comm.end());
  PlantCliques(&edges, n / 2, 15, 8, 22, 0x0422);
  ShuffleVertexIds(&edges, n, 0x5f5f + 4);
  return {"orkut-like", "Orkut",
          "dense social network with community structure",
          BuildUndirected(std::move(edges), n)};
}

Dataset LivejournalLike(double scale) {
  // The combinatorially hard graph: many large overlapping cliques
  // concentrated in a hot region, so clique counts explode with k.
  const NodeId n = Scaled(scale, 30000);
  EdgeList edges = GnM(n, Scaled(scale, 120000), 0x11ff);
  // A dense random core drives the LiveJournal signature: deep, branching
  // Bron-Kerbosch trees whose exploration deepens with the target k, so
  // counting time climbs steeply with k. The density is calibrated so the
  // core's maximal cliques exceed the largest k swept (13) — any lower and
  // the k-potential prune kills the trees early and time *falls* with k;
  // much higher and single-core runs take hours. Planted cliques set k_max.
  const NodeId hot = std::max<NodeId>(64, n / 176);
  EdgeList overlay = ErdosRenyi(hot, 0.70, 0x14ff);
  edges.insert(edges.end(), overlay.begin(), overlay.end());
  PlantCliques(&edges, hot, 2, 30, 34, 0x13ff);
  ShuffleVertexIds(&edges, n, 0x5f5f + 5);
  return {"livejournal-like", "LiveJournal",
          "clique-rich social network: combinatorial explosion with k",
          BuildUndirected(std::move(edges), n)};
}

Dataset WebeduLike(double scale) {
  // .edu web crawl: extremely sparse overall, but contains one huge clique
  // (template-generated page families) dominating k_max.
  const NodeId n = Scaled(scale, 100000);
  EdgeList edges = GnM(n, Scaled(scale, 120000), 0xed00);
  PlantCliques(&edges, n, 1, 110, 110, 0xed01);
  PlantCliques(&edges, n, 6, 20, 60, 0xed02);
  ShuffleVertexIds(&edges, n, 0x5f5f + 6);
  return {"webedu-like", "Web-Edu",
          "very sparse web graph with one huge planted clique",
          BuildUndirected(std::move(edges), n)};
}

Dataset FriendsterLike(double scale) {
  // The largest suite member: high degree, comparatively clique-poor, low
  // assortativity at the top — the regime where the degree ordering wins.
  const int s = ScaledScale(scale, 17);
  const NodeId n = NodeId{1} << s;
  EdgeList edges = Rmat(s, 18.0, 0.50, 0.22, 0.19, 0xf41e);
  PlantCliques(&edges, n, 15, 5, 20, 0xf42e);
  ShuffleVertexIds(&edges, n, 0x5f5f + 7);
  return {"friendster-like", "Friendster",
          "largest graph: high degree, relatively clique-poor",
          BuildUndirected(std::move(edges), n)};
}

}  // namespace

const std::vector<std::string>& DatasetNames() {
  static const std::vector<std::string> names = {
      "dblp-like",  "skitter-like",     "baidu-like",  "wikitalk-like",
      "orkut-like", "livejournal-like", "webedu-like", "friendster-like"};
  return names;
}

Dataset MakeDataset(const std::string& name, double scale) {
  if (scale <= 0 || scale > 4)
    throw std::invalid_argument("MakeDataset: scale out of (0, 4]");
  if (name == "dblp-like") return DblpLike(scale);
  if (name == "skitter-like") return SkitterLike(scale);
  if (name == "baidu-like") return BaiduLike(scale);
  if (name == "wikitalk-like") return WikitalkLike(scale);
  if (name == "orkut-like") return OrkutLike(scale);
  if (name == "livejournal-like") return LivejournalLike(scale);
  if (name == "webedu-like") return WebeduLike(scale);
  if (name == "friendster-like") return FriendsterLike(scale);
  throw std::invalid_argument("MakeDataset: unknown dataset " + name);
}

std::vector<Dataset> MakeDatasetSuite(double scale) {
  std::vector<Dataset> suite;
  suite.reserve(DatasetNames().size());
  for (const std::string& name : DatasetNames())
    suite.push_back(MakeDataset(name, scale));
  return suite;
}

}  // namespace pivotscale
