#include "graph/builder.h"

#include <algorithm>
#include <stdexcept>

#include "util/prefix_sum.h"

namespace pivotscale {

Graph BuildGraph(EdgeList edges, const BuildOptions& options) {
  if (options.symmetrize) {
    const std::size_t original = edges.size();
    edges.reserve(original * 2);
    for (std::size_t i = 0; i < original; ++i)
      edges.emplace_back(edges[i].second, edges[i].first);
  }

  if (options.remove_self_loops) {
    edges.erase(std::remove_if(edges.begin(), edges.end(),
                               [](const Edge& e) {
                                 return e.first == e.second;
                               }),
                edges.end());
  }

  std::sort(edges.begin(), edges.end());
  if (options.remove_duplicates)
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  NodeId n = options.num_nodes;
  if (n == 0) {
    for (const Edge& e : edges)
      n = std::max({n, static_cast<NodeId>(e.first + 1),
                    static_cast<NodeId>(e.second + 1)});
  } else {
    for (const Edge& e : edges)
      if (e.first >= n || e.second >= n)
        throw std::invalid_argument("BuildGraph: endpoint >= num_nodes");
  }

  std::vector<EdgeId> degrees(n, 0);
  for (const Edge& e : edges) ++degrees[e.first];

  std::vector<EdgeId> offsets;
  ParallelPrefixSum(degrees, &offsets);
  offsets.push_back(edges.size());

  // Edges are sorted by (src, dst), so a single pass fills sorted adjacency.
  std::vector<NodeId> neighbors(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i)
    neighbors[i] = edges[i].second;

  return Graph(std::move(offsets), std::move(neighbors),
               options.symmetrize);
}

Graph BuildUndirected(EdgeList edges, NodeId n) {
  BuildOptions options;
  options.num_nodes = n;
  return BuildGraph(std::move(edges), options);
}

}  // namespace pivotscale
