// Graph file I/O.
//
// Two formats:
//  - Text edge lists ("u v" per line, '#' comments), compatible with the
//    SNAP dataset distribution format, so real datasets drop in when
//    available.
//  - A binary ".psg" serialization of the CSR arrays for fast reload of
//    generated suites.
#ifndef PIVOTSCALE_GRAPH_IO_H_
#define PIVOTSCALE_GRAPH_IO_H_

#include <string>

#include "graph/graph.h"

namespace pivotscale {

// Reads a text edge list; lines starting with '#' or '%' are comments.
// Throws std::runtime_error (with the line number) on unreadable files,
// malformed lines, or vertex ids that exceed the NodeId range.
EdgeList ReadEdgeList(const std::string& path);

// Writes one "u v" line per edge.
void WriteEdgeList(const std::string& path, const EdgeList& edges);

// Binary CSR serialization. The format is:
//   magic "PSG1" | u8 undirected | u64 num_nodes | u64 num_entries |
//   offsets[] (u64) | neighbors[] (u32)
void WriteBinaryGraph(const std::string& path, const Graph& g);

// Reads a .psg file, validating the header and the CSR invariants
// (monotone offsets spanning exactly num_entries, all neighbor ids in
// range) so a corrupt or crafted file throws std::runtime_error instead of
// reading out of bounds downstream.
Graph ReadBinaryGraph(const std::string& path);

// Loads a graph from a path, dispatching on extension: ".psg" -> binary,
// anything else -> text edge list built with default BuildOptions
// (symmetrized, deduplicated, no self-loops).
Graph LoadGraph(const std::string& path);

}  // namespace pivotscale

#endif  // PIVOTSCALE_GRAPH_IO_H_
