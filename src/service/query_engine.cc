#include "service/query_engine.h"

#include <algorithm>
#include <stdexcept>

#include "util/check.h"
#include "util/telemetry.h"
#include "util/timer.h"

namespace pivotscale {

namespace {

// Largest clique size with a nonzero count; bounds the per_size echo so
// responses don't carry a tail of zeros out to the workspace bound.
std::size_t LastNonZeroSize(const std::vector<BigCount>& per_size) {
  std::size_t last = 0;
  for (std::size_t s = 1; s < per_size.size(); ++s)
    if (per_size[s] != BigCount{}) last = s;
  return last;
}

}  // namespace

QueryEngine::QueryEngine(const QueryEngineOptions& options)
    : options_(options) {}

ServiceResult QueryEngine::RunQuery(const ServiceQuery& query) {
  return RunBatch({query}).front();
}

void QueryEngine::Preload(const std::string& path) {
  bool cache_hit = false;
  GetOrLoad(path, &cache_hit);
}

std::size_t QueryEngine::CachedArtifacts() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return cache_.size();
}

std::size_t QueryEngine::CachedBytes() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return cached_bytes_;
}

std::vector<ServiceResult> QueryEngine::RunBatch(
    const std::vector<ServiceQuery>& queries) {
  TelemetryRegistry* telemetry = options_.telemetry;
  TelemetryRegistry::ScopedSpan batch_span(telemetry, "service.batch");
  if (telemetry != nullptr)
    telemetry->AddCounter("service.queries", queries.size());

  std::vector<ServiceResult> results(queries.size());
  // Dedup: all queries against one artifact are served as one group from
  // (at most) one shared counting run.
  std::map<std::string, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const ServiceQuery& q = queries[i];
    results[i].k = q.k;
    results[i].all_k = q.all_k;
    if (q.graph.empty()) {
      results[i].error = "query has no graph path";
    } else if (q.k < 1) {
      results[i].error = "k must be >= 1";
    } else if (q.per_vertex && q.all_k) {
      results[i].error = "per_vertex and all_k are mutually exclusive";
    } else {
      groups[q.graph].push_back(i);
    }
  }

  for (const auto& [path, indices] : groups) {
    bool cache_hit = false;
    std::shared_ptr<Entry> entry;
    try {
      entry = GetOrLoad(path, &cache_hit);
    } catch (const std::exception& e) {
      for (std::size_t i : indices) results[i].error = e.what();
      continue;
    }
    for (std::size_t i : indices)
      results[i].artifact_cache_hit = cache_hit;
    ServeGroup(entry, queries, indices, &results);
  }

  if (telemetry != nullptr) {
    std::uint64_t errors = 0;
    for (const ServiceResult& r : results)
      if (!r.ok) ++errors;
    if (errors > 0) telemetry->AddCounter("service.errors", errors);
  }
  return results;
}

void QueryEngine::ServeGroup(const std::shared_ptr<Entry>& entry,
                             const std::vector<ServiceQuery>& queries,
                             const std::vector<std::size_t>& indices,
                             std::vector<ServiceResult>* results) {
  CHECK(entry != nullptr);
  CHECK(results != nullptr);
  TelemetryRegistry* telemetry = options_.telemetry;
  Timer group_timer;
  std::lock_guard<std::mutex> lock(entry->count_mutex);
  for (std::size_t i : indices) DCHECK_LT(i, results->size());

  // Coverage demanded by the plain-k and all-k queries of this group.
  bool need_all_k = false;
  std::uint32_t need_k = 0;
  for (std::size_t i : indices) {
    const ServiceQuery& q = queries[i];
    if (q.per_vertex) continue;
    if (q.all_k)
      need_all_k = true;
    else
      need_k = std::max(need_k, q.k);
  }

  const bool run_needed =
      !entry->all_k_covered &&
      ((need_all_k) || (need_k > entry->covered_k));
  if (run_needed) {
    // One run answers every pending k-query on this graph: kAllUpToK at
    // the batch's largest k, upgraded to kAllK when an all-k query is
    // pending (kAllK subsumes every future k as well).
    CountOptions copts;
    copts.k = std::max(need_k, 1u);
    copts.mode = need_all_k ? CountMode::kAllK : CountMode::kAllUpToK;
    copts.structure = queries[indices.front()].structure;
    copts.num_threads = options_.num_threads;
    copts.telemetry = telemetry;
    TelemetryRegistry::ScopedSpan count_span(telemetry, "service.count");
    const CountResult counted = CountCliques(entry->artifact.dag, copts);
    entry->per_size = counted.per_size;
    entry->all_k_covered = need_all_k;
    entry->covered_k = need_k;
    if (telemetry != nullptr)
      telemetry->AddCounter("service.count_runs", 1);
  }

  // Per-vertex queries need kSingleK per-vertex runs; memoized per k.
  std::vector<std::uint32_t> fresh_per_vertex_ks;
  for (std::size_t i : indices) {
    const ServiceQuery& q = queries[i];
    if (!q.per_vertex || entry->per_vertex_by_k.count(q.k) != 0) continue;
    CountOptions copts;
    copts.k = q.k;
    copts.mode = CountMode::kSingleK;
    copts.per_vertex = true;
    copts.structure = q.structure;
    copts.num_threads = options_.num_threads;
    copts.telemetry = telemetry;
    TelemetryRegistry::ScopedSpan count_span(telemetry, "service.count");
    CountResult counted = CountCliques(entry->artifact.dag, copts);
    entry->per_vertex_by_k[q.k] = {counted.total,
                                   std::move(counted.per_vertex)};
    fresh_per_vertex_ks.push_back(q.k);
    if (telemetry != nullptr)
      telemetry->AddCounter("service.per_vertex_runs", 1);
  }

  std::uint64_t memo_hits = 0;
  for (std::size_t i : indices) {
    const ServiceQuery& q = queries[i];
    ServiceResult& res = (*results)[i];
    res.ok = true;
    if (q.per_vertex) {
      const Entry::PerVertexMemo& memo = entry->per_vertex_by_k[q.k];
      const std::vector<BigCount>& pv = memo.counts;
      // Top-N vertices by participation count, ties broken by id.
      std::vector<NodeId> order;
      for (NodeId v = 0; v < pv.size(); ++v)
        if (pv[v] != BigCount{}) order.push_back(v);
      const std::size_t top =
          std::min<std::size_t>(std::max<std::uint32_t>(q.top, 1),
                                order.size());
      std::partial_sort(order.begin(), order.begin() + top, order.end(),
                        [&](NodeId a, NodeId b) {
                          if (pv[a] != pv[b]) return pv[b] < pv[a];
                          return a < b;
                        });
      res.top_vertices.reserve(top);
      for (std::size_t t = 0; t < top; ++t)
        res.top_vertices.push_back({order[t], pv[order[t]]});
      res.total = memo.total;
      res.memo_hit = std::find(fresh_per_vertex_ks.begin(),
                               fresh_per_vertex_ks.end(),
                               q.k) == fresh_per_vertex_ks.end();
    } else {
      res.total = q.k < entry->per_size.size() ? entry->per_size[q.k]
                                               : BigCount{};
      if (q.all_k) {
        const std::size_t last = LastNonZeroSize(entry->per_size);
        res.per_size.assign(entry->per_size.begin(),
                            entry->per_size.begin() + last + 1);
      }
      res.memo_hit = !run_needed;
    }
    if (res.memo_hit) ++memo_hits;
    res.seconds = group_timer.Seconds();
  }
  if (telemetry != nullptr && memo_hits > 0)
    telemetry->AddCounter("service.memo_hits", memo_hits);
}

std::shared_ptr<QueryEngine::Entry> QueryEngine::GetOrLoad(
    const std::string& path, bool* cache_hit) {
  CHECK(cache_hit != nullptr);
  TelemetryRegistry* telemetry = options_.telemetry;
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    const auto it = cache_.find(path);
    if (it != cache_.end()) {
      it->second->last_used = ++use_clock_;
      *cache_hit = true;
      if (telemetry != nullptr)
        telemetry->AddCounter("service.cache_hits", 1);
      return it->second;
    }
  }
  // Load outside the cache lock: artifact I/O + validation is the slow
  // part, and other graphs' batches must not stall behind it.
  auto entry = std::make_shared<Entry>();
  entry->artifact = ReadArtifact(path);
  entry->bytes = entry->artifact.HeapBytes();

  std::lock_guard<std::mutex> lock(cache_mutex_);
  const auto it = cache_.find(path);
  if (it != cache_.end()) {
    // Another thread loaded it while we did; keep the resident copy.
    it->second->last_used = ++use_clock_;
    *cache_hit = true;
    if (telemetry != nullptr)
      telemetry->AddCounter("service.cache_hits", 1);
    return it->second;
  }
  entry->last_used = ++use_clock_;
  cache_[path] = entry;
  cached_bytes_ += entry->bytes;
  *cache_hit = false;
  if (telemetry != nullptr)
    telemetry->AddCounter("service.cache_misses", 1);
  EvictOverBudget();
  if (telemetry != nullptr)
    telemetry->SetGauge("service.cache_bytes",
                        static_cast<double>(cached_bytes_));
  return entry;
}

void QueryEngine::EvictOverBudget() {
  std::uint64_t evicted = 0;
  // Least-recently-used first; the newest entry always survives, so a
  // single artifact larger than the whole budget still serves.
  while (cached_bytes_ > options_.cache_byte_budget && cache_.size() > 1) {
    auto victim = cache_.begin();
    for (auto it = cache_.begin(); it != cache_.end(); ++it)
      if (it->second->last_used < victim->second->last_used) victim = it;
    // Byte accounting must never go negative: every resident entry's bytes
    // were added exactly once in GetOrLoad.
    CHECK_GE(cached_bytes_, victim->second->bytes)
        << "QueryEngine: cache byte accounting underflow evicting "
        << victim->first;
    cached_bytes_ -= victim->second->bytes;
    cache_.erase(victim);
    ++evicted;
  }
  if (options_.telemetry != nullptr && evicted > 0)
    options_.telemetry->AddCounter("service.evictions", evicted);
}

}  // namespace pivotscale
