// Newline-delimited JSON request/response protocol for pivotscale_serve.
//
// One request per line, one response per line, positionally ordered and
// correlated by an optional caller-chosen "id". Requests:
//   {"id": 1, "graph": "web.psx", "k": 8}
//   {"id": 2, "graph": "web.psx", "k": 6, "per_vertex": true, "top": 10}
//   {"id": 3, "graph": "web.psx", "all_k": true}
// Accepted keys: id (number), graph (string, required), k (number >= 1),
// all_k (bool), per_vertex (bool), top (number >= 1), structure
// ("remap" | "sparse" | "dense"). Unknown keys are rejected so a typo like
// "per_vertx" fails loudly instead of silently serving the default.
//
// Responses (counts are decimal strings — they are 128-bit):
//   {"id":1,"ok":true,"k":8,"count":"6352","cache_hit":true,
//    "memo_hit":false,"seconds":0.0021}
//   ... plus "per_size":[{"size":3,"count":"..."},...] for all_k and
//   "top_vertices":[{"vertex":17,"count":"..."},...] for per_vertex.
// Failures: {"id":4,"ok":false,"error":"..."}.
#ifndef PIVOTSCALE_SERVICE_PROTOCOL_H_
#define PIVOTSCALE_SERVICE_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "service/query_engine.h"

namespace pivotscale {

// A parsed request line: the query plus the correlation id (-1 if absent).
struct ProtocolRequest {
  std::int64_t id = -1;
  ServiceQuery query;
};

// Parses one NDJSON request line. Throws std::runtime_error on malformed
// JSON, a missing/empty "graph", out-of-range values, or unknown keys.
ProtocolRequest ParseRequest(const std::string& line);

// Serializes one response line (no trailing newline).
std::string SerializeResponse(std::int64_t id, const ServiceResult& result);

// Serializes a failure line for a request that never reached the engine
// (e.g. a parse error).
std::string SerializeError(std::int64_t id, const std::string& message);

}  // namespace pivotscale

#endif  // PIVOTSCALE_SERVICE_PROTOCOL_H_
