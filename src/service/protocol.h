// Newline-delimited JSON request/response protocol for pivotscale_serve.
//
// One request per line, one response per line, positionally ordered and
// correlated by a required caller-chosen "id". Requests:
//   {"id": 1, "graph": "web.psx", "k": 8}
//   {"id": 2, "graph": "web.psx", "k": 6, "per_vertex": true, "top": 10}
//   {"id": 3, "graph": "web.psx", "all_k": true, "deadline_ms": 250}
// Accepted keys: id (number >= 0, required), graph (string, required),
// k (number >= 1), all_k (bool), per_vertex (bool), top (number >= 1),
// structure ("remap" | "sparse" | "dense"), deadline_ms (number >= 0 —
// a soft per-request deadline enforced by the network server at
// batch-group boundaries; the stdin server accepts and ignores it).
// Unknown keys are rejected so a typo like "per_vertx" fails loudly
// instead of silently serving the default.
//
// Responses (counts are decimal strings — they are 128-bit):
//   {"id":1,"ok":true,"k":8,"count":"6352","cache_hit":true,
//    "memo_hit":false,"seconds":0.0021}
//   ... plus "per_size":[{"size":3,"count":"..."},...] for all_k and
//   "top_vertices":[{"vertex":17,"count":"..."},...] for per_vertex.
// Failures: {"id":4,"ok":false,"error":"..."}.
#ifndef PIVOTSCALE_SERVICE_PROTOCOL_H_
#define PIVOTSCALE_SERVICE_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "service/query_engine.h"

namespace pivotscale {

// A parsed request line: the query, the correlation id, and the optional
// relative deadline (-1 when the request carried none).
struct ProtocolRequest {
  std::int64_t id = -1;
  std::int64_t deadline_ms = -1;
  ServiceQuery query;
};

// Parses one NDJSON request line. Throws std::runtime_error on malformed
// JSON, a missing/negative "id", a missing/empty "graph", out-of-range
// values, or unknown keys.
ProtocolRequest ParseRequest(const std::string& line);

// Serializes one response line (no trailing newline).
std::string SerializeResponse(std::int64_t id, const ServiceResult& result);

// Serializes a failure line for a request that never reached the engine
// (e.g. a parse error).
std::string SerializeError(std::int64_t id, const std::string& message);

}  // namespace pivotscale

#endif  // PIVOTSCALE_SERVICE_PROTOCOL_H_
