// Batched clique-query engine over preprocessed .psx artifacts.
//
// The serving model: artifacts (src/store/) hold the query-independent
// pipeline prefix — graph, ordering, DAG — so answering a query is only
// the counting phase. The engine adds the two layers a serving system
// needs on top:
//
//  * An LRU cache of loaded artifacts under a byte budget. Entries are
//    shared_ptrs, so eviction never frees an artifact a running batch
//    still uses; the budget is soft in exactly one way: the most recently
//    touched artifact always stays resident even if it alone exceeds it.
//
//  * Per-artifact count memoization. A batch's same-graph k-queries are
//    deduplicated into one counting run: a single kAllUpToK run at the
//    batch's largest k answers every pending k-query on that graph (an
//    all-k query upgrades the run to kAllK, which covers everything).
//    The per-size table is memoized, so later batches whose k is already
//    covered skip counting entirely. Per-vertex queries need kSingleK
//    per-vertex runs; those memoize per (k).
//
// Thread safety: RunBatch may be called concurrently from any number of
// threads. The cache map has its own mutex; each artifact entry has a
// mutex held while counting on that artifact, so concurrent batches on
// one graph serialize (the second gets memo hits) while batches on
// different graphs count in parallel. Each counting run goes through the
// exec-layer scheduler, which leases its threads from the process-wide
// ThreadBudget (exec/thread_budget.h): when several batches count at
// once each run's team shrinks so the total stays within the machine,
// rather than each run independently spinning up a full OpenMP pool.
//
// Telemetry (when a registry is configured): "service.batch" and
// "service.count" spans, and counters "service.queries",
// "service.errors", "service.cache_hits" / "service.cache_misses",
// "service.memo_hits", "service.count_runs",
// "service.per_vertex_runs", "service.evictions", plus the
// "service.cache_bytes" gauge. Because counting runs straight off the
// stored DAG, a served batch records *no* "heuristic" / "ordering" /
// "directionalize" spans — the acceptance signal that the preprocessed
// phases were skipped.
#ifndef PIVOTSCALE_SERVICE_QUERY_ENGINE_H_
#define PIVOTSCALE_SERVICE_QUERY_ENGINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "pivot/count.h"
#include "store/artifact.h"
#include "util/uint128.h"

namespace pivotscale {

class TelemetryRegistry;

// One clique-count request against a stored artifact.
struct ServiceQuery {
  std::string graph;        // .psx artifact path (the cache key)
  std::uint32_t k = 8;      // target clique size (>= 1)
  bool all_k = false;       // report every clique size instead of one k
  bool per_vertex = false;  // top-N per-vertex participation counts
  std::uint32_t top = 1;    // how many top vertices to report (per_vertex)
  // Execution hint only: counts are identical across structures, so
  // memoized answers may have been produced with a different one.
  SubgraphKind structure = SubgraphKind::kRemap;
};

struct VertexCount {
  NodeId vertex = 0;
  BigCount count{};
};

struct ServiceResult {
  bool ok = false;
  std::string error;        // set when !ok
  std::uint32_t k = 0;      // echo of the query
  bool all_k = false;
  BigCount total{};         // k-cliques at the query's k (all modes)
  // per_size[s] = number of s-cliques, s in [1, per_size.size());
  // filled for all_k queries (index 0 unused).
  std::vector<BigCount> per_size;
  // Top vertices by k-clique participation, descending; per_vertex only.
  std::vector<VertexCount> top_vertices;
  bool artifact_cache_hit = false;  // artifact was already resident
  bool memo_hit = false;            // answered without a counting run
  double seconds = 0;               // wall time inside the engine
};

struct QueryEngineOptions {
  // Cache byte budget over GraphArtifact::HeapBytes() of resident entries.
  std::size_t cache_byte_budget = std::size_t{1} << 30;
  // Requested threads per counting run; 0 = whole machine. The realized
  // team per run is whatever the shared ThreadBudget grants (at least 1),
  // so concurrent runs divide the machine instead of oversubscribing it.
  int num_threads = 0;
  // Not owned; must outlive the engine.
  TelemetryRegistry* telemetry = nullptr;
};

class QueryEngine {
 public:
  explicit QueryEngine(const QueryEngineOptions& options = {});

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  // Answers a batch. Results are positionally aligned with `queries`.
  // Per-query failures (missing artifact, invalid k) come back as
  // ok = false results; the call itself only throws on engine misuse.
  std::vector<ServiceResult> RunBatch(
      const std::vector<ServiceQuery>& queries);

  // Convenience single-query form.
  ServiceResult RunQuery(const ServiceQuery& query);

  // Loads an artifact into the cache ahead of traffic; throws on failure.
  void Preload(const std::string& path);

  // Cache introspection (tests, ops).
  std::size_t CachedArtifacts() const;
  std::size_t CachedBytes() const;

 private:
  struct Entry {
    std::mutex count_mutex;  // serializes counting + memo updates
    GraphArtifact artifact;
    std::size_t bytes = 0;
    std::uint64_t last_used = 0;  // LRU stamp; guarded by cache_mutex_

    // Memo: per_size[s] is valid for s <= covered_k, or for every size
    // when all_k_covered. Guarded by count_mutex.
    bool all_k_covered = false;
    std::uint32_t covered_k = 0;
    std::vector<BigCount> per_size;
    // Per-vertex participation runs memoized per k (kSingleK results).
    struct PerVertexMemo {
      BigCount total{};
      std::vector<BigCount> counts;
    };
    std::map<std::uint32_t, PerVertexMemo> per_vertex_by_k;
  };

  std::shared_ptr<Entry> GetOrLoad(const std::string& path,
                                   bool* cache_hit);
  void EvictOverBudget();  // requires cache_mutex_ held

  // Runs every query of one group (same artifact) and writes results.
  void ServeGroup(const std::shared_ptr<Entry>& entry,
                  const std::vector<ServiceQuery>& queries,
                  const std::vector<std::size_t>& indices,
                  std::vector<ServiceResult>* results);

  QueryEngineOptions options_;
  mutable std::mutex cache_mutex_;
  std::map<std::string, std::shared_ptr<Entry>> cache_;
  std::size_t cached_bytes_ = 0;
  std::uint64_t use_clock_ = 0;
};

}  // namespace pivotscale

#endif  // PIVOTSCALE_SERVICE_QUERY_ENGINE_H_
