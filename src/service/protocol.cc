#include "service/protocol.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/json_writer.h"

namespace pivotscale {

namespace {

// Integral-number extraction with range checks: telemetry-grade doubles
// are exact up to 2^53, far beyond any valid id/k/top.
std::int64_t RequireInt(const JsonValue& v, const char* key) {
  if (!v.IsNumber() || v.number != std::floor(v.number))
    throw std::runtime_error(std::string("request key \"") + key +
                             "\" must be an integer");
  return static_cast<std::int64_t>(v.number);
}

bool RequireBool(const JsonValue& v, const char* key) {
  if (v.type != JsonValue::Type::kBool)
    throw std::runtime_error(std::string("request key \"") + key +
                             "\" must be a boolean");
  return v.bool_value;
}

SubgraphKind ParseStructureName(const std::string& name) {
  if (name == "remap") return SubgraphKind::kRemap;
  if (name == "sparse") return SubgraphKind::kSparse;
  if (name == "dense") return SubgraphKind::kDense;
  throw std::runtime_error("unknown structure \"" + name +
                           "\" (accepted: remap, sparse, dense)");
}

}  // namespace

ProtocolRequest ParseRequest(const std::string& line) {
  const JsonValue doc = ParseJson(line);
  if (!doc.IsObject())
    throw std::runtime_error("request must be a JSON object");

  ProtocolRequest req;
  bool has_id = false;
  for (const auto& [key, value] : doc.object) {
    if (key == "id") {
      req.id = RequireInt(value, "id");
      if (req.id < 0)
        throw std::runtime_error("request key \"id\" must be >= 0");
      has_id = true;
    } else if (key == "deadline_ms") {
      req.deadline_ms = RequireInt(value, "deadline_ms");
      if (req.deadline_ms < 0)
        throw std::runtime_error(
            "request key \"deadline_ms\" must be >= 0");
    } else if (key == "graph") {
      if (!value.IsString())
        throw std::runtime_error("request key \"graph\" must be a string");
      req.query.graph = value.string_value;
    } else if (key == "k") {
      const std::int64_t k = RequireInt(value, "k");
      if (k < 1 || k > std::numeric_limits<std::uint32_t>::max())
        throw std::runtime_error("request key \"k\" out of range");
      req.query.k = static_cast<std::uint32_t>(k);
    } else if (key == "all_k") {
      req.query.all_k = RequireBool(value, "all_k");
    } else if (key == "per_vertex") {
      req.query.per_vertex = RequireBool(value, "per_vertex");
    } else if (key == "top") {
      const std::int64_t top = RequireInt(value, "top");
      if (top < 1 || top > std::numeric_limits<std::uint32_t>::max())
        throw std::runtime_error("request key \"top\" out of range");
      req.query.top = static_cast<std::uint32_t>(top);
    } else if (key == "structure") {
      if (!value.IsString())
        throw std::runtime_error(
            "request key \"structure\" must be a string");
      req.query.structure = ParseStructureName(value.string_value);
    } else {
      throw std::runtime_error("unknown request key \"" + key + "\"");
    }
  }
  if (!has_id)
    throw std::runtime_error(
        "request needs a non-negative \"id\" for response correlation");
  if (req.query.graph.empty())
    throw std::runtime_error(
        "request needs a non-empty \"graph\" artifact path");
  return req;
}

std::string SerializeResponse(std::int64_t id,
                              const ServiceResult& result) {
  if (!result.ok) return SerializeError(id, result.error);
  JsonWriter w;
  w.BeginObject();
  w.Key("id");
  w.Value(id);
  w.Key("ok");
  w.Value(true);
  w.Key("k");
  w.Value(static_cast<std::uint64_t>(result.k));
  w.Key("count");
  w.Value(result.total.ToString());
  if (result.all_k) {
    w.Key("per_size");
    w.BeginArray();
    for (std::size_t s = 1; s < result.per_size.size(); ++s) {
      if (result.per_size[s] == BigCount{}) continue;
      w.BeginObject();
      w.Key("size");
      w.Value(static_cast<std::uint64_t>(s));
      w.Key("count");
      w.Value(result.per_size[s].ToString());
      w.EndObject();
    }
    w.EndArray();
  }
  if (!result.top_vertices.empty()) {
    w.Key("top_vertices");
    w.BeginArray();
    for (const VertexCount& vc : result.top_vertices) {
      w.BeginObject();
      w.Key("vertex");
      w.Value(static_cast<std::uint64_t>(vc.vertex));
      w.Key("count");
      w.Value(vc.count.ToString());
      w.EndObject();
    }
    w.EndArray();
  }
  w.Key("cache_hit");
  w.Value(result.artifact_cache_hit);
  w.Key("memo_hit");
  w.Value(result.memo_hit);
  w.Key("seconds");
  w.Value(result.seconds);
  w.EndObject();
  return w.str();
}

std::string SerializeError(std::int64_t id, const std::string& message) {
  JsonWriter w;
  w.BeginObject();
  w.Key("id");
  w.Value(id);
  w.Key("ok");
  w.Value(false);
  w.Key("error");
  w.Value(message);
  w.EndObject();
  return w.str();
}

}  // namespace pivotscale
