#include "store/checksum.h"

#include <array>

namespace pivotscale {

namespace {

// Reflected ECMA-182 polynomial (CRC-64/XZ).
constexpr std::uint64_t kPoly = 0xC96C5795D7870F42ull;

std::array<std::uint64_t, 256> BuildTable() {
  std::array<std::uint64_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint64_t crc = i;
    for (int bit = 0; bit < 8; ++bit)
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    table[i] = crc;
  }
  return table;
}

const std::array<std::uint64_t, 256>& Table() {
  static const std::array<std::uint64_t, 256> table = BuildTable();
  return table;
}

}  // namespace

std::uint64_t Crc64Init() { return ~0ull; }

std::uint64_t Crc64Update(std::uint64_t state, const void* bytes,
                          std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(bytes);
  const auto& table = Table();
  for (std::size_t i = 0; i < size; ++i)
    state = (state >> 8) ^ table[(state ^ p[i]) & 0xFF];
  return state;
}

std::uint64_t Crc64Final(std::uint64_t state) { return ~state; }

std::uint64_t Crc64(const void* bytes, std::size_t size) {
  return Crc64Final(Crc64Update(Crc64Init(), bytes, size));
}

}  // namespace pivotscale
