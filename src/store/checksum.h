// CRC64 payload checksum for store artifacts.
//
// The .psx store format trails every file with a CRC64 of the preceding
// bytes. A CRC (unlike a plain hash mix) provably detects every single-bit
// error and every burst error shorter than the polynomial width, which is
// exactly the failure mode of a torn or bit-rotted artifact on disk.
// Polynomial: ECMA-182 (the xz/CRC-64 polynomial), bit-reflected, with
// initial value and final xor of all-ones.
#ifndef PIVOTSCALE_STORE_CHECKSUM_H_
#define PIVOTSCALE_STORE_CHECKSUM_H_

#include <cstddef>
#include <cstdint>

namespace pivotscale {

// CRC64/XZ of `bytes[0, size)`. Deterministic across platforms.
std::uint64_t Crc64(const void* bytes, std::size_t size);

// Incremental form: feed chunks with the previous return value as `state`;
// start from Crc64Init() and finish with Crc64Final(state).
std::uint64_t Crc64Init();
std::uint64_t Crc64Update(std::uint64_t state, const void* bytes,
                          std::size_t size);
std::uint64_t Crc64Final(std::uint64_t state);

}  // namespace pivotscale

#endif  // PIVOTSCALE_STORE_CHECKSUM_H_
