// Preprocessed graph store: the .psx artifact format.
//
// Every CountKCliques call redoes heuristic -> ordering -> directionalize
// even when the same graph is queried repeatedly. An artifact captures the
// expensive, query-independent part of the pipeline once: the undirected
// CSR graph, the chosen ordering (name + rank permutation), the
// directionalized DAG, and basic stats (degeneracy, max out-degree). The
// query service (src/service/) loads artifacts and goes straight to the
// counting phase.
//
// On-disk layout (all integers little-endian host order; the endianness
// sentinel rejects cross-endian files at load):
//   magic "PSX1"            4 bytes
//   u32 version             (currently 1)
//   u32 endian sentinel     0x01020304 as written by the producer
//   u32 reserved            0
//   u64 num_nodes
//   u64 num_graph_entries   directed entries of the undirected CSR (2|E|)
//   u64 num_dag_entries     entries of the DAG CSR (|E|)
//   u64 degeneracy
//   u64 max_out_degree
//   u32 ordering_name_len
//   u32 reserved            0
//   ordering name bytes     (ordering_name_len)
//   graph offsets           (num_nodes + 1) x u64
//   graph neighbors         num_graph_entries x u32
//   ranks                   num_nodes x u32 (permutation of [0, n))
//   dag offsets             (num_nodes + 1) x u64
//   dag neighbors           num_dag_entries x u32
//   crc64                   u64 over every preceding byte (incl. magic)
// Files are written atomically (temp + rename); the reader verifies magic,
// version, endianness, and checksum before parsing, then re-validates every
// structural invariant (CSR monotonicity, in-range neighbors, rank
// permutation) so a crafted file cannot reach the counting kernels.
#ifndef PIVOTSCALE_STORE_ARTIFACT_H_
#define PIVOTSCALE_STORE_ARTIFACT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "order/heuristic.h"
#include "order/ordering.h"

namespace pivotscale {

class TelemetryRegistry;

// Everything the counting phase needs, preprocessed and ready to serve.
struct GraphArtifact {
  Graph graph;                 // undirected input CSR
  Graph dag;                   // Directionalize(graph, ranks)
  std::string ordering_name;   // e.g. "approx-core(eps=-0.5)"
  std::vector<NodeId> ranks;   // the ordering's rank permutation
  EdgeId degeneracy = 0;       // exact degeneracy of `graph`
  EdgeId max_out_degree = 0;   // of `dag` (ordering quality)

  // Heap bytes held by the CSR arrays and the rank permutation — the cache
  // accounting unit of the query service.
  std::size_t HeapBytes() const;
};

struct ArtifactBuildOptions {
  // Heuristic thresholds used when no ordering is forced (Section III-E).
  HeuristicConfig heuristic;
  // When set, skip the heuristic and use exactly this ordering.
  std::optional<OrderingSpec> forced_ordering;
  // Exact degeneracy costs one sequential O(V + E) peel; skip it for huge
  // graphs where only the serving path matters (stored as 0).
  bool compute_degeneracy = true;
  // When non-null, records "store.heuristic" / "store.ordering" /
  // "store.directionalize" / "store.degeneracy" spans plus the stage
  // telemetry each phase already emits.
  TelemetryRegistry* telemetry = nullptr;
};

// Runs the query-independent pipeline prefix (heuristic, ordering,
// directionalize, stats) on an undirected simple graph.
GraphArtifact BuildArtifact(const Graph& g,
                            const ArtifactBuildOptions& options = {});

// Serializes to `path` atomically (temp file + rename).
void WriteArtifact(const std::string& path, const GraphArtifact& artifact);

// Loads and fully validates a .psx file. Throws std::runtime_error naming
// the failure: bad magic, unsupported version, endianness mismatch,
// checksum mismatch, truncation, or any structural invariant violation.
GraphArtifact ReadArtifact(const std::string& path);

// The current writer version (reader accepts exactly this).
inline constexpr std::uint32_t kArtifactVersion = 1;

}  // namespace pivotscale

#endif  // PIVOTSCALE_STORE_ARTIFACT_H_
