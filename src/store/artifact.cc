#include "store/artifact.h"

#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "graph/dag.h"
#include "order/core_order.h"
#include "store/checksum.h"
#include "util/atomic_file.h"
#include "util/check.h"
#include "util/telemetry.h"

namespace pivotscale {

namespace {

constexpr char kMagic[4] = {'P', 'S', 'X', '1'};
constexpr std::uint32_t kEndianSentinel = 0x01020304u;

void AppendBytes(std::string* out, const void* data, std::size_t bytes) {
  out->append(static_cast<const char*>(data), bytes);
}

template <typename T>
void AppendScalar(std::string* out, T value) {
  AppendBytes(out, &value, sizeof(value));
}

// Sequential reader over an in-memory file image; every read is
// bounds-checked so a lying header cannot run past the buffer.
class ByteReader {
 public:
  ByteReader(const std::string& path, const std::string& data)
      : path_(path), data_(data) {}

  template <typename T>
  T ReadScalar() {
    T value;
    ReadInto(&value, sizeof(value));
    return value;
  }

  std::string ReadString(std::size_t bytes) {
    Require(bytes);
    std::string s(data_.data() + pos_, bytes);
    pos_ += bytes;
    return s;
  }

  template <typename T>
  std::vector<T> ReadVector(std::uint64_t count) {
    if (count > data_.size() / sizeof(T))
      throw std::runtime_error(path_ + ": element count " +
                               std::to_string(count) +
                               " exceeds the file size");
    std::vector<T> v(count);
    ReadInto(v.data(), count * sizeof(T));
    return v;
  }

  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  void Require(std::size_t bytes) {
    if (data_.size() - pos_ < bytes)
      throw std::runtime_error(path_ + ": truncated artifact body");
  }
  void ReadInto(void* dst, std::size_t bytes) {
    Require(bytes);
    std::memcpy(dst, data_.data() + pos_, bytes);
    pos_ += bytes;
  }

  const std::string& path_;
  const std::string& data_;
  std::size_t pos_ = 0;
};

// The CSR invariants the counting kernels assume; mirrors the .psg reader.
void ValidateCsr(const std::string& path, const char* what,
                 const std::vector<EdgeId>& offsets,
                 const std::vector<NodeId>& neighbors,
                 std::uint64_t num_nodes) {
  for (std::uint64_t u = 0; u < num_nodes; ++u)
    if (offsets[u] > offsets[u + 1])
      throw std::runtime_error(path + ": corrupt " + what +
                               " offsets (decreasing at " +
                               std::to_string(u) + ")");
  if (offsets.empty() || offsets[0] != 0 ||
      offsets[num_nodes] != neighbors.size())
    throw std::runtime_error(path + ": corrupt " + what +
                             " offsets (do not cover the neighbor array)");
  for (std::size_t e = 0; e < neighbors.size(); ++e)
    if (neighbors[e] >= num_nodes)
      throw std::runtime_error(path + ": " + what + " neighbor id " +
                               std::to_string(neighbors[e]) +
                               " is out of range");
}

}  // namespace

std::size_t GraphArtifact::HeapBytes() const {
  return graph.HeapBytes() + dag.HeapBytes() +
         ranks.capacity() * sizeof(NodeId) + ordering_name.size();
}

GraphArtifact BuildArtifact(const Graph& g,
                            const ArtifactBuildOptions& options) {
  if (!g.undirected())
    throw std::invalid_argument("BuildArtifact: input must be undirected");

  TelemetryRegistry* telemetry = options.telemetry;
  GraphArtifact artifact;

  OrderingSpec spec;
  {
    TelemetryRegistry::ScopedSpan span(telemetry, "store.heuristic");
    if (options.forced_ordering.has_value()) {
      spec = *options.forced_ordering;
    } else {
      const HeuristicDecision decision =
          SelectOrdering(g, options.heuristic, telemetry);
      spec.kind = decision.use_core_approx ? OrderingKind::kApproxCore
                                           : OrderingKind::kDegree;
      spec.epsilon = options.heuristic.epsilon;
    }
  }

  {
    TelemetryRegistry::ScopedSpan span(telemetry, "store.ordering");
    Ordering ordering = ComputeOrdering(g, spec, telemetry);
    artifact.ordering_name = std::move(ordering.name);
    artifact.ranks = std::move(ordering.ranks);
  }

  {
    TelemetryRegistry::ScopedSpan span(telemetry, "store.directionalize");
    artifact.dag = Directionalize(g, artifact.ranks, telemetry);
    artifact.max_out_degree = MaxOutDegree(artifact.dag);
  }

  if (options.compute_degeneracy) {
    TelemetryRegistry::ScopedSpan span(telemetry, "store.degeneracy");
    artifact.degeneracy = Degeneracy(g);
  }

  artifact.graph = g;
  // Pipeline postconditions every consumer (writer, query engine) builds
  // on; a mismatch here means one of the phases above broke its contract.
  CHECK_EQ(artifact.ranks.size(), static_cast<std::size_t>(g.NumNodes()));
  CHECK_EQ(artifact.dag.NumNodes(), g.NumNodes());
  CHECK_EQ(artifact.dag.NumDirectedEdges() * 2, g.NumDirectedEdges())
      << "BuildArtifact: DAG must hold each undirected edge exactly once";
  return artifact;
}

void WriteArtifact(const std::string& path, const GraphArtifact& artifact) {
  const Graph& g = artifact.graph;
  const Graph& dag = artifact.dag;
  if (!g.undirected())
    throw std::invalid_argument("WriteArtifact: graph must be undirected");
  if (dag.NumNodes() != g.NumNodes() ||
      artifact.ranks.size() != g.NumNodes())
    throw std::invalid_argument(
        "WriteArtifact: graph / dag / ranks sizes disagree");

  const std::uint64_t num_nodes = g.NumNodes();
  const std::uint64_t num_graph_entries = g.NumDirectedEdges();
  const std::uint64_t num_dag_entries = dag.NumDirectedEdges();

  std::string payload;
  payload.reserve(96 + artifact.ordering_name.size() +
                  2 * (num_nodes + 1) * sizeof(EdgeId) +
                  (num_graph_entries + num_dag_entries + num_nodes) *
                      sizeof(NodeId));
  AppendBytes(&payload, kMagic, sizeof(kMagic));
  AppendScalar(&payload, kArtifactVersion);
  AppendScalar(&payload, kEndianSentinel);
  AppendScalar(&payload, std::uint32_t{0});
  AppendScalar(&payload, num_nodes);
  AppendScalar(&payload, num_graph_entries);
  AppendScalar(&payload, num_dag_entries);
  AppendScalar(&payload, static_cast<std::uint64_t>(artifact.degeneracy));
  AppendScalar(&payload,
               static_cast<std::uint64_t>(artifact.max_out_degree));
  AppendScalar(&payload,
               static_cast<std::uint32_t>(artifact.ordering_name.size()));
  AppendScalar(&payload, std::uint32_t{0});
  AppendBytes(&payload, artifact.ordering_name.data(),
              artifact.ordering_name.size());
  AppendBytes(&payload, g.offsets().data(),
              (num_nodes + 1) * sizeof(EdgeId));
  AppendBytes(&payload, g.neighbor_array().data(),
              num_graph_entries * sizeof(NodeId));
  AppendBytes(&payload, artifact.ranks.data(), num_nodes * sizeof(NodeId));
  AppendBytes(&payload, dag.offsets().data(),
              (num_nodes + 1) * sizeof(EdgeId));
  AppendBytes(&payload, dag.neighbor_array().data(),
              num_dag_entries * sizeof(NodeId));
  AppendScalar(&payload, Crc64(payload.data(), payload.size()));

  WriteFileAtomic(path, payload);
}

GraphArtifact ReadArtifact(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in) throw std::runtime_error(path + ": read failure");
  const std::string data = std::move(buffer).str();

  // Fixed header through the name length: 4 + 3*4 + 5*8 + 2*4 bytes, plus
  // the trailing crc64.
  constexpr std::size_t kFixedHeader = 4 + 3 * 4 + 5 * 8 + 2 * 4;
  if (data.size() < kFixedHeader + sizeof(std::uint64_t))
    throw std::runtime_error(path + ": truncated artifact header");
  if (std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0)
    throw std::runtime_error(path + ": not a PSX1 artifact file");

  std::uint32_t version = 0, endian = 0;
  std::memcpy(&version, data.data() + 4, sizeof(version));
  std::memcpy(&endian, data.data() + 8, sizeof(endian));
  if (version != kArtifactVersion)
    throw std::runtime_error(
        path + ": unsupported artifact version " + std::to_string(version) +
        " (this reader supports version " +
        std::to_string(kArtifactVersion) + ")");
  if (endian != kEndianSentinel)
    throw std::runtime_error(path +
                             ": endianness mismatch (artifact was written "
                             "on an incompatible platform)");

  // Whole-file integrity before trusting any size field: a flipped bit
  // anywhere must fail here, not surface as a subtle parse difference.
  std::uint64_t stored_crc = 0;
  std::memcpy(&stored_crc, data.data() + data.size() - sizeof(stored_crc),
              sizeof(stored_crc));
  const std::uint64_t computed_crc =
      Crc64(data.data(), data.size() - sizeof(stored_crc));
  if (stored_crc != computed_crc)
    throw std::runtime_error(path + ": checksum mismatch (stored " +
                             std::to_string(stored_crc) + ", computed " +
                             std::to_string(computed_crc) +
                             "); the artifact is corrupt");

  const std::string body(data.data(), data.size() - sizeof(stored_crc));
  ByteReader reader(path, body);
  reader.ReadString(sizeof(kMagic));  // magic, already checked
  reader.ReadScalar<std::uint32_t>();  // version
  reader.ReadScalar<std::uint32_t>();  // endian sentinel
  reader.ReadScalar<std::uint32_t>();  // reserved
  const auto num_nodes = reader.ReadScalar<std::uint64_t>();
  const auto num_graph_entries = reader.ReadScalar<std::uint64_t>();
  const auto num_dag_entries = reader.ReadScalar<std::uint64_t>();
  const auto degeneracy = reader.ReadScalar<std::uint64_t>();
  const auto max_out_degree = reader.ReadScalar<std::uint64_t>();
  const auto name_len = reader.ReadScalar<std::uint32_t>();
  reader.ReadScalar<std::uint32_t>();  // reserved

  if (num_nodes > std::numeric_limits<NodeId>::max())
    throw std::runtime_error(path + ": header num_nodes " +
                             std::to_string(num_nodes) +
                             " exceeds the NodeId limit");
  if (num_dag_entries * 2 != num_graph_entries)
    throw std::runtime_error(
        path + ": header edge counts disagree (graph holds " +
        std::to_string(num_graph_entries) + " directed entries, dag " +
        std::to_string(num_dag_entries) + ")");

  GraphArtifact artifact;
  artifact.ordering_name = reader.ReadString(name_len);
  artifact.degeneracy = degeneracy;
  artifact.max_out_degree = max_out_degree;

  auto graph_offsets = reader.ReadVector<EdgeId>(num_nodes + 1);
  auto graph_neighbors = reader.ReadVector<NodeId>(num_graph_entries);
  artifact.ranks = reader.ReadVector<NodeId>(num_nodes);
  auto dag_offsets = reader.ReadVector<EdgeId>(num_nodes + 1);
  auto dag_neighbors = reader.ReadVector<NodeId>(num_dag_entries);
  if (reader.remaining() != 0)
    throw std::runtime_error(path + ": trailing bytes after the payload");

  ValidateCsr(path, "graph", graph_offsets, graph_neighbors, num_nodes);
  ValidateCsr(path, "dag", dag_offsets, dag_neighbors, num_nodes);
  if (!IsPermutation(artifact.ranks))
    throw std::runtime_error(path +
                             ": stored ranks are not a permutation");

  artifact.graph = Graph(std::move(graph_offsets),
                         std::move(graph_neighbors), /*undirected=*/true);
  artifact.dag = Graph(std::move(dag_offsets), std::move(dag_neighbors),
                       /*undirected=*/false);
  return artifact;
}

}  // namespace pivotscale
