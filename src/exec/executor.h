// The unified parallel execution layer. Every parallel loop in the tree
// runs through these primitives; the only raw `#pragma omp parallel`
// regions outside this directory live in util/prefix_sum.h (allowlisted —
// see tools/lint.py `raw-omp-parallel`).
//
// What this layer adds over a bare OpenMP pragma:
//   * a team leased from the process-wide ThreadBudget, so concurrent
//     regions (serving workers x counting teams) cannot oversubscribe the
//     machine;
//   * per-worker reduction slots: each worker gets a private accumulator
//     built by a factory and the caller merges them serially after the
//     region — no `critical` sections anywhere;
//   * cost-weighted adaptive chunking: an optional per-item cost estimate
//     turns into chunk boundaries of roughly equal estimated work, so a
//     few heavy items do not serialize the tail of the loop;
//   * `exec.*` telemetry: tasks, chunks, splits, per-worker busy-second
//     and chunk-count series, team size, and busy-time CoV.
//
// Sizing is always realized-team authoritative: per-worker arrays are
// sized to omp_get_num_threads() inside the region, never to the request
// (OpenMP may deliver fewer threads, e.g. a team of 1 inside an active
// region with nesting disabled).
#ifndef PIVOTSCALE_EXEC_EXECUTOR_H_
#define PIVOTSCALE_EXEC_EXECUTOR_H_

#include <omp.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "exec/thread_budget.h"
#include "util/check.h"
#include "util/timer.h"

namespace pivotscale {

class TelemetryRegistry;

struct ExecOptions {
  // Requested team size; 0 = everything the budget has free. The actual
  // grant comes from ThreadBudget::Global().
  int num_threads = 0;
  // Minimum items per chunk (uniform mode) / minimum items between two
  // cost-weighted cuts.
  std::size_t grain = 1;
  // Target chunks per worker. Higher = finer-grained self-scheduling;
  // 1 reproduces a static partition (one contiguous block per worker).
  int chunks_per_worker = 8;
  // Optional per-item work estimate. When set, chunk boundaries equalize
  // estimated work instead of item count.
  std::function<double(std::size_t)> cost;
  // Number of long-tail splits the caller performed while building the
  // item list (recorded as exec.splits; the executor itself runs whatever
  // list it is given).
  std::uint64_t splits = 0;
  // When non-null the region records exec.* metrics here. Not owned.
  TelemetryRegistry* telemetry = nullptr;
};

// What one region observed. worker_* vectors are sized to the realized
// team, not the request.
struct ExecStats {
  int team = 0;
  std::uint64_t tasks = 0;   // items handed to the region
  std::uint64_t chunks = 0;  // chunk count after (cost-weighted) slicing
  std::uint64_t splits = 0;  // copied from ExecOptions::splits
  double seconds = 0;        // region wall time
  std::vector<double> worker_busy_seconds;
  std::vector<std::uint64_t> worker_chunks;
};

namespace exec_detail {

// Chunk boundaries for n items: bounds[c]..bounds[c+1] is chunk c.
// Uniform when options.cost is unset, estimated-work-equalizing otherwise.
std::vector<std::size_t> BuildChunkBounds(std::size_t n, int team,
                                          const ExecOptions& options);

void RecordExecTelemetry(TelemetryRegistry* telemetry,
                         const ExecStats& stats);

}  // namespace exec_detail

// The core primitive: runs `body(worker, item)` over items [0, n) on a
// leased team. Each realized worker owns a private `Worker` built by
// `make_worker(tid)`; after the region, `merge(worker)` runs serially
// (in tid order) over every constructed worker. Workers pull chunks off a
// shared atomic cursor, so a worker finishing early keeps eating chunks.
template <typename MakeWorker, typename Body, typename Merge>
ExecStats ParallelForWorkers(std::size_t n, const ExecOptions& options,
                             MakeWorker&& make_worker, Body&& body,
                             Merge&& merge) {
  using Worker = std::decay_t<decltype(make_worker(0))>;

  ThreadLease lease = ThreadBudget::Global().Acquire(options.num_threads);
  const int granted = lease.threads();
  const std::vector<std::size_t> bounds =
      exec_detail::BuildChunkBounds(n, granted, options);
  const std::size_t num_chunks = bounds.empty() ? 0 : bounds.size() - 1;

  ExecStats stats;
  stats.tasks = n;
  stats.chunks = num_chunks;
  stats.splits = options.splits;

  std::vector<std::optional<Worker>> slots(
      static_cast<std::size_t>(granted));
  std::atomic<std::size_t> cursor{0};
  Timer wall;
#pragma omp parallel num_threads(granted)
  {
    const int tid = omp_get_thread_num();
#pragma omp single
    {
      // Realized team is authoritative for every per-worker array; the
      // request (and even the grant) may not be delivered in full.
      const int team = omp_get_num_threads();
      stats.team = team;
      stats.worker_busy_seconds.assign(team, 0.0);
      stats.worker_chunks.assign(team, 0);
    }
    // (single's implicit barrier: every thread sees the sized arrays)
    CHECK_LT(static_cast<std::size_t>(tid), slots.size())
        << "exec: OpenMP delivered a thread id outside the granted team";
    slots[tid].emplace(make_worker(tid));
    std::uint64_t my_chunks = 0;
    Timer busy;
    for (;;) {
      const std::size_t c = cursor.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) break;
      ++my_chunks;
      for (std::size_t i = bounds[c]; i < bounds[c + 1]; ++i)
        body(*slots[tid], i);
    }
    stats.worker_busy_seconds[tid] = busy.Seconds();
    stats.worker_chunks[tid] = my_chunks;
  }
  stats.seconds = wall.Seconds();

  for (auto& slot : slots)
    if (slot.has_value()) merge(*slot);

  exec_detail::RecordExecTelemetry(options.telemetry, stats);
  return stats;
}

// Loop without worker state: body(item).
template <typename Body>
ExecStats ParallelFor(std::size_t n, const ExecOptions& options,
                      Body&& body) {
  struct Unit {};
  return ParallelForWorkers(
      n, options, [](int) { return Unit{}; },
      [&body](Unit&, std::size_t i) { body(i); }, [](Unit&) {});
}

// Scalar (or struct) reduction: every worker folds into a private copy of
// `identity` via body(acc, item); partials combine serially with
// combine(result, partial). Deterministic given a deterministic combine
// over any partition (the usual requirement for parallel reductions).
template <typename T, typename Body, typename Combine>
T ParallelReduce(std::size_t n, const ExecOptions& options, T identity,
                 Body&& body, Combine&& combine) {
  T result = identity;
  ParallelForWorkers(
      n, options, [&identity](int) { return identity; },
      [&body](T& acc, std::size_t i) { body(acc, i); },
      [&result, &combine](T& partial) { combine(result, partial); });
  return result;
}

}  // namespace pivotscale

#endif  // PIVOTSCALE_EXEC_EXECUTOR_H_
