#include "exec/executor.h"

#include <algorithm>

#include "util/stats.h"
#include "util/telemetry.h"

namespace pivotscale {
namespace exec_detail {

std::vector<std::size_t> BuildChunkBounds(std::size_t n, int team,
                                          const ExecOptions& options) {
  std::vector<std::size_t> bounds;
  bounds.push_back(0);
  if (n == 0) return bounds;

  const std::size_t grain = std::max<std::size_t>(1, options.grain);
  const std::size_t target_chunks =
      std::max<std::size_t>(1, static_cast<std::size_t>(team) *
                                   std::max(1, options.chunks_per_worker));
  if (options.cost) {
    // Equal-estimated-work cuts: walk the prefix sum of the cost estimates
    // and cut every ~total/target_chunks units. Estimates are clamped to
    // >= 1 so zero-cost runs still advance the cut positions.
    double total = 0;
    std::vector<double> prefix(n);
    for (std::size_t i = 0; i < n; ++i) {
      total += std::max(1.0, options.cost(i));
      prefix[i] = total;
    }
    const double per_chunk =
        std::max(1.0, total / static_cast<double>(target_chunks));
    double next_cut = per_chunk;
    for (std::size_t i = 1; i < n; ++i) {
      if (prefix[i - 1] >= next_cut && i - bounds.back() >= grain) {
        bounds.push_back(i);
        next_cut = prefix[i - 1] + per_chunk;
      }
    }
  } else {
    const std::size_t chunk =
        std::max(grain, (n + target_chunks - 1) / target_chunks);
    for (std::size_t b = chunk; b < n; b += chunk) bounds.push_back(b);
  }
  bounds.push_back(n);
  return bounds;
}

void RecordExecTelemetry(TelemetryRegistry* telemetry,
                         const ExecStats& stats) {
  if (telemetry == nullptr) return;
  telemetry->AddCounter("exec.regions", 1);
  telemetry->AddCounter("exec.tasks", stats.tasks);
  telemetry->AddCounter("exec.chunks", stats.chunks);
  telemetry->AddCounter("exec.splits", stats.splits);
  telemetry->SetSeries("exec.worker_busy_seconds",
                       stats.worker_busy_seconds);
  std::vector<double> chunk_series(stats.worker_chunks.size());
  for (std::size_t t = 0; t < stats.worker_chunks.size(); ++t)
    chunk_series[t] = static_cast<double>(stats.worker_chunks[t]);
  telemetry->SetSeries("exec.worker_chunks", std::move(chunk_series));
  telemetry->SetGauge("exec.team", static_cast<double>(stats.team));
  telemetry->SetGauge("exec.busy_cov",
                      CoeffOfVariation(stats.worker_busy_seconds));
  telemetry->RecordSpan("exec.region_wall", stats.seconds);
}

}  // namespace exec_detail
}  // namespace pivotscale
