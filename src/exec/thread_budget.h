// Process-wide thread-budget registry: the single owner of "how many
// threads may be busy at once".
//
// Before this layer, every OpenMP site picked its own team size from
// omp_get_max_threads() and the serving path multiplied that by the
// worker-pool size, so N workers x T counting threads could oversubscribe
// the machine N-fold. Now every parallel region (src/exec/executor.h) and
// every long-lived worker pool first leases capacity here:
//
//   ThreadLease lease = ThreadBudget::Global().Acquire(requested);
//   ... run a team of lease.threads() ...   // released by the destructor
//
// Grant rule: a request of 0 means "everything currently free". A request
// never blocks and is never granted 0 — when the budget is exhausted the
// lease still grants one thread (the caller's own), so progress is always
// possible. Under full contention the busy-thread total can therefore
// exceed capacity by one thread per concurrent lease; it can never exceed
// it multiplicatively, which is the failure mode this registry exists to
// prevent.
#ifndef PIVOTSCALE_EXEC_THREAD_BUDGET_H_
#define PIVOTSCALE_EXEC_THREAD_BUDGET_H_

#include <mutex>

namespace pivotscale {

class ThreadBudget;

// RAII capacity grant. Movable, not copyable; returns its grant to the
// budget on destruction.
class ThreadLease {
 public:
  ThreadLease() = default;
  ThreadLease(ThreadLease&& other) noexcept
      : budget_(other.budget_), threads_(other.threads_) {
    other.budget_ = nullptr;
    other.threads_ = 0;
  }
  ThreadLease& operator=(ThreadLease&& other) noexcept {
    if (this != &other) {
      Release();
      budget_ = other.budget_;
      threads_ = other.threads_;
      other.budget_ = nullptr;
      other.threads_ = 0;
    }
    return *this;
  }
  ThreadLease(const ThreadLease&) = delete;
  ThreadLease& operator=(const ThreadLease&) = delete;
  ~ThreadLease() { Release(); }

  // Number of threads this lease grants (>= 1 for a live lease).
  int threads() const { return threads_; }

 private:
  friend class ThreadBudget;
  ThreadLease(ThreadBudget* budget, int threads)
      : budget_(budget), threads_(threads) {}
  void Release();

  ThreadBudget* budget_ = nullptr;
  int threads_ = 0;
};

class ThreadBudget {
 public:
  // capacity 0 = derive from the environment: the OpenMP default team
  // size (honors OMP_NUM_THREADS), or the processor count when the
  // constructor runs inside an active parallel region (where the OpenMP
  // default collapses to 1 and would starve the whole process).
  explicit ThreadBudget(int capacity = 0);
  ThreadBudget(const ThreadBudget&) = delete;
  ThreadBudget& operator=(const ThreadBudget&) = delete;

  // The shared process-wide budget every executor region and worker pool
  // draws from.
  static ThreadBudget& Global();

  // Leases up to `requested` threads (0 = everything currently free).
  // Never blocks; always grants at least one thread. The grant is also
  // capped at capacity(), so an absurd request cannot oversubscribe.
  ThreadLease Acquire(int requested);

  int capacity() const;
  // Threads currently out on leases (may transiently exceed capacity by
  // the min-1 progress grants).
  int in_use() const;

  // Re-caps the budget (binaries' --threads flag; tests). Must be >= 1.
  // Applies to leases acquired after the call; outstanding leases keep
  // their grants.
  void SetCapacity(int capacity);

 private:
  friend class ThreadLease;
  void Release(int threads);

  mutable std::mutex mutex_;
  int capacity_;
  int in_use_ = 0;
};

}  // namespace pivotscale

#endif  // PIVOTSCALE_EXEC_THREAD_BUDGET_H_
