#include "exec/thread_budget.h"

#include <omp.h>

#include <algorithm>

#include "util/check.h"

namespace pivotscale {

void ThreadLease::Release() {
  if (budget_ != nullptr) budget_->Release(threads_);
  budget_ = nullptr;
  threads_ = 0;
}

ThreadBudget::ThreadBudget(int capacity) : capacity_(capacity) {
  if (capacity_ <= 0) {
    // omp_get_max_threads() inside an active region reports the nested
    // default (1 with nesting disabled), which would pin the budget of the
    // whole process to a single thread forever.
    capacity_ = omp_in_parallel() ? omp_get_num_procs()
                                  : omp_get_max_threads();
  }
  capacity_ = std::max(1, capacity_);
}

ThreadBudget& ThreadBudget::Global() {
  static ThreadBudget budget;
  return budget;
}

ThreadLease ThreadBudget::Acquire(int requested) {
  std::lock_guard<std::mutex> lock(mutex_);
  const int want =
      requested > 0 ? std::min(requested, capacity_) : capacity_;
  const int free = std::max(1, capacity_ - in_use_);  // min-1 progress
  const int granted = std::min(want, free);
  DCHECK_GE(granted, 1);
  in_use_ += granted;
  return ThreadLease(this, granted);
}

int ThreadBudget::capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return capacity_;
}

int ThreadBudget::in_use() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return in_use_;
}

void ThreadBudget::SetCapacity(int capacity) {
  CHECK_GE(capacity, 1) << "ThreadBudget capacity must be positive";
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = capacity;
}

void ThreadBudget::Release(int threads) {
  std::lock_guard<std::mutex> lock(mutex_);
  in_use_ -= threads;
  DCHECK_GE(in_use_, 0);
}

}  // namespace pivotscale
