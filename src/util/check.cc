#include "util/check.h"

#include <cstdio>
#include <cstdlib>

namespace pivotscale {
namespace check_internal {

CheckFailure::CheckFailure(const char* file, int line,
                           const char* condition,
                           const std::string& operands) {
  stream_ << file << ':' << line << ": CHECK failed: " << condition
          << operands << ' ';
}

CheckFailure::~CheckFailure() {
  stream_ << '\n';
  const std::string message = stream_.str();
  // fwrite, not iostreams: the failure path must not depend on cout/cerr
  // stream state and must stay signal-safe-adjacent right before abort.
  std::fwrite(message.data(), 1, message.size(), stderr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace check_internal
}  // namespace pivotscale
