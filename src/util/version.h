// One shared build-identity string for every user-facing binary.
//
// VersionString() is "<git describe> (<build type>)" — e.g.
// "5a77b63 (Release)" or "v1.2-4-g0deadbe-dirty (Debug)". The values are
// baked in at configure time via the PIVOTSCALE_GIT_DESCRIBE /
// PIVOTSCALE_BUILD_TYPE compile definitions on util/version.cc (see
// src/CMakeLists.txt); a build outside a git checkout reports "unknown".
// All CLI binaries expose it behind --version.
#ifndef PIVOTSCALE_UTIL_VERSION_H_
#define PIVOTSCALE_UTIL_VERSION_H_

namespace pivotscale {

// Static storage; never null.
const char* VersionString();

}  // namespace pivotscale

#endif  // PIVOTSCALE_UTIL_VERSION_H_
