#include "util/binomial.h"

#include <cassert>

namespace pivotscale {

BinomialTable::BinomialTable(std::uint32_t max_n) : max_n_(0) {
  rows_.reserve(max_n + 1);
  rows_.push_back({static_cast<uint128>(1)});  // C(0, 0) = 1
  EnsureRows(max_n);
}

void BinomialTable::EnsureRows(std::uint32_t new_max) {
  while (rows_.size() <= new_max) {
    const std::vector<uint128>& prev = rows_.back();
    const std::size_t n = rows_.size();
    std::vector<uint128> row(n + 1);
    row[0] = 1;
    row[n] = 1;
    for (std::size_t k = 1; k < n; ++k)
      row[k] = SatAdd(prev[k - 1], prev[k]);
    rows_.push_back(std::move(row));
  }
  if (new_max > max_n_) max_n_ = new_max;
}

uint128 BinomialChoose(std::uint64_t n, std::uint64_t k) {
  if (k > n) return 0;
  if (k > n - k) k = n - k;
  uint128 result = 1;
  for (std::uint64_t i = 1; i <= k; ++i) {
    // result *= (n - k + i); result /= i;
    // The running product after dividing by i! is always integral, so divide
    // at every step to delay saturation as long as possible.
    const uint128 next = SatMul(result, n - k + i);
    if (next == kUint128Max) return kUint128Max;
    result = next / i;
  }
  return result;
}

}  // namespace pivotscale
