// Small open-addressing hash map from 32-bit vertex ids to 32-bit slots.
//
// The sparse and remap subgraph structures need id -> slot lookups on the
// counting hot path; std::unordered_map's node allocations and pointer
// chasing make it several times slower than an array access, while the
// paper measures the hash overhead at ~1.2x. This table gets there:
// linear probing in one flat array, power-of-two capacity, and O(1) Clear
// via epoch stamps so the structure is reusable across millions of
// subgraph builds without refilling memory.
#ifndef PIVOTSCALE_UTIL_FLAT_HASH_H_
#define PIVOTSCALE_UTIL_FLAT_HASH_H_

#include <cstdint>
#include <vector>

namespace pivotscale {

class FlatHashMap {
 public:
  FlatHashMap() { Rehash(16); }

  // Discards all entries in O(1) (epoch bump).
  void Clear() {
    ++epoch_;
    size_ = 0;
    if (epoch_ == 0) {  // epoch wrapped: lazily invalidate everything
      std::fill(epochs_.begin(), epochs_.end(), std::uint32_t{0});
      epoch_ = 1;
    }
  }

  // Reserves capacity for `n` entries without rehashing during inserts.
  void Reserve(std::uint32_t n) {
    std::size_t want = 16;
    while (want < static_cast<std::size_t>(n) * 2) want <<= 1;
    if (want > keys_.size()) Rehash(want);
  }

  // Inserts key -> value. Key must not already be present (the subgraph
  // builders insert each member exactly once).
  void Insert(std::uint32_t key, std::uint32_t value) {
    if ((size_ + 1) * 2 > keys_.size()) Grow();
    std::size_t i = Hash(key);
    while (epochs_[i] == epoch_) i = (i + 1) & mask_;
    keys_[i] = key;
    values_[i] = value;
    epochs_[i] = epoch_;
    ++size_;
  }

  // Returns the value for key, or kNotFound if absent.
  static constexpr std::uint32_t kNotFound = 0xffffffffu;
  std::uint32_t Find(std::uint32_t key) const {
    std::size_t i = Hash(key);
    while (epochs_[i] == epoch_) {
      if (keys_[i] == key) return values_[i];
      i = (i + 1) & mask_;
    }
    return kNotFound;
  }

  std::uint32_t size() const { return size_; }

  std::size_t HeapBytes() const {
    return keys_.capacity() * sizeof(std::uint32_t) +
           values_.capacity() * sizeof(std::uint32_t) +
           epochs_.capacity() * sizeof(std::uint32_t);
  }

 private:
  std::size_t Hash(std::uint32_t key) const {
    // Fibonacci hashing: good spread for consecutive vertex ids.
    return (static_cast<std::uint64_t>(key) * 0x9e3779b97f4a7c15ULL >> 32) &
           mask_;
  }

  void Rehash(std::size_t capacity) {
    keys_.assign(capacity, 0);
    values_.assign(capacity, 0);
    epochs_.assign(capacity, 0);
    mask_ = capacity - 1;
    epoch_ = 1;
    size_ = 0;
  }

  void Grow() {
    // Rebuild at double capacity, reinserting live entries.
    std::vector<std::uint32_t> old_keys = std::move(keys_);
    std::vector<std::uint32_t> old_values = std::move(values_);
    std::vector<std::uint32_t> old_epochs = std::move(epochs_);
    const std::uint32_t old_epoch = epoch_;
    Rehash(old_keys.size() * 2);
    for (std::size_t i = 0; i < old_keys.size(); ++i)
      if (old_epochs[i] == old_epoch) Insert(old_keys[i], old_values[i]);
  }

  std::vector<std::uint32_t> keys_;
  std::vector<std::uint32_t> values_;
  std::vector<std::uint32_t> epochs_;
  std::size_t mask_ = 0;
  std::uint32_t epoch_ = 1;
  std::uint32_t size_ = 0;
};

}  // namespace pivotscale

#endif  // PIVOTSCALE_UTIL_FLAT_HASH_H_
