// Fatal invariant checks: the project's CHECK/DCHECK layer.
//
// Two trust levels run through the codebase:
//
//  * Trust boundaries (file readers, the wire protocol, CLI flags) validate
//    untrusted input and *throw* with a path/line diagnostic — the caller
//    can report the bad input and keep serving.
//
//  * Internal invariants (CSR shape handed between phases, reduction-array
//    sizing, cache-byte accounting) are programmer contracts. When one
//    fails the process state is already wrong and an exact-counting system
//    must not keep producing numbers: CHECK prints `file:line: CHECK
//    failed: <condition> <message>` to stderr and aborts.
//
// CHECK is always on, in every build type; keep it off per-clique hot
// paths. DCHECK compiles to nothing under NDEBUG (the default Release
// configuration) and is the right guard for per-edge / per-recursion-call
// sites. Defining PIVOTSCALE_DCHECK_ALWAYS_ON forces DCHECKs on regardless
// of NDEBUG (the sanitizer CI builds do this).
//
// Usage:
//   CHECK(ptr != nullptr);
//   CHECK_LT(v, n) << "neighbor out of range in " << context;
//   DCHECK_EQ(pos, offsets[u + 1]);
//
// The comparison forms evaluate each operand exactly once and echo both
// values on failure. Mixed signed/unsigned integer comparisons are done
// value-correctly via std::cmp_* (no sign-conversion surprises).
#ifndef PIVOTSCALE_UTIL_CHECK_H_
#define PIVOTSCALE_UTIL_CHECK_H_

#include <concepts>
#include <optional>
#include <sstream>
#include <string>
#include <type_traits>
#include <utility>

namespace pivotscale {
namespace check_internal {

// Builds the failure record; the destructor writes it to stderr and
// aborts. Constructed only on the (cold) failure path.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition,
               const std::string& operands = std::string());
  ~CheckFailure();  // prints and aborts; never returns normally
  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

// Swallows streamed operands of a compiled-out DCHECK.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

// Integer types std::cmp_* accepts (character types and bool excluded).
template <typename T>
concept StdComparableInt =
    std::integral<T> && !std::same_as<std::remove_cv_t<T>, bool> &&
    !std::same_as<std::remove_cv_t<T>, char> &&
    !std::same_as<std::remove_cv_t<T>, wchar_t> &&
    !std::same_as<std::remove_cv_t<T>, char8_t> &&
    !std::same_as<std::remove_cv_t<T>, char16_t> &&
    !std::same_as<std::remove_cv_t<T>, char32_t>;

template <typename A, typename B>
constexpr bool OpEq(const A& a, const B& b) {
  if constexpr (StdComparableInt<A> && StdComparableInt<B>)
    return std::cmp_equal(a, b);
  else
    return a == b;
}
template <typename A, typename B>
constexpr bool OpLt(const A& a, const B& b) {
  if constexpr (StdComparableInt<A> && StdComparableInt<B>)
    return std::cmp_less(a, b);
  else
    return a < b;
}

template <typename T>
void AppendValue(std::ostream& os, const T& v) {
  if constexpr (requires(std::ostream& o, const T& x) { o << x; }) {
    if constexpr (std::is_integral_v<T> && sizeof(T) == 1)
      os << static_cast<int>(v);  // print bytes numerically, not as glyphs
    else
      os << v;
  } else {
    os << "<unprintable>";
  }
}

template <typename A, typename B>
std::string FormatOperands(const A& a, const B& b) {
  std::ostringstream os;
  os << " (";
  AppendValue(os, a);
  os << " vs. ";
  AppendValue(os, b);
  os << ")";
  return std::move(os).str();
}

// Each comparator returns the formatted operand echo iff the check failed;
// engaged optional => failure (mirrors glog's CheckOpString).
template <typename A, typename B>
std::optional<std::string> CheckOpEQ(const A& a, const B& b) {
  if (OpEq(a, b)) return std::nullopt;
  return FormatOperands(a, b);
}
template <typename A, typename B>
std::optional<std::string> CheckOpNE(const A& a, const B& b) {
  if (!OpEq(a, b)) return std::nullopt;
  return FormatOperands(a, b);
}
template <typename A, typename B>
std::optional<std::string> CheckOpLT(const A& a, const B& b) {
  if (OpLt(a, b)) return std::nullopt;
  return FormatOperands(a, b);
}
template <typename A, typename B>
std::optional<std::string> CheckOpLE(const A& a, const B& b) {
  if (!OpLt(b, a)) return std::nullopt;
  return FormatOperands(a, b);
}
template <typename A, typename B>
std::optional<std::string> CheckOpGT(const A& a, const B& b) {
  if (OpLt(b, a)) return std::nullopt;
  return FormatOperands(a, b);
}
template <typename A, typename B>
std::optional<std::string> CheckOpGE(const A& a, const B& b) {
  if (!OpLt(a, b)) return std::nullopt;
  return FormatOperands(a, b);
}

}  // namespace check_internal
}  // namespace pivotscale

// The failure branch is a `while` so a trailing `<< message` chain binds to
// the failure stream and the whole macro still parses as one statement.
// The loop body runs at most once: CheckFailure's destructor aborts.
#define CHECK(condition)                                                 \
  while (__builtin_expect(!(condition), 0))                              \
  ::pivotscale::check_internal::CheckFailure(__FILE__, __LINE__,         \
                                             #condition)                 \
      .stream()

#define PIVOTSCALE_CHECK_OP(op_name, op_token, a, b)                     \
  while (auto pivotscale_check_result =                                  \
             ::pivotscale::check_internal::CheckOp##op_name((a), (b)))   \
  ::pivotscale::check_internal::CheckFailure(                            \
      __FILE__, __LINE__, #a " " #op_token " " #b,                       \
      *pivotscale_check_result)                                          \
      .stream()

#define CHECK_EQ(a, b) PIVOTSCALE_CHECK_OP(EQ, ==, a, b)
#define CHECK_NE(a, b) PIVOTSCALE_CHECK_OP(NE, !=, a, b)
#define CHECK_LT(a, b) PIVOTSCALE_CHECK_OP(LT, <, a, b)
#define CHECK_LE(a, b) PIVOTSCALE_CHECK_OP(LE, <=, a, b)
#define CHECK_GT(a, b) PIVOTSCALE_CHECK_OP(GT, >, a, b)
#define CHECK_GE(a, b) PIVOTSCALE_CHECK_OP(GE, >=, a, b)

#if defined(NDEBUG) && !defined(PIVOTSCALE_DCHECK_ALWAYS_ON)
#define PIVOTSCALE_DCHECK_ENABLED 0
#else
#define PIVOTSCALE_DCHECK_ENABLED 1
#endif

#if PIVOTSCALE_DCHECK_ENABLED
#define DCHECK(condition) CHECK(condition)
#define DCHECK_EQ(a, b) CHECK_EQ(a, b)
#define DCHECK_NE(a, b) CHECK_NE(a, b)
#define DCHECK_LT(a, b) CHECK_LT(a, b)
#define DCHECK_LE(a, b) CHECK_LE(a, b)
#define DCHECK_GT(a, b) CHECK_GT(a, b)
#define DCHECK_GE(a, b) CHECK_GE(a, b)
#else
// Compiled out: operands stay syntactically checked (and warnings stay
// honest) but are never evaluated — `false &&` short-circuits and the dead
// branch folds away at -O1.
#define PIVOTSCALE_DCHECK_NOOP(expr)               \
  while (false && static_cast<bool>(expr))         \
  ::pivotscale::check_internal::NullStream {}
#define DCHECK(condition) PIVOTSCALE_DCHECK_NOOP(condition)
#define DCHECK_EQ(a, b) \
  PIVOTSCALE_DCHECK_NOOP(::pivotscale::check_internal::OpEq((a), (b)))
#define DCHECK_NE(a, b) \
  PIVOTSCALE_DCHECK_NOOP(!::pivotscale::check_internal::OpEq((a), (b)))
#define DCHECK_LT(a, b) \
  PIVOTSCALE_DCHECK_NOOP(::pivotscale::check_internal::OpLt((a), (b)))
#define DCHECK_LE(a, b) \
  PIVOTSCALE_DCHECK_NOOP(!::pivotscale::check_internal::OpLt((b), (a)))
#define DCHECK_GT(a, b) \
  PIVOTSCALE_DCHECK_NOOP(::pivotscale::check_internal::OpLt((b), (a)))
#define DCHECK_GE(a, b) \
  PIVOTSCALE_DCHECK_NOOP(!::pivotscale::check_internal::OpLt((a), (b)))
#endif

#endif  // PIVOTSCALE_UTIL_CHECK_H_
