// Atomic file replacement.
//
// Every writer of a loadable artifact (.psg graphs, .psx store artifacts,
// JSON run reports) must never leave a truncated file a later load
// half-accepts: the payload goes to a temp file in the same directory and
// is renamed over the destination only after a successful write + close.
// rename(2) within one filesystem is atomic, so readers observe either the
// old complete file or the new complete file, never a prefix.
#ifndef PIVOTSCALE_UTIL_ATOMIC_FILE_H_
#define PIVOTSCALE_UTIL_ATOMIC_FILE_H_

#include <string>
#include <string_view>

namespace pivotscale {

// Writes `contents` to `path` atomically via a sibling temp file + rename.
// Overwrites an existing file. Throws std::runtime_error on any I/O
// failure; the temp file is removed on error and the destination keeps its
// previous contents (or stays absent).
void WriteFileAtomic(const std::string& path, std::string_view contents);

}  // namespace pivotscale

#endif  // PIVOTSCALE_UTIL_ATOMIC_FILE_H_
