#include "util/table.h"

#include <cstdio>
#include <iomanip>
#include <iostream>
#include <sstream>

namespace pivotscale {

TablePrinter::TablePrinter(std::string title, std::vector<std::string> header)
    : title_(std::move(title)), header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream out;
  out << "== " << title_ << "\n";
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ") << std::left << std::setw(widths[c])
          << row[c];
    }
    out << " |\n";
  };
  emit_row(header_);
  out << "|";
  for (std::size_t c = 0; c < header_.size(); ++c)
    out << std::string(widths[c] + 2, '-') << "|";
  out << "\n";
  for (const auto& row : rows_) emit_row(row);
  std::cout << out.str() << std::flush;
}

std::string TablePrinter::Cell(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TablePrinter::Cell(std::int64_t v) { return std::to_string(v); }
std::string TablePrinter::Cell(std::uint64_t v) { return std::to_string(v); }

std::string HumanBytes(std::uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f %s", v, kUnits[unit]);
  return buf;
}

}  // namespace pivotscale
