// Minimal command-line flag parsing for bench and example binaries.
//
// Flags are "--name value" or "--name=value"; boolean flags may omit the
// value. Every binary in bench/ and examples/ must run with sensible
// defaults and no arguments (the CI loop executes them bare), so parsing
// never aborts on missing flags — only on malformed ones.
#ifndef PIVOTSCALE_UTIL_CLI_H_
#define PIVOTSCALE_UTIL_CLI_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pivotscale {

// Largest value a thread-count flag accepts. Anything above this is a
// typo (or a unit confusion), not a machine this code targets.
inline constexpr int kMaxThreadsFlag = 4096;

class ArgParser {
 public:
  // Parses argv. Unrecognized positional arguments are collected in
  // positional(). Malformed flags (e.g. "--" alone) raise std::runtime_error.
  ArgParser(int argc, char** argv);

  // True if --name was present at all.
  bool Has(const std::string& name) const;

  // Typed lookups with defaults. GetInt/GetDouble raise std::runtime_error
  // on unparseable values so typos fail loudly.
  std::string GetString(const std::string& name,
                        const std::string& def) const;
  std::int64_t GetInt(const std::string& name, std::int64_t def) const;
  double GetDouble(const std::string& name, double def) const;
  bool GetBool(const std::string& name, bool def) const;

  // Uniform thread-count flag validation for every binary: absent ->
  // `def` (0 means "whole machine" to downstream consumers); an explicit
  // value must lie in [1, kMaxThreadsFlag]. Zero, negative, and absurd
  // values raise std::runtime_error — a worker count of 0 silently
  // becoming "serial" or "-3" wrapping through a cast are both config
  // mistakes the binary should refuse, not absorb.
  int GetThreads(const std::string& name = "threads", int def = 0) const;

  // Comma-separated list of integers, e.g. "--ks 4,6,8".
  std::vector<std::int64_t> GetIntList(
      const std::string& name, const std::vector<std::int64_t>& def) const;

  // Raises std::runtime_error naming every parsed flag that is not in
  // `known` (and listing the accepted set), so a misspelled flag like
  // "--orderng" fails loudly instead of silently falling back to defaults.
  // Call after construction with the binary's full flag vocabulary.
  void RejectUnknown(const std::vector<std::string>& known) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program_name() const { return program_name_; }

 private:
  std::string program_name_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace pivotscale

#endif  // PIVOTSCALE_UTIL_CLI_H_
