// Sparse set (Briggs & Torczon) over a bounded integer universe.
//
// The counting recursion streamlines the canonical P-R-X sets of
// Bron-Kerbosch down to a single candidate set P (Section V-B). This
// structure provides O(1) insert, erase, membership, and clear, plus cheap
// iteration over the members in insertion order — exactly the operations the
// recursion needs — while reusing its allocations across subgraphs.
#ifndef PIVOTSCALE_UTIL_SPARSE_SET_H_
#define PIVOTSCALE_UTIL_SPARSE_SET_H_

#include <cstdint>
#include <vector>

namespace pivotscale {

class SparseSet {
 public:
  SparseSet() = default;
  explicit SparseSet(std::uint32_t universe) { EnsureUniverse(universe); }

  // Grows the universe to at least `universe` ids; existing members persist.
  void EnsureUniverse(std::uint32_t universe) {
    if (sparse_.size() < universe) sparse_.resize(universe, 0);
  }

  std::uint32_t universe() const {
    return static_cast<std::uint32_t>(sparse_.size());
  }
  std::uint32_t size() const {
    return static_cast<std::uint32_t>(dense_.size());
  }
  bool empty() const { return dense_.empty(); }

  bool Contains(std::uint32_t id) const {
    const std::uint32_t pos = sparse_[id];
    return pos < dense_.size() && dense_[pos] == id;
  }

  // Inserts id if absent; returns true if inserted.
  bool Insert(std::uint32_t id) {
    if (Contains(id)) return false;
    sparse_[id] = size();
    dense_.push_back(id);
    return true;
  }

  // Erases id if present (swap-with-last; order of remaining members is not
  // preserved). Returns true if erased.
  bool Erase(std::uint32_t id) {
    if (!Contains(id)) return false;
    const std::uint32_t pos = sparse_[id];
    const std::uint32_t last = dense_.back();
    dense_[pos] = last;
    sparse_[last] = pos;
    dense_.pop_back();
    return true;
  }

  // O(1): forgets all members without touching the sparse array.
  void Clear() { dense_.clear(); }

  std::uint32_t operator[](std::uint32_t i) const { return dense_[i]; }
  const std::vector<std::uint32_t>& members() const { return dense_; }

  std::size_t HeapBytes() const {
    return sparse_.capacity() * sizeof(std::uint32_t) +
           dense_.capacity() * sizeof(std::uint32_t);
  }

 private:
  std::vector<std::uint32_t> sparse_;  // id -> position in dense_
  std::vector<std::uint32_t> dense_;   // members
};

}  // namespace pivotscale

#endif  // PIVOTSCALE_UTIL_SPARSE_SET_H_
