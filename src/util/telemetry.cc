#include "util/telemetry.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/atomic_file.h"
#include "util/json_writer.h"
#include "util/stats.h"

namespace pivotscale {

void TelemetryRegistry::AddCounter(const std::string& name,
                                   std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  data_.counters[name] += delta;
}

void TelemetryRegistry::SetGauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  data_.gauges[name] = value;
}

void TelemetryRegistry::RecordSpan(const std::string& name, double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  data_.spans.push_back({name, seconds});
}

void TelemetryRegistry::SetSeries(const std::string& name,
                                  std::vector<double> values) {
  std::lock_guard<std::mutex> lock(mutex_);
  data_.series[name] = std::move(values);
}

std::uint64_t TelemetryRegistry::Counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = data_.counters.find(name);
  return it == data_.counters.end() ? 0 : it->second;
}

double TelemetryRegistry::Gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = data_.gauges.find(name);
  return it == data_.gauges.end() ? 0 : it->second;
}

double TelemetryRegistry::SpanSeconds(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  double total = 0;
  for (const TelemetrySpan& span : data_.spans)
    if (span.name == name) total += span.seconds;
  return total;
}

std::vector<double> TelemetryRegistry::Series(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = data_.series.find(name);
  return it == data_.series.end() ? std::vector<double>{} : it->second;
}

bool TelemetryRegistry::HasSpan(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::any_of(data_.spans.begin(), data_.spans.end(),
                     [&](const TelemetrySpan& s) { return s.name == name; });
}

TelemetrySnapshot TelemetryRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return data_;
}

void TelemetryRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  data_ = TelemetrySnapshot{};
}

std::string RunReportJson(const TelemetryRegistry& registry) {
  const TelemetrySnapshot snap = registry.Snapshot();
  JsonWriter w;
  w.BeginObject();
  w.Key("schema");
  w.Value("pivotscale.run_report");
  w.Key("version");
  w.Value(std::uint64_t{1});

  w.Key("counters");
  w.BeginObject();
  for (const auto& [name, value] : snap.counters) {
    w.Key(name);
    w.Value(value);
  }
  w.EndObject();

  w.Key("gauges");
  w.BeginObject();
  for (const auto& [name, value] : snap.gauges) {
    w.Key(name);
    w.Value(value);
  }
  w.EndObject();

  w.Key("spans");
  w.BeginArray();
  for (const TelemetrySpan& span : snap.spans) {
    w.BeginObject();
    w.Key("name");
    w.Value(span.name);
    w.Key("seconds");
    w.Value(span.seconds);
    w.EndObject();
  }
  w.EndArray();

  w.Key("series");
  w.BeginObject();
  for (const auto& [name, values] : snap.series) {
    w.Key(name);
    w.BeginArray();
    for (const double v : values) w.Value(v);
    w.EndArray();
  }
  w.EndObject();

  w.EndObject();
  return w.str();
}

std::string LoadImbalanceSummary(const TelemetryRegistry& registry) {
  const TelemetrySnapshot snap = registry.Snapshot();
  constexpr const char kSuffix[] = "busy_seconds";
  constexpr int kBarWidth = 40;

  std::ostringstream os;
  for (const auto& [name, values] : snap.series) {
    if (name.size() < sizeof(kSuffix) - 1 ||
        name.compare(name.size() - (sizeof(kSuffix) - 1),
                     sizeof(kSuffix) - 1, kSuffix) != 0)
      continue;
    if (values.empty()) continue;

    const double max = *std::max_element(values.begin(), values.end());
    const double min = *std::min_element(values.begin(), values.end());
    // Series length == realized team (the executor sizes them inside the
    // region), so the readout never shows phantom zero-slots.
    os << name << " (" << values.size() << " threads)\n";
    for (std::size_t t = 0; t < values.size(); ++t) {
      const int bar =
          max > 0 ? static_cast<int>(values[t] / max * kBarWidth + 0.5) : 0;
      char line[96];
      std::snprintf(line, sizeof(line), "  t%02zu %9.4fs |", t, values[t]);
      os << line;
      for (int i = 0; i < bar; ++i) os << '#';
      os << '\n';
    }
    char stats[128];
    std::snprintf(stats, sizeof(stats),
                  "  min %.4fs  max %.4fs  mean %.4fs  CoV %.3f\n", min, max,
                  Mean(values), CoeffOfVariation(values));
    os << stats;
  }
  return os.str();
}

void WriteRunReport(const std::string& path,
                    const TelemetryRegistry& registry) {
  // Temp file + rename: a crashed run never leaves a truncated JSON
  // document that a downstream parser half-accepts.
  WriteFileAtomic(path, RunReportJson(registry) + '\n');
}

}  // namespace pivotscale
