#include "util/atomic_file.h"

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace pivotscale {

void WriteFileAtomic(const std::string& path, std::string_view contents) {
  // The temp file must live in the destination directory: rename is only
  // atomic within one filesystem. The pid suffix keeps concurrent writers
  // of the same destination from clobbering each other's temp payloads.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long long>(::getpid()));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot open " + tmp + " for write");
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      throw std::runtime_error("write failure on " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("cannot rename " + tmp + " over " + path);
  }
}

}  // namespace pivotscale
