// Byte-per-entry membership map.
//
// Section V-B of the paper: membership checks against the current candidate
// set are the hottest operation in the counting recursion, and on the
// evaluated platforms a byte per entry outperforms a bit per entry (no
// read-modify-write, no shift/mask on the critical path). After the
// first-level remap the id range is small enough that the extra 8x space is
// irrelevant. This header provides that structure with O(active) clearing.
#ifndef PIVOTSCALE_UTIL_BYTEMAP_H_
#define PIVOTSCALE_UTIL_BYTEMAP_H_

#include <cstdint>
#include <vector>

namespace pivotscale {

// Dense byte-map over ids [0, capacity). Set/Test/Clear are O(1);
// ClearAll is O(capacity) but Reset(ids) clears only the given ids.
class ByteMap {
 public:
  ByteMap() = default;
  explicit ByteMap(std::size_t capacity) : bytes_(capacity, 0) {}

  // Grows to at least `capacity` entries, preserving contents. Never shrinks
  // (allocation reuse across subgraphs is the point of the structure).
  void EnsureCapacity(std::size_t capacity) {
    if (bytes_.size() < capacity) bytes_.resize(capacity, 0);
  }

  std::size_t capacity() const { return bytes_.size(); }

  void Set(std::uint32_t id) { bytes_[id] = 1; }
  void Unset(std::uint32_t id) { bytes_[id] = 0; }
  bool Test(std::uint32_t id) const { return bytes_[id] != 0; }

  // Clears every entry (O(capacity)).
  void ClearAll() { std::fill(bytes_.begin(), bytes_.end(), 0); }

  // Clears exactly the listed ids (O(|ids|)); the caller guarantees these
  // are the only set entries.
  template <typename Container>
  void ClearIds(const Container& ids) {
    for (std::uint32_t id : ids) bytes_[id] = 0;
  }

  // Bytes of heap memory held (for the memory study).
  std::size_t HeapBytes() const { return bytes_.capacity(); }

 private:
  std::vector<std::uint8_t> bytes_;
};

}  // namespace pivotscale

#endif  // PIVOTSCALE_UTIL_BYTEMAP_H_
