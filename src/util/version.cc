#include "util/version.h"

#ifndef PIVOTSCALE_GIT_DESCRIBE
#define PIVOTSCALE_GIT_DESCRIBE "unknown"
#endif
#ifndef PIVOTSCALE_BUILD_TYPE
#define PIVOTSCALE_BUILD_TYPE "unspecified"
#endif

namespace pivotscale {

const char* VersionString() {
  return PIVOTSCALE_GIT_DESCRIBE " (" PIVOTSCALE_BUILD_TYPE ")";
}

}  // namespace pivotscale
