#include "util/json_writer.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace pivotscale {

namespace {

std::string FormatDouble(double d) {
  if (!std::isfinite(d)) return "null";  // JSON has no Inf/NaN
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), d);
  if (ec != std::errc{}) return "0";
  std::string s(buf, ptr);
  // Bare shortest-form integers ("3") are valid JSON numbers; keep them.
  return s;
}

}  // namespace

std::string JsonWriter::Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

void JsonWriter::Comma() {
  if (stack_.empty()) return;
  if (first_.back()) {
    first_.back() = false;
  } else {
    out_.push_back(',');
  }
}

void JsonWriter::OnValue() {
  if (key_pending_) {
    key_pending_ = false;
    return;
  }
  if (!stack_.empty() && stack_.back() == Frame::kObject)
    throw std::logic_error("JsonWriter: value inside object requires Key()");
  Comma();
}

void JsonWriter::BeginObject() {
  OnValue();
  out_.push_back('{');
  stack_.push_back(Frame::kObject);
  first_.push_back(true);
}

void JsonWriter::EndObject() {
  if (stack_.empty() || stack_.back() != Frame::kObject || key_pending_)
    throw std::logic_error("JsonWriter: mismatched EndObject");
  out_.push_back('}');
  stack_.pop_back();
  first_.pop_back();
}

void JsonWriter::BeginArray() {
  OnValue();
  out_.push_back('[');
  stack_.push_back(Frame::kArray);
  first_.push_back(true);
}

void JsonWriter::EndArray() {
  if (stack_.empty() || stack_.back() != Frame::kArray)
    throw std::logic_error("JsonWriter: mismatched EndArray");
  out_.push_back(']');
  stack_.pop_back();
  first_.pop_back();
}

void JsonWriter::Key(const std::string& name) {
  if (stack_.empty() || stack_.back() != Frame::kObject || key_pending_)
    throw std::logic_error("JsonWriter: Key() outside object");
  Comma();
  out_ += Escape(name);
  out_.push_back(':');
  key_pending_ = true;
}

void JsonWriter::Value(const std::string& s) {
  OnValue();
  out_ += Escape(s);
}

void JsonWriter::Value(const char* s) { Value(std::string(s)); }

void JsonWriter::Value(double d) {
  OnValue();
  out_ += FormatDouble(d);
}

void JsonWriter::Value(std::uint64_t u) {
  OnValue();
  out_ += std::to_string(u);
}

void JsonWriter::Value(std::int64_t i) {
  OnValue();
  out_ += std::to_string(i);
}

void JsonWriter::Value(bool b) {
  OnValue();
  out_ += b ? "true" : "false";
}

void JsonWriter::Null() {
  OnValue();
  out_ += "null";
}

std::string JsonWriter::str() const {
  if (!stack_.empty() || key_pending_)
    throw std::logic_error("JsonWriter: document not closed");
  return out_;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue Parse() {
    JsonValue v = ParseValue();
    SkipWhitespace();
    if (pos_ != text_.size()) Fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void Fail(const std::string& what) const {
    throw std::runtime_error("ParseJson: " + what + " at byte " +
                             std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  char Peek() {
    if (pos_ >= text_.size()) Fail("unexpected end of input");
    return text_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c) Fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool Literal(const char* lit) {
    const std::size_t len = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, len, lit) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  JsonValue ParseValue() {
    SkipWhitespace();
    const char c = Peek();
    JsonValue v;
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        v.type = JsonValue::Type::kString;
        v.string_value = ParseString();
        return v;
      case 't':
        if (!Literal("true")) Fail("bad literal");
        v.type = JsonValue::Type::kBool;
        v.bool_value = true;
        return v;
      case 'f':
        if (!Literal("false")) Fail("bad literal");
        v.type = JsonValue::Type::kBool;
        v.bool_value = false;
        return v;
      case 'n':
        if (!Literal("null")) Fail("bad literal");
        v.type = JsonValue::Type::kNull;
        return v;
      default:
        return ParseNumber();
    }
  }

  JsonValue ParseObject() {
    Expect('{');
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    SkipWhitespace();
    if (Peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      SkipWhitespace();
      std::string key = ParseString();
      SkipWhitespace();
      Expect(':');
      v.object.emplace(std::move(key), ParseValue());
      SkipWhitespace();
      const char c = Peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') Fail("expected ',' or '}' in object");
    }
  }

  JsonValue ParseArray() {
    Expect('[');
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    SkipWhitespace();
    if (Peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(ParseValue());
      SkipWhitespace();
      const char c = Peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') Fail("expected ',' or ']' in array");
    }
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) Fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) Fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9')
              code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              Fail("bad \\u escape");
          }
          // Telemetry strings are ASCII; encode BMP code points as UTF-8.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          Fail("unknown escape");
      }
    }
  }

  JsonValue ParseNumber() {
    const std::size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) Fail("expected a value");
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    const auto [ptr, ec] = std::from_chars(first, last, v.number);
    if (ec != std::errc{} || ptr != last) Fail("malformed number");
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  const auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

JsonValue ParseJson(const std::string& text) { return Parser(text).Parse(); }

}  // namespace pivotscale
