#include "util/rng.h"

namespace pivotscale {

namespace {
inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& w : s_) w = sm.Next();
  // All-zero state is the one forbidden state of xoshiro; SplitMix64 cannot
  // produce four consecutive zeros from any seed, but guard regardless.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::Below(std::uint64_t bound) {
  // Lemire's nearly-divisionless method.
  std::uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::Between(std::int64_t lo, std::int64_t hi) {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(Below(span));
}

double Rng::NextDouble() {
  // 53 random mantissa bits scaled into [0, 1).
  return (Next() >> 11) * 0x1.0p-53;
}

bool Rng::Chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

}  // namespace pivotscale
