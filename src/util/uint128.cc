#include "util/uint128.h"

#include <algorithm>
#include <ostream>

namespace pivotscale {

uint128 SatMul(uint128 a, uint128 b) {
  if (a == 0 || b == 0) return 0;
  if (a > kUint128Max / b) return kUint128Max;
  return a * b;
}

std::string ToString(uint128 v) {
  if (v == 0) return "0";
  std::string digits;
  while (v != 0) {
    digits.push_back(static_cast<char>('0' + static_cast<int>(v % 10)));
    v /= 10;
  }
  std::reverse(digits.begin(), digits.end());
  return digits;
}

bool ParseUint128(const std::string& text, uint128* out) {
  if (text.empty()) return false;
  uint128 v = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    v = SatAdd(SatMul(v, 10), static_cast<uint128>(c - '0'));
  }
  *out = v;
  return true;
}

double ToDouble(uint128 v) {
  const std::uint64_t hi = static_cast<std::uint64_t>(v >> 64);
  const std::uint64_t lo = static_cast<std::uint64_t>(v);
  return static_cast<double>(hi) * 0x1.0p64 + static_cast<double>(lo);
}

std::ostream& operator<<(std::ostream& os, BigCount c) {
  return os << c.ToString();
}

}  // namespace pivotscale
