#include "util/cli.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace pivotscale {

ArgParser::ArgParser(int argc, char** argv) {
  program_name_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    if (arg.size() == 2) throw std::runtime_error("bare '--' argument");
    std::string name = arg.substr(2);
    std::string value;
    const std::size_t eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      value = argv[++i];
    } else {
      value = "true";  // boolean flag with no value
    }
    flags_[name] = value;
  }
}

bool ArgParser::Has(const std::string& name) const {
  return flags_.count(name) != 0;
}

std::string ArgParser::GetString(const std::string& name,
                                 const std::string& def) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? def : it->second;
}

std::int64_t ArgParser::GetInt(const std::string& name,
                               std::int64_t def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  // stoll itself throws invalid_argument/out_of_range on junk; fold every
  // failure mode into the one flag-naming message.
  try {
    std::size_t pos = 0;
    const std::int64_t v = std::stoll(it->second, &pos);
    if (pos == it->second.size()) return v;
  } catch (const std::exception&) {
  }
  throw std::runtime_error("bad integer for --" + name + ": " + it->second);
}

double ArgParser::GetDouble(const std::string& name, double def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  try {
    std::size_t pos = 0;
    const double v = std::stod(it->second, &pos);
    if (pos == it->second.size()) return v;
  } catch (const std::exception&) {
  }
  throw std::runtime_error("bad double for --" + name + ": " + it->second);
}

bool ArgParser::GetBool(const std::string& name, bool def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw std::runtime_error("bad boolean for --" + name + ": " + v);
}

int ArgParser::GetThreads(const std::string& name, int def) const {
  if (!Has(name)) return def;
  const std::int64_t v = GetInt(name, def);
  if (v < 1 || v > kMaxThreadsFlag)
    throw std::runtime_error(
        "bad --" + name + ": " + std::to_string(v) + " (must be between 1 "
        "and " + std::to_string(kMaxThreadsFlag) + ")");
  return static_cast<int>(v);
}

std::vector<std::int64_t> ArgParser::GetIntList(
    const std::string& name, const std::vector<std::int64_t>& def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  std::vector<std::int64_t> out;
  const std::string& s = it->second;
  std::size_t begin = 0;
  while (begin <= s.size()) {
    std::size_t end = s.find(',', begin);
    if (end == std::string::npos) end = s.size();
    const std::string token = s.substr(begin, end - begin);
    if (!token.empty()) {
      try {
        std::size_t pos = 0;
        const std::int64_t v = std::stoll(token, &pos);
        if (pos == token.size()) {
          out.push_back(v);
          begin = end + 1;
          continue;
        }
      } catch (const std::exception&) {
      }
      throw std::runtime_error("bad list entry for --" + name + ": " +
                               token);
    }
    begin = end + 1;
  }
  return out;
}

void ArgParser::RejectUnknown(const std::vector<std::string>& known) const {
  std::string unknown;
  for (const auto& [name, value] : flags_) {
    if (std::find(known.begin(), known.end(), name) != known.end()) continue;
    if (!unknown.empty()) unknown += ", ";
    unknown += "--" + name;
  }
  if (unknown.empty()) return;
  std::string accepted;
  for (const std::string& name : known) {
    if (!accepted.empty()) accepted += ", ";
    accepted += "--" + name;
  }
  throw std::runtime_error("unknown flag(s) " + unknown + "; accepted: " +
                           accepted);
}

}  // namespace pivotscale
