// Small statistics helpers used across the evaluation harness.
//
// The paper summarizes results with geometric means (speedups, memory
// ratios) and uses the coefficient of variation of per-thread busy time to
// argue load balance is a minor factor (Section IV); these helpers implement
// those summaries once.
#ifndef PIVOTSCALE_UTIL_STATS_H_
#define PIVOTSCALE_UTIL_STATS_H_

#include <vector>

namespace pivotscale {

// Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& xs);

// Geometric mean; 0 for empty input. All inputs must be > 0.
double GeoMean(const std::vector<double>& xs);

// Population standard deviation; 0 for fewer than 2 samples.
double StdDev(const std::vector<double>& xs);

// Coefficient of variation (stddev / mean); 0 when the mean is 0.
double CoeffOfVariation(const std::vector<double>& xs);

}  // namespace pivotscale

#endif  // PIVOTSCALE_UTIL_STATS_H_
