// 128-bit clique counters with saturation.
//
// Exact k-clique counts overflow 64 bits even on modest clique-rich graphs
// (the paper reports counts up to ~4*10^23 for LiveJournal, Table VI).
// BigCount is an unsigned 128-bit integer wrapper whose arithmetic saturates
// at 2^128-1 instead of wrapping, so an overflowing configuration reports
// "at least saturated" rather than a silently wrong small number.
#ifndef PIVOTSCALE_UTIL_UINT128_H_
#define PIVOTSCALE_UTIL_UINT128_H_

#include <cstdint>
#include <iosfwd>
#include <string>

namespace pivotscale {

using uint128 = unsigned __int128;

// Maximum representable value; arithmetic saturates here.
inline constexpr uint128 kUint128Max = ~static_cast<uint128>(0);

// Saturating addition: returns min(a + b, 2^128 - 1).
inline uint128 SatAdd(uint128 a, uint128 b) {
  const uint128 s = a + b;
  return s < a ? kUint128Max : s;
}

// Saturating multiplication: returns min(a * b, 2^128 - 1).
uint128 SatMul(uint128 a, uint128 b);

// Decimal rendering (the standard library cannot print __int128).
std::string ToString(uint128 v);

// Parses a decimal string into a uint128; saturates on overflow.
// Returns false on empty input or non-digit characters.
bool ParseUint128(const std::string& text, uint128* out);

// Lossy conversion for plotting/ratio math. Exact for values < 2^53.
double ToDouble(uint128 v);

// A saturating 128-bit counter used for clique counts throughout the API.
//
// The wrapper exists so that clique counts cannot be accidentally combined
// with wrapping arithmetic: operator+ and operator* saturate. Comparisons
// and equality are exact.
class BigCount {
 public:
  constexpr BigCount() : v_(0) {}
  constexpr BigCount(uint128 v) : v_(v) {}  // NOLINT: implicit by design

  uint128 value() const { return v_; }
  bool saturated() const { return v_ == kUint128Max; }

  BigCount& operator+=(BigCount o) {
    v_ = SatAdd(v_, o.v_);
    return *this;
  }
  friend BigCount operator+(BigCount a, BigCount b) { return a += b; }
  friend BigCount operator*(BigCount a, BigCount b) {
    return BigCount(SatMul(a.v_, b.v_));
  }
  friend bool operator==(BigCount a, BigCount b) { return a.v_ == b.v_; }
  friend bool operator!=(BigCount a, BigCount b) { return a.v_ != b.v_; }
  friend bool operator<(BigCount a, BigCount b) { return a.v_ < b.v_; }
  friend bool operator<=(BigCount a, BigCount b) { return a.v_ <= b.v_; }
  friend bool operator>(BigCount a, BigCount b) { return a.v_ > b.v_; }
  friend bool operator>=(BigCount a, BigCount b) { return a.v_ >= b.v_; }

  std::string ToString() const { return pivotscale::ToString(v_); }
  double AsDouble() const { return ToDouble(v_); }

 private:
  uint128 v_;
};

// Stream output in decimal (used by tests and the table printer).
std::ostream& operator<<(std::ostream& os, BigCount c);

}  // namespace pivotscale

#endif  // PIVOTSCALE_UTIL_UINT128_H_
