// Deterministic pseudo-random number generation for graph generators and
// property-based tests.
//
// All randomness in the repository flows through these generators so that
// every dataset, workload, and test sweep is reproducible from a seed.
// SplitMix64 is used for seeding/hashing; Xoshiro256** is the workhorse
// generator (fast, high quality, 2^256-1 period).
#ifndef PIVOTSCALE_UTIL_RNG_H_
#define PIVOTSCALE_UTIL_RNG_H_

#include <cstdint>

namespace pivotscale {

// SplitMix64: statistically strong 64-bit mixer. Ideal for turning small
// integer seeds into well-distributed state, and as a stateless hash.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  // Returns the next 64-bit value and advances the state.
  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Stateless mix of a single value (useful as a deterministic hash).
  static std::uint64_t Mix(std::uint64_t x) { return SplitMix64(x).Next(); }

 private:
  std::uint64_t state_;
};

// Xoshiro256**: the repository's primary PRNG.
class Rng {
 public:
  // Seeds the four words of state from SplitMix64(seed).
  explicit Rng(std::uint64_t seed);

  // Uniform 64-bit value.
  std::uint64_t Next();

  // Uniform integer in [0, bound). bound must be > 0. Uses Lemire's
  // multiply-shift rejection method to avoid modulo bias.
  std::uint64_t Below(std::uint64_t bound);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t Between(std::int64_t lo, std::int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Bernoulli trial with success probability p (clamped to [0,1]).
  bool Chance(double p);

 private:
  std::uint64_t s_[4];
};

}  // namespace pivotscale

#endif  // PIVOTSCALE_UTIL_RNG_H_
