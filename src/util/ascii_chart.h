// ASCII chart rendering for the bench harness.
//
// The paper's figures are log-scale line/bar charts; the bench binaries
// print the underlying rows, and these helpers additionally render them as
// terminal charts so a figure's *shape* (crossovers, plateaus, explosions)
// is visible at a glance in the captured bench output.
#ifndef PIVOTSCALE_UTIL_ASCII_CHART_H_
#define PIVOTSCALE_UTIL_ASCII_CHART_H_

#include <string>
#include <vector>

namespace pivotscale {

// One named series of y-values over a shared x-axis.
struct ChartSeries {
  std::string name;
  std::vector<double> values;  // aligned with the x labels
};

struct ChartOptions {
  int width = 60;      // plot columns
  int height = 12;     // plot rows
  bool log_y = false;  // log10 y-axis (values <= 0 are clamped)
  std::string y_label;
};

// Renders a multi-series chart; each series gets a distinct glyph. The
// x-axis is categorical (one column block per label). Returns the chart as
// a string ending in '\n'.
std::string RenderChart(const std::vector<std::string>& x_labels,
                        const std::vector<ChartSeries>& series,
                        const ChartOptions& options = {});

// Renders a horizontal bar chart of labeled values (linear scale).
std::string RenderBars(const std::vector<std::string>& labels,
                       const std::vector<double>& values, int width = 50);

}  // namespace pivotscale

#endif  // PIVOTSCALE_UTIL_ASCII_CHART_H_
