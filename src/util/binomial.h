// Precomputed binomial coefficients with saturating 128-bit arithmetic.
//
// Pivoter's leaf rule converts a succinct-clique-tree leaf holding r required
// vertices and np pivots into C(np, k-r) k-cliques, so counting needs fast
// access to C(n, k) for n up to the largest encountered pivot count (bounded
// by the maximum out-degree of the DAG). The table is built once with
// Pascal's rule using saturating adds; entries that exceed 2^128-1 report
// the saturated value, matching BigCount semantics.
#ifndef PIVOTSCALE_UTIL_BINOMIAL_H_
#define PIVOTSCALE_UTIL_BINOMIAL_H_

#include <cstdint>
#include <vector>

#include "util/check.h"
#include "util/uint128.h"

namespace pivotscale {

// Triangular table of C(n, k) for 0 <= k <= n <= max_n.
class BinomialTable {
 public:
  // Builds the table for all n in [0, max_n]. O(max_n^2) time and space;
  // max_n is typically the DAG's maximum out-degree plus one.
  explicit BinomialTable(std::uint32_t max_n);

  // C(n, k). Returns 0 when k > n; n must be within the table bound
  // (checked in debug builds — this sits on the per-leaf hot path).
  uint128 Choose(std::uint32_t n, std::uint32_t k) const {
    if (k > n) return 0;
    DCHECK_LE(n, max_n_) << "BinomialTable::Choose beyond the built rows";
    return rows_[n][k];
  }

  std::uint32_t max_n() const { return max_n_; }

  // Grows the table if needed so Choose(n, *) is valid for all n <= new_max.
  void EnsureRows(std::uint32_t new_max);

 private:
  std::uint32_t max_n_;
  std::vector<std::vector<uint128>> rows_;
};

// One-shot computation of C(n, k) without a table; saturating.
uint128 BinomialChoose(std::uint64_t n, std::uint64_t k);

}  // namespace pivotscale

#endif  // PIVOTSCALE_UTIL_BINOMIAL_H_
