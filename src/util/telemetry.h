// Run telemetry: the observability substrate for the counting pipeline.
//
// The paper's evaluation is built on per-phase timing, per-thread load
// balance, and operation counts (Tables 2-6, Figures 6-11). Instead of
// scattering bespoke seconds fields through result structs, every pipeline
// stage records into one TelemetryRegistry:
//   counters  -- accumulating u64 totals (recursion calls, edge ops, ...)
//   gauges    -- last-write doubles (max out-degree, probe ratios, ...)
//   spans     -- ordered (name, wall seconds) phase records
//   series    -- named per-thread vectors (busy seconds, chunk counts)
// A RunReport serializes the whole registry to one stable JSON document
// (see docs/api_tour.md "Telemetry" for the schema) plus an ASCII
// load-imbalance summary, so every CLI/bench run can emit machine-readable
// telemetry alongside its human-readable table.
//
// Threading: all mutators are mutex-guarded, so concurrent stages may
// record freely; the hot counting loops aggregate thread-locally and dump
// once per thread, so the lock never sits on a per-clique path.
#ifndef PIVOTSCALE_UTIL_TELEMETRY_H_
#define PIVOTSCALE_UTIL_TELEMETRY_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/timer.h"

namespace pivotscale {

// One recorded phase: wall seconds under a stable name. Spans keep record
// order (the pipeline's phase sequence), and names may repeat.
struct TelemetrySpan {
  std::string name;
  double seconds = 0;
};

// A point-in-time copy of everything a registry holds; the unit RunReport
// serialization works from.
struct TelemetrySnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::vector<TelemetrySpan> spans;
  std::map<std::string, std::vector<double>> series;
};

class TelemetryRegistry {
 public:
  TelemetryRegistry() = default;
  TelemetryRegistry(const TelemetryRegistry&) = delete;
  TelemetryRegistry& operator=(const TelemetryRegistry&) = delete;

  // Adds `delta` to the named counter (created at zero).
  void AddCounter(const std::string& name, std::uint64_t delta);

  // Sets the named gauge (last write wins).
  void SetGauge(const std::string& name, double value);

  // Appends a phase span. Spans preserve record order.
  void RecordSpan(const std::string& name, double seconds);

  // Replaces the named series (e.g. one slot per thread).
  void SetSeries(const std::string& name, std::vector<double> values);

  // Point lookups; zero / empty when the name was never recorded.
  std::uint64_t Counter(const std::string& name) const;
  double Gauge(const std::string& name) const;
  // Total seconds recorded under `name` (summed across repeats).
  double SpanSeconds(const std::string& name) const;
  std::vector<double> Series(const std::string& name) const;

  // True if any record of the given kind exists under `name`.
  bool HasSpan(const std::string& name) const;

  TelemetrySnapshot Snapshot() const;

  // Drops every record.
  void Clear();

  // RAII span: records the scope's wall time on destruction.
  //   { TelemetryRegistry::ScopedSpan span(&reg, "ordering"); ... }
  // A null registry makes the span a no-op, so call sites need no guard.
  class ScopedSpan {
   public:
    ScopedSpan(TelemetryRegistry* registry, std::string name)
        : registry_(registry), name_(std::move(name)) {}
    ~ScopedSpan() {
      if (registry_ != nullptr) registry_->RecordSpan(name_, timer_.Seconds());
    }
    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;

   private:
    TelemetryRegistry* registry_;
    std::string name_;
    Timer timer_;
  };

 private:
  mutable std::mutex mutex_;
  TelemetrySnapshot data_;
};

// Serializes a registry snapshot as one JSON document:
//   {"schema": "pivotscale.run_report", "version": 1,
//    "counters": {...}, "gauges": {...},
//    "spans": [{"name": ..., "seconds": ...}, ...],
//    "series": {...}}
// Key order inside counters/gauges/series is lexicographic (std::map), so
// the output is byte-stable for identical registries.
std::string RunReportJson(const TelemetryRegistry& registry);

// ASCII summary of every per-worker busy-time series (names ending in
// "busy_seconds": "count.thread_busy_seconds",
// "exec.worker_busy_seconds", ...): per-thread bars plus
// min/max/mean/CoV, the Section IV load-balance readout. Series are
// sized to the realized team by their writers, so the bars never include
// phantom slots for undelivered threads. Empty string when no such
// series exists.
std::string LoadImbalanceSummary(const TelemetryRegistry& registry);

// Writes RunReportJson(registry) to `path` (plus a trailing newline).
// Throws std::runtime_error on I/O failure.
void WriteRunReport(const std::string& path,
                    const TelemetryRegistry& registry);

}  // namespace pivotscale

#endif  // PIVOTSCALE_UTIL_TELEMETRY_H_
