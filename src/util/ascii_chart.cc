#include "util/ascii_chart.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace pivotscale {

namespace {
constexpr char kGlyphs[] = {'*', 'o', '+', 'x', '#', '@', '%', '&'};
constexpr int kNumGlyphs = 8;
}  // namespace

std::string RenderChart(const std::vector<std::string>& x_labels,
                        const std::vector<ChartSeries>& series,
                        const ChartOptions& options) {
  if (x_labels.empty() || series.empty()) return "";

  // Transform and range the data.
  auto transform = [&](double v) {
    if (!options.log_y) return v;
    return std::log10(std::max(v, 1e-12));
  };
  double lo = 1e300, hi = -1e300;
  for (const ChartSeries& s : series)
    for (double v : s.values) {
      const double t = transform(v);
      lo = std::min(lo, t);
      hi = std::max(hi, t);
    }
  if (hi <= lo) hi = lo + 1;

  const int height = std::max(3, options.height);
  const int cols = static_cast<int>(x_labels.size());
  const int col_width =
      std::max(1, options.width / std::max(1, cols));
  const int width = col_width * cols;

  std::vector<std::string> canvas(
      height, std::string(static_cast<std::size_t>(width), ' '));
  for (std::size_t si = 0; si < series.size(); ++si) {
    const char glyph = kGlyphs[si % kNumGlyphs];
    const auto& values = series[si].values;
    for (int c = 0; c < cols && c < static_cast<int>(values.size()); ++c) {
      const double t = transform(values[c]);
      int row = static_cast<int>(
          std::lround((t - lo) / (hi - lo) * (height - 1)));
      row = std::clamp(row, 0, height - 1);
      const int x = c * col_width + col_width / 2;
      canvas[height - 1 - row][x] = glyph;
    }
  }

  std::ostringstream out;
  char ybuf[32];
  for (int r = 0; r < height; ++r) {
    const double level = hi - (hi - lo) * r / (height - 1);
    const double display = options.log_y ? std::pow(10.0, level) : level;
    std::snprintf(ybuf, sizeof(ybuf), "%9.3g |", display);
    out << ybuf << canvas[r] << "\n";
  }
  out << std::string(11, ' ') << std::string(width, '-') << "\n";
  // X labels, centered per column (truncated to fit).
  out << std::string(11, ' ');
  for (int c = 0; c < cols; ++c) {
    std::string label = x_labels[c];
    if (static_cast<int>(label.size()) > col_width - 1)
      label.resize(std::max(1, col_width - 1));
    const int pad = col_width - static_cast<int>(label.size());
    out << std::string(pad / 2, ' ') << label
        << std::string(pad - pad / 2, ' ');
  }
  out << "\n";
  // Legend.
  out << std::string(11, ' ');
  for (std::size_t si = 0; si < series.size(); ++si)
    out << kGlyphs[si % kNumGlyphs] << "=" << series[si].name << "  ";
  if (!options.y_label.empty()) out << "(y: " << options.y_label << ")";
  out << "\n";
  return out.str();
}

std::string RenderBars(const std::vector<std::string>& labels,
                       const std::vector<double>& values, int width) {
  if (labels.empty()) return "";
  std::size_t label_width = 0;
  for (const auto& l : labels) label_width = std::max(label_width, l.size());
  double hi = 0;
  for (double v : values) hi = std::max(hi, v);
  if (hi <= 0) hi = 1;

  std::ostringstream out;
  char buf[32];
  for (std::size_t i = 0; i < labels.size() && i < values.size(); ++i) {
    const int bars = static_cast<int>(
        std::lround(values[i] / hi * width));
    std::snprintf(buf, sizeof(buf), "%10.3g ", values[i]);
    out << std::string(label_width - labels[i].size(), ' ') << labels[i]
        << " |" << std::string(bars, '#') << " " << buf << "\n";
  }
  return out.str();
}

}  // namespace pivotscale
