// Process memory measurement.
//
// Section VI-D of the paper measures maximum resident set size of the whole
// process; this wrapper exposes the same number via getrusage so the memory
// study can report both exact per-structure byte accounting and the
// process-level view.
#ifndef PIVOTSCALE_UTIL_MEM_H_
#define PIVOTSCALE_UTIL_MEM_H_

#include <cstdint>

namespace pivotscale {

// Peak resident set size of this process so far, in bytes.
std::uint64_t PeakRssBytes();

// Current resident set size of this process, in bytes (from /proc/self/statm;
// returns 0 if unavailable).
std::uint64_t CurrentRssBytes();

}  // namespace pivotscale

#endif  // PIVOTSCALE_UTIL_MEM_H_
