// Minimal JSON emit / parse support for the telemetry layer.
//
// JsonWriter is a streaming builder producing a compact, deterministic
// document (keys are emitted in the order the caller writes them; doubles
// round-trip via shortest-form formatting). JsonValue/ParseJson is the
// matching reader — just enough JSON to let tests and tools load a
// RunReport back without an external dependency.
#ifndef PIVOTSCALE_UTIL_JSON_WRITER_H_
#define PIVOTSCALE_UTIL_JSON_WRITER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace pivotscale {

// Streaming JSON builder. Usage:
//   JsonWriter w;
//   w.BeginObject();
//   w.Key("total"); w.Value(std::uint64_t{42});
//   w.Key("spans"); w.BeginArray(); ... w.EndArray();
//   w.EndObject();
//   std::string doc = w.str();
// Nesting is tracked; mismatched Begin/End or a Key outside an object
// throws std::logic_error so malformed documents fail at write time.
class JsonWriter {
 public:
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  // Emits an object key; must be inside an object, before the value.
  void Key(const std::string& name);

  void Value(const std::string& s);
  void Value(const char* s);
  void Value(double d);
  void Value(std::uint64_t u);
  void Value(std::int64_t i);
  void Value(int i) { Value(static_cast<std::int64_t>(i)); }
  void Value(bool b);
  void Null();

  // The finished document. Throws std::logic_error if containers are
  // still open.
  std::string str() const;

  // Escapes `s` as a JSON string literal (with surrounding quotes).
  static std::string Escape(const std::string& s);

 private:
  enum class Frame { kObject, kArray };
  void Comma();
  void OnValue();

  std::string out_;
  std::vector<Frame> stack_;
  std::vector<bool> first_;   // parallel to stack_: no comma needed yet
  bool key_pending_ = false;  // a Key() was written, value expected
};

// A parsed JSON document. Numbers are stored as double (telemetry counters
// fit exactly up to 2^53, far beyond what a run report holds).
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool bool_value = false;
  double number = 0;
  std::string string_value;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool IsObject() const { return type == Type::kObject; }
  bool IsArray() const { return type == Type::kArray; }
  bool IsNumber() const { return type == Type::kNumber; }
  bool IsString() const { return type == Type::kString; }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
};

// Parses a complete JSON document. Throws std::runtime_error (with a byte
// offset) on malformed input or trailing garbage.
JsonValue ParseJson(const std::string& text);

}  // namespace pivotscale

#endif  // PIVOTSCALE_UTIL_JSON_WRITER_H_
