// Parallel exclusive prefix sum.
//
// Used by the CSR builder and the orderings to turn per-vertex counts into
// offsets. The implementation blocks the input, scans blocks in parallel,
// sequentially scans the block totals, then applies offsets in parallel —
// the standard two-pass OpenMP scan.
#ifndef PIVOTSCALE_UTIL_PREFIX_SUM_H_
#define PIVOTSCALE_UTIL_PREFIX_SUM_H_

#include <omp.h>

#include <cstdint>
#include <type_traits>
#include <vector>

#include "util/check.h"

namespace pivotscale {

// Computes out[i] = sum of in[0..i) (exclusive scan) and returns the grand
// total. `out` may alias `in`. T must be an unsigned integral type.
template <typename T>
T ParallelPrefixSum(const std::vector<T>& in, std::vector<T>* out) {
  static_assert(std::is_unsigned_v<T>,
                "ParallelPrefixSum requires an unsigned accumulator");
  CHECK(out != nullptr);
  const std::size_t n = in.size();
  out->resize(n);
  if (n == 0) return T{0};

  const int num_threads = omp_get_max_threads();
  std::vector<T> block_totals(num_threads + 1, T{0});
  int used_threads = 1;

#pragma omp parallel num_threads(num_threads)
  {
    const int tid = omp_get_thread_num();
    const int nthreads = omp_get_num_threads();
    const std::size_t chunk = (n + nthreads - 1) / nthreads;
    const std::size_t begin = std::min(n, chunk * tid);
    const std::size_t end = std::min(n, begin + chunk);

    // Pass 1: local exclusive scan per block.
    T local = T{0};
    for (std::size_t i = begin; i < end; ++i) {
      const T v = in[i];  // read before write: in may alias out
      (*out)[i] = local;
      local += v;
    }
    block_totals[tid + 1] = local;

#pragma omp barrier
#pragma omp single
    {
      used_threads = nthreads;
      for (int t = 1; t <= nthreads; ++t)
        block_totals[t] += block_totals[t - 1];
    }

    // Pass 2: offset each block by the preceding blocks' totals.
    const T offset = block_totals[tid];
    if (offset != T{0})
      for (std::size_t i = begin; i < end; ++i) (*out)[i] += offset;
  }
  return block_totals[used_threads];
}

}  // namespace pivotscale

#endif  // PIVOTSCALE_UTIL_PREFIX_SUM_H_
