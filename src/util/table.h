// Aligned console table printing for the bench harness.
//
// Every bench binary prints the rows of the paper table/figure it
// regenerates; this printer keeps the output format uniform and
// machine-greppable (a leading marker column, pipe-separated cells).
#ifndef PIVOTSCALE_UTIL_TABLE_H_
#define PIVOTSCALE_UTIL_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace pivotscale {

class TablePrinter {
 public:
  // `title` is printed once above the header, prefixed with "== ".
  explicit TablePrinter(std::string title, std::vector<std::string> header);

  // Appends one row; cells are stringified by the Cell() helpers below.
  void AddRow(std::vector<std::string> cells);

  // Renders the table to stdout with aligned columns.
  void Print() const;

  // Cell formatting helpers.
  static std::string Cell(const std::string& s) { return s; }
  static std::string Cell(double v, int precision = 3);
  static std::string Cell(std::int64_t v);
  static std::string Cell(std::uint64_t v);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Renders a byte count with a binary-unit suffix ("3.2 MiB").
std::string HumanBytes(std::uint64_t bytes);

}  // namespace pivotscale

#endif  // PIVOTSCALE_UTIL_TABLE_H_
