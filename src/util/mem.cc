#include "util/mem.h"

#include <sys/resource.h>
#include <unistd.h>

#include <cstdio>

namespace pivotscale {

std::uint64_t PeakRssBytes() {
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // ru_maxrss is kilobytes on Linux.
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
}

std::uint64_t CurrentRssBytes() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long size = 0, resident = 0;
  const int matched = std::fscanf(f, "%lu %lu", &size, &resident);
  std::fclose(f);
  if (matched != 2) return 0;
  return static_cast<std::uint64_t>(resident) *
         static_cast<std::uint64_t>(sysconf(_SC_PAGESIZE));
}

}  // namespace pivotscale
