#include "util/stats.h"

#include <cmath>

namespace pivotscale {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  double sum = 0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double GeoMean(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  double log_sum = 0;
  for (double x : xs) log_sum += std::log(x);
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double StdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0;
  const double mean = Mean(xs);
  double ss = 0;
  for (double x : xs) ss += (x - mean) * (x - mean);
  return std::sqrt(ss / static_cast<double>(xs.size()));
}

double CoeffOfVariation(const std::vector<double>& xs) {
  const double mean = Mean(xs);
  if (mean == 0) return 0;
  return StdDev(xs) / mean;
}

}  // namespace pivotscale
