#include "util/timer.h"

// Timer and PhaseTimer are header-only; this translation unit exists so the
// module has a home for any future out-of-line additions and so the library
// always links at least one symbol per module.
namespace pivotscale {
namespace internal {
// Anchor symbol: keeps some linkers from warning about an empty archive
// member when the library is built with aggressive dead-stripping.
int timer_module_anchor = 0;
}  // namespace internal
}  // namespace pivotscale
