// Monotonic wall-clock timing utilities.
//
// Clique counting runs are reported as a breakdown of phases (heuristic,
// ordering, directionalization, counting); PhaseTimer accumulates named
// phases so every bench binary reports the same breakdown the paper uses.
#ifndef PIVOTSCALE_UTIL_TIMER_H_
#define PIVOTSCALE_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace pivotscale {

// A simple monotonic stopwatch. Starts running on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  // Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  // Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  // Nanoseconds elapsed since construction or the last Reset().
  std::uint64_t Nanos() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Accumulates named, ordered phase durations for a run.
//
// Usage:
//   PhaseTimer pt;
//   pt.Start();
//   ... ordering ...
//   pt.Stop("ordering");
//   ... counting ...
//   pt.Stop("counting");   // measures since the previous Stop()
class PhaseTimer {
 public:
  // Begins (or restarts) timing of the next phase.
  void Start() { timer_.Reset(); }

  // Ends the current phase, records it under `name`, and immediately starts
  // timing the next phase. Returns the recorded duration in seconds.
  double Stop(std::string name) {
    const double s = timer_.Seconds();
    phases_.emplace_back(std::move(name), s);
    timer_.Reset();
    return s;
  }

  // Sum of all recorded phases, in seconds.
  double TotalSeconds() const {
    double total = 0;
    for (const auto& [name, secs] : phases_) total += secs;
    return total;
  }

  // Seconds recorded for `name` (summed if recorded multiple times);
  // 0 if never recorded.
  double SecondsFor(const std::string& name) const {
    double total = 0;
    for (const auto& [phase, secs] : phases_)
      if (phase == name) total += secs;
    return total;
  }

  const std::vector<std::pair<std::string, double>>& phases() const {
    return phases_;
  }

 private:
  Timer timer_;
  std::vector<std::pair<std::string, double>> phases_;
};

}  // namespace pivotscale

#endif  // PIVOTSCALE_UTIL_TIMER_H_
