// Instrumentation policies for the counting recursion.
//
// The paper's Table II profiles the counting phase with hardware counters
// (instructions, function calls, LLC MPKI, IPC). This environment has no
// reliable hardware counters, so the recursion is templated over a stats
// policy: NoStats compiles every hook away (the production path),
// OpCountStats counts recursive calls / adjacency-entry operations /
// subgraph inductions / membership tests (the instruction-count proxy), and
// TraceStats additionally streams modeled memory addresses into a cache
// simulator (the MPKI proxy). See DESIGN.md "Environment substitutions".
#ifndef PIVOTSCALE_PIVOT_STATS_H_
#define PIVOTSCALE_PIVOT_STATS_H_

#include <cstdint>

namespace pivotscale {

// Memory regions of a subgraph structure, for modeled addresses.
enum class TouchRegion : int {
  kAdjRow = 0,   // adjacency row header / index entry for a vertex
  kAdjData = 1,  // adjacency list payload
  kDeg = 2,      // degree array
  kFlags = 3,    // mark/removed byte maps
};

// Aggregated operation counters (also the cross-policy result type).
struct OpCounters {
  std::uint64_t calls = 0;        // recursive CountRecurse invocations
  std::uint64_t edge_ops = 0;     // adjacency entries scanned
  std::uint64_t induces = 0;      // subgraph inductions (branch descents)
  std::uint64_t memberships = 0;  // mark/removed membership tests

  OpCounters& operator+=(const OpCounters& o) {
    calls += o.calls;
    edge_ops += o.edge_ops;
    induces += o.induces;
    memberships += o.memberships;
    return *this;
  }
};

// Production policy: zero-overhead.
struct NoStats {
  static constexpr bool kEnabled = false;
  static constexpr bool kTrace = false;
  void OnCall() {}
  void OnEdgeOp() {}
  void OnInduce() {}
  void OnMembership() {}
  void OnTouch(TouchRegion, std::uint64_t) {}
  OpCounters Snapshot() const { return {}; }
};

// Counting policy: the instruction/function-call proxy for Table II.
struct OpCountStats {
  static constexpr bool kEnabled = true;
  static constexpr bool kTrace = false;
  OpCounters ops;
  void OnCall() { ++ops.calls; }
  void OnEdgeOp() { ++ops.edge_ops; }
  void OnInduce() { ++ops.induces; }
  void OnMembership() { ++ops.memberships; }
  void OnTouch(TouchRegion, std::uint64_t) {}
  OpCounters Snapshot() const { return ops; }
};

// Tracing policy: ops plus modeled addresses fed to a cache-simulator-like
// sink. Sink must provide void Access(std::uint64_t address).
//
// Address model: each region is a disjoint arena; an access to element
// `index` of a region lands at region_base + index * element size. For the
// dense structure indices span [0, |V|); after remapping they span
// [0, max out-degree) — which is precisely the locality difference the
// paper attributes the MPKI gap to.
template <typename Sink>
struct TraceStats {
  static constexpr bool kEnabled = true;
  static constexpr bool kTrace = true;

  OpCounters ops;
  Sink* sink = nullptr;

  // Region arena bases, far apart so regions never alias.
  static constexpr std::uint64_t kRegionStride = std::uint64_t{1} << 40;

  void OnCall() { ++ops.calls; }
  void OnEdgeOp() { ++ops.edge_ops; }
  void OnInduce() { ++ops.induces; }
  void OnMembership() { ++ops.memberships; }
  void OnTouch(TouchRegion region, std::uint64_t index) {
    // Element sizes: row headers 24B (vector header), payload 4B (NodeId),
    // degrees 4B, flags 1B.
    static constexpr std::uint64_t kElemSize[] = {24, 4, 4, 1};
    const int r = static_cast<int>(region);
    sink->Access(static_cast<std::uint64_t>(r) * kRegionStride +
                 index * kElemSize[r]);
  }
  OpCounters Snapshot() const { return ops; }
};

}  // namespace pivotscale

#endif  // PIVOTSCALE_PIVOT_STATS_H_
