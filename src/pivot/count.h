// The counting driver over a directionalized DAG.
//
// This is the counting phase of the pipeline: every root vertex of the DAG
// is an independent work item (its induced subgraph is thread-local). The
// driver builds a task list — one task per root, with heavy roots split
// into first-level edge subtasks past `split_threshold` — and runs it on
// the exec layer (src/exec/executor.h) with one PivotCounter per worker,
// merging the per-worker counters serially at the end. Options select the
// subgraph structure (dense / sparse / remap), the counting mode, per-vertex
// attribution, operation-count instrumentation, and per-root work tracing
// for the scaling study. See docs/parallelism.md.
#ifndef PIVOTSCALE_PIVOT_COUNT_H_
#define PIVOTSCALE_PIVOT_COUNT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "pivot/pivoter.h"
#include "pivot/stats.h"
#include "sim/work_trace.h"
#include "util/uint128.h"

namespace pivotscale {

class TelemetryRegistry;

// The three thread-local subgraph representations of Section IV.
enum class SubgraphKind {
  kDense,   // |V|-sized index (original Pivoter layout)
  kSparse,  // hash-indexed compact slots
  kRemap,   // first-level id remap + compact dense arrays (default)
};

std::string SubgraphKindName(SubgraphKind kind);

// split_threshold value that disables long-tail root splitting entirely.
inline constexpr std::uint64_t kNeverSplit =
    ~static_cast<std::uint64_t>(0);
// Default long-tail split threshold on the per-root work estimate
// (out_degree + 1)^2: roots with out-degree above ~255 split.
inline constexpr std::uint64_t kDefaultSplitThreshold =
    std::uint64_t{1} << 16;

struct CountOptions {
  std::uint32_t k = 8;
  CountMode mode = CountMode::kSingleK;
  SubgraphKind structure = SubgraphKind::kRemap;
  // Accumulate per-vertex k-clique participation counts (kSingleK only).
  bool per_vertex = false;
  // Disable Section V-A early termination (ablation only; slower, same
  // counts). Applies to kSingleK.
  bool early_termination = true;
  // Count recursion operations (Table II proxy); small overhead.
  bool collect_op_stats = false;
  // Record per-root work for the scaling simulation; implies op stats and
  // adds a timer read per root.
  bool collect_work_trace = false;
  // 0 = lease everything the process thread budget has free
  // (exec/thread_budget.h); explicit requests are also capped by the
  // budget, so concurrent callers cannot oversubscribe the machine.
  int num_threads = 0;
  // Long-tail root splitting (exec layer): a root whose work estimate
  // (out_degree + 1)^2 exceeds this threshold is decomposed into
  // first-level edge subtasks, each counting the cliques whose two
  // lowest-ranked members are that DAG edge. Only the remap structure
  // supports pair builds, and work-trace runs never split (work is
  // attributed per root). 0 splits every root with out-edges (the full
  // edge-parallel decomposition); kNeverSplit disables splitting.
  std::uint64_t split_threshold = kDefaultSplitThreshold;
  // When non-null, the driver records "count.*" metrics into this registry:
  // per-thread busy-second and chunk-count series, work-item and dynamic-
  // chunk counters, recursion-op totals (implies op-stat collection), and
  // workspace/thread-count gauges. Not owned; must outlive the call.
  TelemetryRegistry* telemetry = nullptr;
};

struct CountResult {
  // k-cliques of the target size (in kAllK mode, per_size[k] when k is in
  // range, otherwise 0).
  BigCount total{};
  // per_size[s] = number of s-cliques; filled in kAllK mode.
  std::vector<BigCount> per_size;
  // Per-vertex participation counts; filled when per_vertex was set.
  std::vector<BigCount> per_vertex;
  // Aggregated recursion operations (op stats / work trace modes).
  OpCounters ops;
  // Per-root work (work trace mode).
  WorkTrace work_trace;
  // Counting wall time.
  double seconds = 0;
  // Sum of the per-thread subgraph workspace footprints.
  std::size_t workspace_bytes = 0;
  // Per-thread busy seconds, for the load-balance CoV analysis (Section IV).
  // Sized to the *actual* OpenMP team size (which may be smaller than the
  // requested thread count), so imbalance stats carry no phantom zeros.
  std::vector<double> thread_busy_seconds;
};

// Counts cliques on a directionalized DAG. The DAG must come from
// Directionalize() (each undirected edge stored once, acyclic).
CountResult CountCliques(const Graph& dag, const CountOptions& options);

// Edge-parallel counting (GPU-Pivot's finer-grained work decomposition):
// every root splits into its first-level edge subtasks — each counts the
// cliques whose two lowest-ranked members are that edge. Better load
// balance on skewed graphs at the cost of one intersection per edge.
// Since the exec-layer refactor this is CountCliques with
// split_threshold = 0 on the remap structure (the only one with pair
// builds); per-root work traces are not supported (work is per edge).
// k = 1 is answered directly (the vertex count).
CountResult CountCliquesEdgeParallel(const Graph& dag,
                                     const CountOptions& options);

}  // namespace pivotscale

#endif  // PIVOTSCALE_PIVOT_COUNT_H_
