#include "pivot/count.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "exec/executor.h"
#include "pivot/subgraph_dense.h"
#include "pivot/subgraph_remap.h"
#include "pivot/subgraph_sparse.h"
#include "util/check.h"
#include "util/stats.h"
#include "util/telemetry.h"
#include "util/timer.h"

namespace pivotscale {

std::string SubgraphKindName(SubgraphKind kind) {
  switch (kind) {
    case SubgraphKind::kDense:
      return "dense";
    case SubgraphKind::kSparse:
      return "sparse";
    case SubgraphKind::kRemap:
      return "remap";
  }
  return "unknown";
}

namespace {

// Edge subtasks from one split root cover at most this many out-edges
// each, so a mega-hub becomes many independently schedulable slices.
constexpr std::uint32_t kEdgeSliceLen = 32;

// One schedulable unit: a whole root, or — after a long-tail split — a
// slice [edge_begin, edge_end) of the root's out-edges.
struct CountTask {
  NodeId root = 0;
  std::uint32_t edge_begin = kWholeRoot;
  std::uint32_t edge_end = 0;

  static constexpr std::uint32_t kWholeRoot = 0xffffffffu;
};

// Dumps one finished driver run into the registry: per-thread series, op
// totals, and load-balance gauges. `items` is the number of top-level work
// items under `item_counter` ("count.roots" / "count.edge_owners").
void RecordCountTelemetry(TelemetryRegistry* telemetry,
                          const CountResult& result,
                          const ExecStats& exec_stats, std::uint64_t items,
                          const char* item_counter) {
  if (telemetry == nullptr) return;
  telemetry->SetSeries("count.thread_busy_seconds",
                       result.thread_busy_seconds);
  std::vector<double> chunk_series(exec_stats.worker_chunks.size());
  for (std::size_t t = 0; t < exec_stats.worker_chunks.size(); ++t)
    chunk_series[t] = static_cast<double>(exec_stats.worker_chunks[t]);
  telemetry->SetSeries("count.thread_chunks", std::move(chunk_series));
  telemetry->AddCounter("count.chunks", exec_stats.chunks);
  telemetry->AddCounter("count.splits", exec_stats.splits);
  telemetry->AddCounter(item_counter, items);
  telemetry->AddCounter("count.recursion_calls", result.ops.calls);
  telemetry->AddCounter("count.edge_ops", result.ops.edge_ops);
  telemetry->AddCounter("count.induces", result.ops.induces);
  telemetry->AddCounter("count.memberships", result.ops.memberships);
  telemetry->SetGauge("count.threads",
                      static_cast<double>(result.thread_busy_seconds.size()));
  telemetry->SetGauge("count.workspace_bytes",
                      static_cast<double>(result.workspace_bytes));
  telemetry->SetGauge("count.busy_cov",
                      CoeffOfVariation(result.thread_busy_seconds));
  telemetry->RecordSpan("count.wall", result.seconds);
}

// The driver body, instantiated per (structure, stats policy) pair. One
// exec-layer region over the task list; each worker owns a PivotCounter
// (its reduction slot) and the merge runs serially after the region.
template <typename SG, typename Stats>
CountResult Run(const Graph& dag, const CountOptions& options,
                const char* item_counter) {
  // Long-tail splitting needs first-level pair builds, which only the
  // remap structure implements.
  constexpr bool kCanSplit =
      requires(SG sg, NodeId a, NodeId b) { sg.BuildPair(a, b); };

  const NodeId n = dag.NumNodes();
  const auto max_out = static_cast<std::uint32_t>(dag.MaxDegree());
  const std::uint32_t bound = max_out + 1;
  const BinomialTable binom(bound + 1);

  CountResult result;
  result.per_size.assign(bound + 2, BigCount{});
  if (options.per_vertex) result.per_vertex.assign(n, BigCount{});
  if (options.collect_work_trace) result.work_trace.roots.resize(n);

  // Task list: one task per root; a root whose estimated work
  // (out_degree + 1)^2 exceeds the split threshold is decomposed into
  // edge slices. The estimates double as the chunking cost model.
  const bool may_split = kCanSplit && !options.collect_work_trace &&
                         options.split_threshold != kNeverSplit;
  std::vector<CountTask> tasks;
  tasks.reserve(n);
  std::vector<double> costs;
  costs.reserve(n);
  std::uint64_t splits = 0;
  for (NodeId v = 0; v < n; ++v) {
    const auto d = static_cast<std::uint64_t>(dag.Degree(v));
    const std::uint64_t estimate = (d + 1) * (d + 1);
    if (may_split && d > 0 && estimate > options.split_threshold) {
      ++splits;
      const auto deg = static_cast<std::uint32_t>(d);
      for (std::uint32_t b = 0; b < deg; b += kEdgeSliceLen) {
        const std::uint32_t e = std::min(deg, b + kEdgeSliceLen);
        tasks.push_back({v, b, e});
        costs.push_back(static_cast<double>((d + 1) * (e - b + 1)));
      }
    } else {
      tasks.push_back({v, CountTask::kWholeRoot, 0});
      costs.push_back(static_cast<double>(estimate));
    }
  }

  ExecOptions exec_options;
  exec_options.num_threads = options.num_threads;
  exec_options.chunks_per_worker = 16;
  exec_options.cost = [&costs](std::size_t i) { return costs[i]; };
  exec_options.splits = splits;
  exec_options.telemetry = options.telemetry;

  const ExecStats exec_stats = ParallelForWorkers(
      tasks.size(), exec_options,
      [&](int) {
        return PivotCounter<SG, Stats>(dag, options.mode, options.k,
                                       options.per_vertex, bound, &binom,
                                       options.early_termination);
      },
      [&](PivotCounter<SG, Stats>& counter, std::size_t ti) {
        const CountTask& task = tasks[ti];
        if (task.edge_begin == CountTask::kWholeRoot) {
          if (options.collect_work_trace) {
            const std::uint64_t ops_before =
                counter.stats().Snapshot().edge_ops;
            Timer root_timer;
            counter.ProcessRoot(task.root);
            result.work_trace.roots[task.root] = {
                task.root, root_timer.Nanos(),
                counter.stats().Snapshot().edge_ops - ops_before,
                dag.Degree(task.root)};
          } else {
            counter.ProcessRoot(task.root);
          }
          return;
        }
        if constexpr (kCanSplit) {
          // The first slice also accounts the owner's singleton clique,
          // which the size->=2 edge decomposition cannot reach.
          if (task.edge_begin == 0) counter.AddSingleton(task.root);
          const auto neighbors = dag.Neighbors(task.root);
          for (std::uint32_t j = task.edge_begin; j < task.edge_end; ++j)
            counter.ProcessEdge(task.root, neighbors[j]);
        }
      },
      [&](PivotCounter<SG, Stats>& counter) {
        result.total += counter.total();
        if (options.mode != CountMode::kSingleK) {
          const auto& sizes = counter.per_size();
          CHECK_LE(sizes.size(), result.per_size.size())
              << "count: per-thread per-size table outgrew the result "
                 "table";
          for (std::size_t s = 0; s < sizes.size(); ++s)
            result.per_size[s] += sizes[s];
        }
        if (options.per_vertex) {
          const auto& pv = counter.per_vertex_counts();
          CHECK_EQ(pv.size(), result.per_vertex.size());
          for (NodeId v = 0; v < n; ++v) result.per_vertex[v] += pv[v];
        }
        result.ops += counter.stats().Snapshot();
        result.workspace_bytes += counter.WorkspaceBytes();
      });

  result.seconds = exec_stats.seconds;
  result.thread_busy_seconds = exec_stats.worker_busy_seconds;

  if (options.mode != CountMode::kSingleK) {
    result.total = options.k < result.per_size.size()
                       ? result.per_size[options.k]
                       : BigCount{};
  }
  RecordCountTelemetry(options.telemetry, result, exec_stats, n,
                       item_counter);
  return result;
}

template <typename SG>
CountResult Dispatch(const Graph& dag, const CountOptions& options,
                     const char* item_counter) {
  // Telemetry wants the op totals, so it rides the counting stats policy.
  if (options.collect_op_stats || options.collect_work_trace ||
      options.telemetry != nullptr)
    return Run<SG, OpCountStats>(dag, options, item_counter);
  return Run<SG, NoStats>(dag, options, item_counter);
}

}  // namespace

CountResult CountCliquesEdgeParallel(const Graph& dag,
                                     const CountOptions& options) {
  if (dag.undirected())
    throw std::invalid_argument(
        "CountCliquesEdgeParallel: expected a directionalized DAG");
  if (options.collect_work_trace)
    throw std::invalid_argument(
        "CountCliquesEdgeParallel: per-root work traces are vertex-mode "
        "only");
  if (options.per_vertex && options.mode != CountMode::kSingleK)
    throw std::invalid_argument(
        "CountCliquesEdgeParallel: per-vertex counts require kSingleK");
  if (options.k < 1)
    throw std::invalid_argument("CountCliquesEdgeParallel: k must be >= 1");

  CountOptions edge_options = options;
  edge_options.structure = SubgraphKind::kRemap;
  edge_options.split_threshold = 0;  // split every root with out-edges
  return Dispatch<RemapSubgraph>(dag, edge_options, "count.edge_owners");
}

CountResult CountCliques(const Graph& dag, const CountOptions& options) {
  if (dag.undirected())
    throw std::invalid_argument(
        "CountCliques: expected a directionalized DAG (got an undirected "
        "graph); call Directionalize first");
  if (options.per_vertex && options.mode != CountMode::kSingleK)
    throw std::invalid_argument(
        "CountCliques: per-vertex counts require kSingleK mode");
  if (options.k < 1)
    throw std::invalid_argument("CountCliques: k must be >= 1");

  switch (options.structure) {
    case SubgraphKind::kDense:
      return Dispatch<DenseSubgraph>(dag, options, "count.roots");
    case SubgraphKind::kSparse:
      return Dispatch<SparseSubgraph>(dag, options, "count.roots");
    case SubgraphKind::kRemap:
      return Dispatch<RemapSubgraph>(dag, options, "count.roots");
  }
  throw std::invalid_argument("CountCliques: unknown subgraph structure");
}

}  // namespace pivotscale
