#include "pivot/count.h"

#include <omp.h>

#include <stdexcept>

#include "pivot/subgraph_dense.h"
#include "pivot/subgraph_remap.h"
#include "pivot/subgraph_sparse.h"
#include "util/timer.h"

namespace pivotscale {

std::string SubgraphKindName(SubgraphKind kind) {
  switch (kind) {
    case SubgraphKind::kDense:
      return "dense";
    case SubgraphKind::kSparse:
      return "sparse";
    case SubgraphKind::kRemap:
      return "remap";
  }
  return "unknown";
}

namespace {

// The driver body, instantiated per (structure, stats policy) pair.
template <typename SG, typename Stats>
CountResult Run(const Graph& dag, const CountOptions& options) {
  const NodeId n = dag.NumNodes();
  const auto max_out =
      static_cast<std::uint32_t>(dag.MaxDegree());
  const std::uint32_t bound = max_out + 1;
  const BinomialTable binom(bound + 1);

  const int requested_threads =
      options.num_threads > 0 ? options.num_threads : omp_get_max_threads();

  CountResult result;
  result.per_size.assign(bound + 2, BigCount{});
  if (options.per_vertex) result.per_vertex.assign(n, BigCount{});
  if (options.collect_work_trace) result.work_trace.roots.resize(n);
  result.thread_busy_seconds.assign(requested_threads, 0.0);

  Timer total_timer;
#pragma omp parallel num_threads(requested_threads)
  {
    const int tid = omp_get_thread_num();
    PivotCounter<SG, Stats> counter(dag, options.mode, options.k,
                                    options.per_vertex, bound, &binom,
                                    options.early_termination);
    Timer busy_timer;

#pragma omp for schedule(dynamic, 16) nowait
    for (NodeId v = 0; v < n; ++v) {
      if (options.collect_work_trace) {
        const std::uint64_t ops_before = counter.stats().Snapshot().edge_ops;
        Timer root_timer;
        counter.ProcessRoot(v);
        result.work_trace.roots[v] = {
            v, root_timer.Nanos(),
            counter.stats().Snapshot().edge_ops - ops_before,
            dag.Degree(v)};
      } else {
        counter.ProcessRoot(v);
      }
    }
    result.thread_busy_seconds[tid] = busy_timer.Seconds();

    // Reduce per-thread counters. Each reduction target is guarded; the
    // critical sections are tiny next to the counting work.
#pragma omp critical(count_reduce)
    {
      result.total += counter.total();
      if (options.mode != CountMode::kSingleK) {
        const auto& sizes = counter.per_size();
        for (std::size_t s = 0; s < sizes.size(); ++s)
          result.per_size[s] += sizes[s];
      }
      if (options.per_vertex) {
        const auto& pv = counter.per_vertex_counts();
        for (NodeId v = 0; v < n; ++v) result.per_vertex[v] += pv[v];
      }
      result.ops += counter.stats().Snapshot();
      result.workspace_bytes += counter.WorkspaceBytes();
    }
  }
  result.seconds = total_timer.Seconds();

  if (options.mode != CountMode::kSingleK) {
    result.total = options.k < result.per_size.size()
                       ? result.per_size[options.k]
                       : BigCount{};
  }
  return result;
}

template <typename SG>
CountResult Dispatch(const Graph& dag, const CountOptions& options) {
  if (options.collect_op_stats || options.collect_work_trace)
    return Run<SG, OpCountStats>(dag, options);
  return Run<SG, NoStats>(dag, options);
}

}  // namespace

CountResult CountCliquesEdgeParallel(const Graph& dag,
                                     const CountOptions& options) {
  if (dag.undirected())
    throw std::invalid_argument(
        "CountCliquesEdgeParallel: expected a directionalized DAG");
  if (options.collect_work_trace)
    throw std::invalid_argument(
        "CountCliquesEdgeParallel: per-root work traces are vertex-mode "
        "only");
  if (options.per_vertex && options.mode != CountMode::kSingleK)
    throw std::invalid_argument(
        "CountCliquesEdgeParallel: per-vertex counts require kSingleK");
  if (options.k < 1)
    throw std::invalid_argument("CountCliquesEdgeParallel: k must be >= 1");

  const NodeId n = dag.NumNodes();
  const std::uint32_t bound = static_cast<std::uint32_t>(dag.MaxDegree()) + 1;
  const BinomialTable binom(bound + 1);
  const int threads =
      options.num_threads > 0 ? options.num_threads : omp_get_max_threads();

  CountResult result;
  result.per_size.assign(bound + 2, BigCount{});
  if (options.per_vertex) result.per_vertex.assign(n, BigCount{});
  result.thread_busy_seconds.assign(threads, 0.0);

  // Instantiated for both stats policies so collect_op_stats is honored.
  auto run_edges = [&]<typename Stats>(Stats /*tag*/) {
    Timer total_timer;
#pragma omp parallel num_threads(threads)
    {
      const int tid = omp_get_thread_num();
      PivotCounter<RemapSubgraph, Stats> counter(
          dag, options.mode, options.k, options.per_vertex, bound, &binom,
          options.early_termination);
      Timer busy_timer;
#pragma omp for schedule(dynamic, 64) nowait
      for (NodeId u = 0; u < n; ++u)
        for (NodeId v : dag.Neighbors(u)) counter.ProcessEdge(u, v);
      result.thread_busy_seconds[tid] = busy_timer.Seconds();
#pragma omp critical(edge_count_reduce)
      {
        result.total += counter.total();
        if (options.mode != CountMode::kSingleK) {
          const auto& sizes = counter.per_size();
          for (std::size_t s = 0; s < sizes.size(); ++s)
            result.per_size[s] += sizes[s];
        }
        if (options.per_vertex) {
          const auto& pv = counter.per_vertex_counts();
          for (NodeId v = 0; v < n; ++v) result.per_vertex[v] += pv[v];
        }
        result.ops += counter.stats().Snapshot();
        result.workspace_bytes += counter.WorkspaceBytes();
      }
    }
    result.seconds = total_timer.Seconds();
  };
  if (options.collect_op_stats)
    run_edges(OpCountStats{});
  else
    run_edges(NoStats{});

  // The edge decomposition only reaches cliques of size >= 2; sizes are
  // completed / dispatched the same way the vertex driver does it.
  if (options.mode != CountMode::kSingleK) {
    result.per_size[1] = BigCount{static_cast<uint128>(n)};
    result.total = options.k < result.per_size.size()
                       ? result.per_size[options.k]
                       : BigCount{};
  } else if (options.k == 1) {
    result.total = BigCount{static_cast<uint128>(n)};
    if (options.per_vertex)
      for (NodeId v = 0; v < n; ++v) result.per_vertex[v] = BigCount{1};
  }
  return result;
}

CountResult CountCliques(const Graph& dag, const CountOptions& options) {
  if (dag.undirected())
    throw std::invalid_argument(
        "CountCliques: expected a directionalized DAG (got an undirected "
        "graph); call Directionalize first");
  if (options.per_vertex && options.mode != CountMode::kSingleK)
    throw std::invalid_argument(
        "CountCliques: per-vertex counts require kSingleK mode");
  if (options.k < 1)
    throw std::invalid_argument("CountCliques: k must be >= 1");

  switch (options.structure) {
    case SubgraphKind::kDense:
      return Dispatch<DenseSubgraph>(dag, options);
    case SubgraphKind::kSparse:
      return Dispatch<SparseSubgraph>(dag, options);
    case SubgraphKind::kRemap:
      return Dispatch<RemapSubgraph>(dag, options);
  }
  throw std::invalid_argument("CountCliques: unknown subgraph structure");
}

}  // namespace pivotscale
