#include "pivot/count.h"

#include <omp.h>

#include <stdexcept>

#include "pivot/subgraph_dense.h"
#include "pivot/subgraph_remap.h"
#include "pivot/subgraph_sparse.h"
#include "util/check.h"
#include "util/stats.h"
#include "util/telemetry.h"
#include "util/timer.h"

namespace pivotscale {

std::string SubgraphKindName(SubgraphKind kind) {
  switch (kind) {
    case SubgraphKind::kDense:
      return "dense";
    case SubgraphKind::kSparse:
      return "sparse";
    case SubgraphKind::kRemap:
      return "remap";
  }
  return "unknown";
}

namespace {

// Dynamic-schedule chunk sizes, shared between the pragmas and the chunk
// accounting (a chunk starts exactly at loop indices divisible by the
// chunk size, since both loops start at 0).
constexpr NodeId kRootChunk = 16;
constexpr NodeId kEdgeOwnerChunk = 64;

// Dumps one finished driver run into the registry: per-thread series, op
// totals, and load-balance gauges. `items` is the number of top-level work
// items under `item_counter` ("count.roots" / "count.edge_owners").
void RecordCountTelemetry(TelemetryRegistry* telemetry,
                          const CountResult& result,
                          const std::vector<std::uint64_t>& thread_chunks,
                          std::uint64_t items, const char* item_counter) {
  if (telemetry == nullptr) return;
  telemetry->SetSeries("count.thread_busy_seconds",
                       result.thread_busy_seconds);
  std::vector<double> chunk_series(thread_chunks.size());
  std::uint64_t total_chunks = 0;
  for (std::size_t t = 0; t < thread_chunks.size(); ++t) {
    chunk_series[t] = static_cast<double>(thread_chunks[t]);
    total_chunks += thread_chunks[t];
  }
  telemetry->SetSeries("count.thread_chunks", std::move(chunk_series));
  telemetry->AddCounter("count.chunks", total_chunks);
  telemetry->AddCounter(item_counter, items);
  telemetry->AddCounter("count.recursion_calls", result.ops.calls);
  telemetry->AddCounter("count.edge_ops", result.ops.edge_ops);
  telemetry->AddCounter("count.induces", result.ops.induces);
  telemetry->AddCounter("count.memberships", result.ops.memberships);
  telemetry->SetGauge("count.threads",
                      static_cast<double>(result.thread_busy_seconds.size()));
  telemetry->SetGauge("count.workspace_bytes",
                      static_cast<double>(result.workspace_bytes));
  telemetry->SetGauge("count.busy_cov",
                      CoeffOfVariation(result.thread_busy_seconds));
  telemetry->RecordSpan("count.wall", result.seconds);
}

// The driver body, instantiated per (structure, stats policy) pair.
template <typename SG, typename Stats>
CountResult Run(const Graph& dag, const CountOptions& options) {
  const NodeId n = dag.NumNodes();
  const auto max_out =
      static_cast<std::uint32_t>(dag.MaxDegree());
  const std::uint32_t bound = max_out + 1;
  const BinomialTable binom(bound + 1);

  const int requested_threads =
      options.num_threads > 0 ? options.num_threads : omp_get_max_threads();

  CountResult result;
  result.per_size.assign(bound + 2, BigCount{});
  if (options.per_vertex) result.per_vertex.assign(n, BigCount{});
  if (options.collect_work_trace) result.work_trace.roots.resize(n);
  // Per-thread slots are sized inside the region: OpenMP may deliver fewer
  // threads than requested, and phantom zero entries would dilute the
  // imbalance stats.
  std::vector<std::uint64_t> thread_chunks;

  Timer total_timer;
#pragma omp parallel num_threads(requested_threads)
  {
    const int tid = omp_get_thread_num();
    PivotCounter<SG, Stats> counter(dag, options.mode, options.k,
                                    options.per_vertex, bound, &binom,
                                    options.early_termination);
#pragma omp single
    {
      const int team = omp_get_num_threads();
      result.thread_busy_seconds.assign(team, 0.0);
      thread_chunks.assign(team, 0);
    }
    // (single's implicit barrier: every thread sees the sized arrays)
    CHECK_LT(static_cast<std::size_t>(tid),
             result.thread_busy_seconds.size())
        << "count: OpenMP delivered a thread id outside the sized team";
    std::uint64_t chunks = 0;
    Timer busy_timer;

#pragma omp for schedule(dynamic, kRootChunk) nowait
    for (NodeId v = 0; v < n; ++v) {
      if (v % kRootChunk == 0) ++chunks;
      if (options.collect_work_trace) {
        const std::uint64_t ops_before = counter.stats().Snapshot().edge_ops;
        Timer root_timer;
        counter.ProcessRoot(v);
        result.work_trace.roots[v] = {
            v, root_timer.Nanos(),
            counter.stats().Snapshot().edge_ops - ops_before,
            dag.Degree(v)};
      } else {
        counter.ProcessRoot(v);
      }
    }
    result.thread_busy_seconds[tid] = busy_timer.Seconds();
    thread_chunks[tid] = chunks;

    // Reduce per-thread counters. Each reduction target is guarded; the
    // critical sections are tiny next to the counting work.
#pragma omp critical(count_reduce)
    {
      result.total += counter.total();
      if (options.mode != CountMode::kSingleK) {
        const auto& sizes = counter.per_size();
        CHECK_LE(sizes.size(), result.per_size.size())
            << "count: per-thread per-size table outgrew the result table";
        for (std::size_t s = 0; s < sizes.size(); ++s)
          result.per_size[s] += sizes[s];
      }
      if (options.per_vertex) {
        const auto& pv = counter.per_vertex_counts();
        CHECK_EQ(pv.size(), result.per_vertex.size());
        for (NodeId v = 0; v < n; ++v) result.per_vertex[v] += pv[v];
      }
      result.ops += counter.stats().Snapshot();
      result.workspace_bytes += counter.WorkspaceBytes();
    }
  }
  result.seconds = total_timer.Seconds();

  if (options.mode != CountMode::kSingleK) {
    result.total = options.k < result.per_size.size()
                       ? result.per_size[options.k]
                       : BigCount{};
  }
  RecordCountTelemetry(options.telemetry, result, thread_chunks, n,
                       "count.roots");
  return result;
}

template <typename SG>
CountResult Dispatch(const Graph& dag, const CountOptions& options) {
  // Telemetry wants the op totals, so it rides the counting stats policy.
  if (options.collect_op_stats || options.collect_work_trace ||
      options.telemetry != nullptr)
    return Run<SG, OpCountStats>(dag, options);
  return Run<SG, NoStats>(dag, options);
}

}  // namespace

CountResult CountCliquesEdgeParallel(const Graph& dag,
                                     const CountOptions& options) {
  if (dag.undirected())
    throw std::invalid_argument(
        "CountCliquesEdgeParallel: expected a directionalized DAG");
  if (options.collect_work_trace)
    throw std::invalid_argument(
        "CountCliquesEdgeParallel: per-root work traces are vertex-mode "
        "only");
  if (options.per_vertex && options.mode != CountMode::kSingleK)
    throw std::invalid_argument(
        "CountCliquesEdgeParallel: per-vertex counts require kSingleK");
  if (options.k < 1)
    throw std::invalid_argument("CountCliquesEdgeParallel: k must be >= 1");

  const NodeId n = dag.NumNodes();
  const std::uint32_t bound = static_cast<std::uint32_t>(dag.MaxDegree()) + 1;
  const BinomialTable binom(bound + 1);
  const int threads =
      options.num_threads > 0 ? options.num_threads : omp_get_max_threads();

  CountResult result;
  result.per_size.assign(bound + 2, BigCount{});
  if (options.per_vertex) result.per_vertex.assign(n, BigCount{});
  std::vector<std::uint64_t> thread_chunks;

  // Instantiated for both stats policies so collect_op_stats is honored.
  auto run_edges = [&]<typename Stats>(Stats /*tag*/) {
    Timer total_timer;
#pragma omp parallel num_threads(threads)
    {
      const int tid = omp_get_thread_num();
      PivotCounter<RemapSubgraph, Stats> counter(
          dag, options.mode, options.k, options.per_vertex, bound, &binom,
          options.early_termination);
#pragma omp single
      {
        const int team = omp_get_num_threads();
        result.thread_busy_seconds.assign(team, 0.0);
        thread_chunks.assign(team, 0);
      }
      CHECK_LT(static_cast<std::size_t>(tid),
               result.thread_busy_seconds.size())
          << "count: OpenMP delivered a thread id outside the sized team";
      std::uint64_t chunks = 0;
      Timer busy_timer;
#pragma omp for schedule(dynamic, kEdgeOwnerChunk) nowait
      for (NodeId u = 0; u < n; ++u) {
        if (u % kEdgeOwnerChunk == 0) ++chunks;
        for (NodeId v : dag.Neighbors(u)) counter.ProcessEdge(u, v);
      }
      result.thread_busy_seconds[tid] = busy_timer.Seconds();
      thread_chunks[tid] = chunks;
#pragma omp critical(edge_count_reduce)
      {
        result.total += counter.total();
        if (options.mode != CountMode::kSingleK) {
          const auto& sizes = counter.per_size();
          CHECK_LE(sizes.size(), result.per_size.size())
              << "count: per-thread per-size table outgrew the result table";
          for (std::size_t s = 0; s < sizes.size(); ++s)
            result.per_size[s] += sizes[s];
        }
        if (options.per_vertex) {
          const auto& pv = counter.per_vertex_counts();
          for (NodeId v = 0; v < n; ++v) result.per_vertex[v] += pv[v];
        }
        result.ops += counter.stats().Snapshot();
        result.workspace_bytes += counter.WorkspaceBytes();
      }
    }
    result.seconds = total_timer.Seconds();
  };
  if (options.collect_op_stats || options.telemetry != nullptr)
    run_edges(OpCountStats{});
  else
    run_edges(NoStats{});

  // The edge decomposition only reaches cliques of size >= 2; sizes are
  // completed / dispatched the same way the vertex driver does it.
  if (options.mode != CountMode::kSingleK) {
    result.per_size[1] = BigCount{static_cast<uint128>(n)};
    result.total = options.k < result.per_size.size()
                       ? result.per_size[options.k]
                       : BigCount{};
  } else if (options.k == 1) {
    result.total = BigCount{static_cast<uint128>(n)};
    if (options.per_vertex)
      for (NodeId v = 0; v < n; ++v) result.per_vertex[v] = BigCount{1};
  }
  RecordCountTelemetry(options.telemetry, result, thread_chunks, n,
                       "count.edge_owners");
  return result;
}

CountResult CountCliques(const Graph& dag, const CountOptions& options) {
  if (dag.undirected())
    throw std::invalid_argument(
        "CountCliques: expected a directionalized DAG (got an undirected "
        "graph); call Directionalize first");
  if (options.per_vertex && options.mode != CountMode::kSingleK)
    throw std::invalid_argument(
        "CountCliques: per-vertex counts require kSingleK mode");
  if (options.k < 1)
    throw std::invalid_argument("CountCliques: k must be >= 1");

  switch (options.structure) {
    case SubgraphKind::kDense:
      return Dispatch<DenseSubgraph>(dag, options);
    case SubgraphKind::kSparse:
      return Dispatch<SparseSubgraph>(dag, options);
    case SubgraphKind::kRemap:
      return Dispatch<RemapSubgraph>(dag, options);
  }
  throw std::invalid_argument("CountCliques: unknown subgraph structure");
}

}  // namespace pivotscale
