#include "pivot/subgraph_remap.h"

#include <numeric>

#include "util/check.h"

namespace pivotscale {

void RemapSubgraph::Attach(const Graph& dag) {
  dag_ = &dag;
  remap_.Clear();
  verts_.clear();
}

void RemapSubgraph::Build(NodeId root) {
  DCHECK(dag_ != nullptr) << "RemapSubgraph::Build before Attach";
  const auto nbrs = dag_->Neighbors(root);
  orig_.assign(nbrs.begin(), nbrs.end());
  FinishBuild();
}

void RemapSubgraph::BuildPair(NodeId u, NodeId v) {
  // Sorted intersection of the two out-neighborhoods.
  const auto nu = dag_->Neighbors(u);
  const auto nv = dag_->Neighbors(v);
  orig_.clear();
  std::size_t i = 0, j = 0;
  while (i < nu.size() && j < nv.size()) {
    if (nu[i] < nv[j]) {
      ++i;
    } else if (nu[i] > nv[j]) {
      ++j;
    } else {
      orig_.push_back(nu[i]);
      ++i;
      ++j;
    }
  }
  FinishBuild();
}

void RemapSubgraph::FinishBuild() {
  const std::size_t n = orig_.size();

  // The remap — the one place a hash map is consulted for this root.
  remap_.Clear();
  remap_.Reserve(static_cast<std::uint32_t>(n));
  for (std::size_t local = 0; local < n; ++local)
    remap_.Insert(orig_[local], static_cast<Id>(local));

  verts_.resize(n);
  std::iota(verts_.begin(), verts_.end(), Id{0});
  if (rows_.size() < n) rows_.resize(n);
  if (deg_.size() < n) deg_.resize(n);
  if (flags_.size() < n) flags_.resize(n);
  for (std::size_t u = 0; u < n; ++u) {
    rows_[u].clear();  // keeps capacity
    deg_[u] = 0;
    flags_[u] = 0;
  }

  // Symmetrize member edges with ids already translated; everything after
  // this loop touches only compact local-id arrays.
  for (std::size_t a = 0; a < n; ++a) {
    for (NodeId b : dag_->Neighbors(orig_[a])) {
      const Id local = remap_.Find(b);
      if (local != FlatHashMap::kNotFound) {
        rows_[a].push_back(local);
        rows_[local].push_back(static_cast<Id>(a));
      }
    }
  }
  for (std::size_t u = 0; u < n; ++u)
    deg_[u] = static_cast<std::uint32_t>(rows_[u].size());
}

std::size_t RemapSubgraph::HeapBytes() const {
  std::size_t bytes = verts_.capacity() * sizeof(Id) +
                      orig_.capacity() * sizeof(NodeId) +
                      rows_.capacity() * sizeof(rows_[0]) +
                      deg_.capacity() * sizeof(deg_[0]) +
                      flags_.capacity() * sizeof(flags_[0]);
  for (const auto& row : rows_) bytes += row.capacity() * sizeof(Id);
  bytes += remap_.HeapBytes();
  return bytes;
}

}  // namespace pivotscale
