// The Pivoter counting recursion (Algorithm 1 + Section V details),
// templated over the subgraph structure and the stats policy.
//
// Per root vertex v of the DAG, Build() induces the (symmetrized) subgraph
// on N+(v) and the recursion runs Bron-Kerbosch with pivoting over it,
// maintaining only the candidate set P (Section V-B streamlines away R and
// X). Each tree path tracks the number of *required* vertices r and the
// number of *pivots* np; a leaf contributes C(np, k - r) k-cliques — every
// clique formed by the required vertices plus any (k-r)-subset of the path's
// pivots — and each clique is generated exactly once because every branch
// removes its vertex from the candidate pool of later branches (the
// "direct by identifier among non-neighbors" rule of Section V-A).
//
// Reversible mutations: descending into the branch of w narrows every
// surviving vertex's adjacency list, in place, so that a prefix of length
// deg(u) holds exactly the neighbors inside the new candidate set. The old
// prefix lengths go on an undo stack; ascent restores them. Partitioning
// permutes entries only within the parent's prefix, so restoring the length
// restores the set. All buffers are reused across roots: steady-state
// counting performs no allocation (Section V-B).
#ifndef PIVOTSCALE_PIVOT_PIVOTER_H_
#define PIVOTSCALE_PIVOT_PIVOTER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "pivot/stats.h"
#include "util/binomial.h"
#include "util/check.h"
#include "util/uint128.h"

namespace pivotscale {

// What the counter accumulates.
enum class CountMode {
  kSingleK,   // k-cliques of exactly the target size
  kAllK,      // every clique size up to the largest present
  kAllUpToK,  // every clique size up to k (Section V-A: the original
              // Pivoter's per-size mode, with pruning above k)
};

// One thread's counting engine. SG is one of {DenseSubgraph,
// SparseSubgraph, RemapSubgraph}; Stats is a policy from pivot/stats.h.
template <typename SG, typename Stats>
class PivotCounter {
 public:
  using Id = typename SG::Id;

  // `max_clique_bound` sizes the per-size array; the DAG's max out-degree
  // + 1 is always a valid bound (a clique of size c forces its root's
  // out-degree to be at least c - 1). `binom` must cover Choose(n, *) for
  // n <= max_clique_bound and is shared read-only across threads.
  PivotCounter(const Graph& dag, CountMode mode, std::uint32_t k,
               bool per_vertex, std::uint32_t max_clique_bound,
               const BinomialTable* binom, bool early_termination = true)
      : mode_(mode),
        k_(k),
        per_vertex_(per_vertex),
        early_termination_(early_termination),
        binom_(binom) {
    CHECK(binom != nullptr);
    CHECK_GE(k, 1u);
    // The leaf rule consults C(np, *) for np up to the bound; a short
    // table would silently read out of range mid-count.
    CHECK_GE(binom->max_n(), max_clique_bound)
        << "PivotCounter: binomial table does not cover the clique bound";
    sg_.Attach(dag);
    per_size_.assign(max_clique_bound + 2, BigCount{});
    if (per_vertex_) per_vertex_counts_.assign(dag.NumNodes(), BigCount{});
  }

  // Counts all cliques rooted at `root` and accumulates into this counter.
  void ProcessRoot(NodeId root) {
    sg_.Build(root);
    const auto verts = sg_.Vertices();
    EnsureDepth(verts.size() + 2);
    // The root itself is the first required vertex (r = 1).
    root_ = root;
    bufs_[0].assign(verts.begin(), verts.end());
    total_ += Recurse(bufs_[0], /*r=*/1, /*np=*/0, /*depth=*/0);
  }

  // Edge-parallel entry point (requires an SG with BuildPair, i.e. the
  // remap structure): counts the cliques whose two lowest-ranked members
  // are the DAG edge (u, v). Both endpoints start as required (r = 2).
  void ProcessEdge(NodeId u, NodeId v) {
    sg_.BuildPair(u, v);
    const auto verts = sg_.Vertices();
    EnsureDepth(verts.size() + 2);
    root_ = u;
    if (per_vertex_) required_stack_.push_back(v);
    bufs_[0].assign(verts.begin(), verts.end());
    total_ += Recurse(bufs_[0], /*r=*/2, /*np=*/0, /*depth=*/0);
    if (per_vertex_) required_stack_.pop_back();
  }

  // Accounts the singleton clique {u}. Used when a root task is split
  // into edge subtasks: ProcessEdge only reaches cliques of size >= 2, so
  // the split's owner contributes {u} exactly once through this call,
  // mirroring what ProcessRoot's empty-candidate leaf would have counted.
  void AddSingleton(NodeId u) {
    if (mode_ == CountMode::kSingleK) {
      if (k_ == 1) {
        total_ += BigCount{1};
        if (per_vertex_) per_vertex_counts_[u] += BigCount{1};
      }
      return;
    }
    per_size_[1] += BigCount{1};
  }

  BigCount total() const { return total_; }
  // per_size()[s] = number of s-cliques (kAllK mode; index 0 unused).
  const std::vector<BigCount>& per_size() const { return per_size_; }
  // per-vertex k-clique participation counts (per_vertex mode).
  const std::vector<BigCount>& per_vertex_counts() const {
    return per_vertex_counts_;
  }
  const Stats& stats() const { return stats_; }
  Stats& stats() { return stats_; }
  std::size_t WorkspaceBytes() const { return sg_.HeapBytes(); }
  const SG& subgraph() const { return sg_; }

 private:
  void EnsureDepth(std::size_t depth) {
    if (bufs_.size() < depth) {
      bufs_.resize(depth);
      branch_bufs_.resize(depth);
    }
  }

  // Leaf/early-exit contribution when the path holds r required vertices
  // and the pivots on pivot_stack_. Handles per-vertex attribution: each
  // required vertex is in all C(np, k-r) cliques; each pivot is in
  // C(np-1, k-r-1) of them (the cliques that chose it).
  BigCount LeafSingleK(std::uint32_t r, std::uint32_t np) {
    DCHECK_LT(np, per_size_.size());  // bound from the DAG's max out-degree
    if (k_ < r || k_ - r > np) return BigCount{};
    const BigCount cliques = binom_->Choose(np, k_ - r);
    if (per_vertex_ && cliques != BigCount{}) {
      per_vertex_counts_[root_] += cliques;
      for (NodeId u : required_stack_) per_vertex_counts_[u] += cliques;
      if (k_ > r) {
        const BigCount per_pivot = binom_->Choose(np - 1, k_ - r - 1);
        for (NodeId u : pivot_stack_) per_vertex_counts_[u] += per_pivot;
      }
    }
    return cliques;
  }

  void LeafAllK(std::uint32_t r, std::uint32_t np) {
    std::uint32_t max_j = np;
    if (mode_ == CountMode::kAllUpToK && k_ >= r)
      max_j = std::min(np, k_ - r);
    DCHECK_LT(r + max_j, per_size_.size());
    for (std::uint32_t j = 0; j <= max_j; ++j)
      per_size_[r + j] += binom_->Choose(np, j);
  }

  BigCount Recurse(std::span<const Id> candidates, std::uint32_t r,
                   std::uint32_t np, std::uint32_t depth) {
    stats_.OnCall();

    if (mode_ == CountMode::kSingleK && early_termination_) {
      // Early termination (Section V-A): once the required set alone
      // reaches k, the subtree holds exactly one k-clique — the required
      // set itself (any deeper leaf with r' = k shares it). Disabling this
      // is a pure ablation: the recursion stays correct, just slower.
      if (r == k_) return LeafSingleK(r, np);
      // Even taking every remaining candidate cannot reach k.
      if (r + np + candidates.size() < k_) return BigCount{};
    }
    // Required vertices beyond k contribute to no tracked size.
    if (mode_ == CountMode::kAllUpToK && r > k_) return BigCount{};

    if (candidates.empty()) {
      if (mode_ != CountMode::kSingleK) {
        LeafAllK(r, np);
        return BigCount{};
      }
      return LeafSingleK(r, np);
    }

    // Pivot: the candidate with the most neighbors inside the set. Its
    // neighbors need no branches of their own — they are all reachable
    // through the pivot's branch as optional (pivot) vertices.
    Id pivot = candidates[0];
    std::uint32_t pivot_deg = sg_.Deg(pivot);
    for (Id u : candidates) {
      const std::uint32_t d = sg_.Deg(u);
      if constexpr (Stats::kTrace)
        stats_.OnTouch(TouchRegion::kDeg, sg_.ModelIndex(u));
      if (d > pivot_deg) {
        pivot = u;
        pivot_deg = d;
      }
    }

    // Branch list: the pivot first, then the non-neighbors of the pivot.
    auto& branches = branch_bufs_[depth];
    branches.clear();
    branches.push_back(pivot);
    for (Id v : sg_.AdjPrefix(pivot)) {
      sg_.Mark(v);
      stats_.OnEdgeOp();
    }
    for (Id u : candidates) {
      stats_.OnMembership();
      if constexpr (Stats::kTrace)
        stats_.OnTouch(TouchRegion::kFlags, sg_.ModelIndex(u));
      if (u != pivot && !sg_.Marked(u)) branches.push_back(u);
    }
    for (Id v : sg_.AdjPrefix(pivot)) sg_.Unmark(v);

    BigCount total{};
    for (Id w : branches) {
      const bool is_pivot_branch = (w == pivot);

      // Child candidate set: N(w) within the current set, minus vertices
      // whose branches already ran at this level.
      auto& child = bufs_[depth + 1];
      child.clear();
      for (Id v : sg_.AdjPrefix(w)) {
        stats_.OnEdgeOp();
        stats_.OnMembership();
        if constexpr (Stats::kTrace)
          stats_.OnTouch(TouchRegion::kAdjData,
                         AdjIndex(sg_.ModelIndex(w), child.size()));
        if (!sg_.Removed(v)) child.push_back(v);
      }

      // Reversible narrowing: every child member's prefix shrinks to its
      // neighbors inside `child`. One undo frame per branch descent.
      stats_.OnInduce();
      const std::size_t undo_top = undo_.size();
      for (Id v : child) sg_.Mark(v);
      for (Id v : child) {
        auto adj = sg_.AdjPrefix(v);
        if constexpr (Stats::kTrace)
          stats_.OnTouch(TouchRegion::kAdjRow, sg_.ModelIndex(v));
        std::uint32_t kept = 0;
        for (std::uint32_t i = 0;
             i < static_cast<std::uint32_t>(adj.size()); ++i) {
          stats_.OnEdgeOp();
          if (sg_.Marked(adj[i])) std::swap(adj[kept++], adj[i]);
        }
        undo_.push_back({v, sg_.Deg(v)});
        sg_.SetDeg(v, kept);
      }
      for (Id v : child) sg_.Unmark(v);

      if (per_vertex_) {
        if (is_pivot_branch)
          pivot_stack_.push_back(sg_.OrigId(w));
        else
          required_stack_.push_back(sg_.OrigId(w));
      }

      total += Recurse(child, r + (is_pivot_branch ? 0 : 1),
                       np + (is_pivot_branch ? 1 : 0), depth + 1);

      if (per_vertex_) {
        if (is_pivot_branch)
          pivot_stack_.pop_back();
        else
          required_stack_.pop_back();
      }

      // Ascend: restore every narrowed prefix length.
      while (undo_.size() > undo_top) {
        const UndoRecord rec = undo_.back();
        undo_.pop_back();
        sg_.SetDeg(rec.vertex, rec.old_deg);
      }

      // This branch's vertex leaves the pool for all later branches.
      sg_.SetRemoved(w);
    }
    // Restore the removed flags so the parent level sees its own pool.
    for (Id w : branches) sg_.ClearRemoved(w);
    return total;
  }

  // Modeled flat index of adjacency payload accesses (trace policy only):
  // row-granular so dense structures spread across the full id space.
  std::uint64_t AdjIndex(Id u, std::size_t i) const {
    return static_cast<std::uint64_t>(u) * 64 +
           (static_cast<std::uint64_t>(i) & 63);
  }

  SG sg_;
  Stats stats_;
  CountMode mode_;
  std::uint32_t k_;
  bool per_vertex_;
  bool early_termination_;
  const BinomialTable* binom_;

  NodeId root_ = 0;
  BigCount total_{};
  std::vector<BigCount> per_size_;
  std::vector<BigCount> per_vertex_counts_;

  struct UndoRecord {
    Id vertex;
    std::uint32_t old_deg;
  };
  std::vector<UndoRecord> undo_;
  std::vector<std::vector<Id>> bufs_;         // per-depth candidate sets
  std::vector<std::vector<Id>> branch_bufs_;  // per-depth branch lists
  std::vector<NodeId> required_stack_;        // per-vertex mode only
  std::vector<NodeId> pivot_stack_;           // per-vertex mode only
};

}  // namespace pivotscale

#endif  // PIVOTSCALE_PIVOT_PIVOTER_H_
