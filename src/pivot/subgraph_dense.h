// Dense induced-subgraph structure — the original Pivoter layout
// (PivotScale (dense), Figure 4A).
//
// Vertices keep their original graph ids, and every per-vertex array
// (adjacency rows, degrees, flag maps) is sized |V(G)|. Access is a direct
// array index — the fastest possible — but the |V|-sized thread-local index
// is the memory hog that caps parallel scaling at higher thread counts
// (Section IV, Figure 11): with one subgraph per thread the indices alone
// can outweigh the input graph.
//
// All three subgraph structures share this interface (duck-typed, consumed
// by PivotCounter<SG, Stats>):
//   void Attach(const Graph& dag)       bind to a DAG; allocates workspace
//   void Build(NodeId root)             induce the first-level subgraph on
//                                       the out-neighborhood of `root`
//   span<const Id> Vertices()           first-level vertex handles
//   span<Id> AdjPrefix(Id u)            active neighbors (mutable prefix)
//   uint32_t Deg / SetDeg               active-neighbor count (the prefix
//                                       length; SetDeg is the undo hook)
//   Mark/Unmark/Marked                  scratch membership map
//   SetRemoved/ClearRemoved/Removed     processed-branch map
//   NodeId OrigId(Id u)                 handle -> original graph id
//   size_t IndexSpace()                 id-space size (address modeling)
//   size_t HeapBytes()                  exact workspace footprint
#ifndef PIVOTSCALE_PIVOT_SUBGRAPH_DENSE_H_
#define PIVOTSCALE_PIVOT_SUBGRAPH_DENSE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "util/bytemap.h"

namespace pivotscale {

class DenseSubgraph {
 public:
  using Id = std::uint32_t;
  static constexpr const char* kName = "dense";

  void Attach(const Graph& dag);
  void Build(NodeId root);

  std::span<const Id> Vertices() const { return verts_; }

  std::span<Id> AdjPrefix(Id u) {
    return {adj_[u].data(), static_cast<std::size_t>(deg_[u])};
  }
  std::uint32_t Deg(Id u) const { return deg_[u]; }
  void SetDeg(Id u, std::uint32_t d) { deg_[u] = d; }

  void Mark(Id u) { mark_.Set(u); }
  void Unmark(Id u) { mark_.Unset(u); }
  bool Marked(Id u) const { return mark_.Test(u); }

  void SetRemoved(Id u) { removed_.Set(u); }
  void ClearRemoved(Id u) { removed_.Unset(u); }
  bool Removed(Id u) const { return removed_.Test(u); }

  NodeId OrigId(Id u) const { return u; }
  // Index used by the modeled-address trace: where this vertex's state
  // physically lives. Dense state is indexed by the original id.
  Id ModelIndex(Id u) const { return u; }
  std::size_t IndexSpace() const { return adj_.size(); }
  std::size_t HeapBytes() const;

 private:
  const Graph* dag_ = nullptr;
  std::vector<Id> verts_;
  std::vector<std::vector<Id>> adj_;   // |V| rows; only members populated
  std::vector<std::uint32_t> deg_;     // |V| entries
  ByteMap mark_;                       // |V| bytes
  ByteMap removed_;                    // |V| bytes
};

}  // namespace pivotscale

#endif  // PIVOTSCALE_PIVOT_SUBGRAPH_DENSE_H_
