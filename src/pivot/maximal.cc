#include "pivot/maximal.h"

#include <algorithm>

#include "exec/executor.h"
#include "graph/dag.h"
#include "order/core_order.h"
#include "util/flat_hash.h"
#include "util/timer.h"

namespace pivotscale {

namespace {

// One worker's Bron-Kerbosch state over the subgraph induced on a root's
// full neighborhood. Candidate (P) and excluded (X) sets are sorted vectors
// of local ids; children are built by sorted intersection with a member's
// local adjacency, so every operation is linear in the sets involved.
class BkWorker {
 public:
  explicit BkWorker(const Graph& g) : g_(g) {}

  // Enumerates all maximal cliques whose lowest-core-rank member is root.
  // `ranks` is the core order; `report` receives (clique size) for counting
  // or the member list via clique_ for listing.
  template <typename Report>
  void ProcessRoot(NodeId root, std::span<const NodeId> ranks,
                   Report&& report) {
    const auto nbrs = g_.Neighbors(root);
    const std::size_t n = nbrs.size();
    if (n == 0) {
      // Isolated vertex: itself a maximal 1-clique.
      clique_.assign(1, root);
      report(std::span<const NodeId>(clique_));
      return;
    }

    // Local id space over the neighborhood.
    remap_.Clear();
    remap_.Reserve(static_cast<std::uint32_t>(n));
    orig_.assign(nbrs.begin(), nbrs.end());
    for (std::uint32_t local = 0; local < n; ++local)
      remap_.Insert(orig_[local], local);

    if (adj_.size() < n) adj_.resize(n);
    for (std::size_t u = 0; u < n; ++u) adj_[u].clear();
    for (std::uint32_t a = 0; a < n; ++a) {
      for (NodeId b : g_.Neighbors(orig_[a])) {
        const std::uint32_t local = remap_.Find(b);
        if (local != FlatHashMap::kNotFound) adj_[a].push_back(local);
      }
      std::sort(adj_[a].begin(), adj_[a].end());
    }

    // P = neighbors after root in core order; X = before. Any clique with
    // an earlier-ranked member is found from that member's root instead.
    std::vector<std::uint32_t> p, x;
    for (std::uint32_t local = 0; local < n; ++local) {
      if (ranks[orig_[local]] > ranks[root])
        p.push_back(local);
      else
        x.push_back(local);
    }

    clique_.assign(1, root);
    Recurse(p, x, report);
    clique_.clear();
  }

 private:
  template <typename Report>
  void Recurse(const std::vector<std::uint32_t>& p,
               const std::vector<std::uint32_t>& x, Report&& report) {
    if (p.empty()) {
      if (x.empty()) report(std::span<const NodeId>(clique_));
      return;
    }

    // Pivot: the member of P u X with the most neighbors in P minimizes
    // the branch count (Tomita et al.).
    std::uint32_t pivot = p[0];
    std::size_t pivot_deg = 0;
    bool first = true;
    for (const auto* set : {&p, &x}) {
      for (std::uint32_t u : *set) {
        const std::size_t d = SortedIntersectionSize(adj_[u], p);
        if (first || d > pivot_deg) {
          pivot = u;
          pivot_deg = d;
          first = false;
        }
      }
    }

    // Branch over P \ N(pivot), moving each processed vertex to X.
    std::vector<std::uint32_t> branches;
    std::set_difference(p.begin(), p.end(), adj_[pivot].begin(),
                        adj_[pivot].end(), std::back_inserter(branches));
    std::vector<std::uint32_t> cur_p = p, cur_x = x;
    std::vector<std::uint32_t> child_p, child_x;
    for (std::uint32_t w : branches) {
      child_p.clear();
      child_x.clear();
      std::set_intersection(cur_p.begin(), cur_p.end(), adj_[w].begin(),
                            adj_[w].end(), std::back_inserter(child_p));
      std::set_intersection(cur_x.begin(), cur_x.end(), adj_[w].begin(),
                            adj_[w].end(), std::back_inserter(child_x));
      clique_.push_back(orig_[w]);
      Recurse(child_p, child_x, report);
      clique_.pop_back();
      // w: P -> X (both stay sorted).
      cur_p.erase(std::lower_bound(cur_p.begin(), cur_p.end(), w));
      cur_x.insert(std::lower_bound(cur_x.begin(), cur_x.end(), w), w);
    }
  }

  static std::size_t SortedIntersectionSize(
      const std::vector<std::uint32_t>& a,
      const std::vector<std::uint32_t>& b) {
    std::size_t count = 0, i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
      if (a[i] < b[j]) {
        ++i;
      } else if (a[i] > b[j]) {
        ++j;
      } else {
        ++count;
        ++i;
        ++j;
      }
    }
    return count;
  }

  const Graph& g_;
  FlatHashMap remap_;
  std::vector<NodeId> orig_;
  std::vector<std::vector<std::uint32_t>> adj_;
  std::vector<NodeId> clique_;
};

}  // namespace

MaximalCliqueStats CountMaximalCliques(const Graph& g, int num_threads) {
  Timer timer;
  const Ordering core = CoreOrdering(g);
  const NodeId n = g.NumNodes();

  MaximalCliqueStats stats;
  stats.by_size.assign(g.MaxDegree() + 2, BigCount{});

  // Per-worker reduction slot: the BK state plus this worker's partial
  // totals, merged serially after the region.
  struct Worker {
    explicit Worker(const Graph& graph, std::size_t sizes)
        : bk(graph), by_size(sizes, BigCount{}) {}
    BkWorker bk;
    BigCount total{};
    std::size_t largest = 0;
    std::vector<BigCount> by_size;
  };

  ExecOptions exec_options;
  exec_options.num_threads = num_threads;
  exec_options.cost = [&g](std::size_t v) {
    return static_cast<double>(g.Degree(static_cast<NodeId>(v)) + 1);
  };
  ParallelForWorkers(
      n, exec_options,
      [&](int) { return Worker(g, stats.by_size.size()); },
      [&core](Worker& w, std::size_t v) {
        w.bk.ProcessRoot(static_cast<NodeId>(v), core.ranks,
                         [&w](std::span<const NodeId> clique) {
                           w.total += BigCount{1};
                           w.largest = std::max(w.largest, clique.size());
                           w.by_size[clique.size()] += BigCount{1};
                         });
      },
      [&stats](Worker& w) {
        stats.total += w.total;
        stats.largest = std::max(stats.largest, w.largest);
        for (std::size_t s = 0; s < w.by_size.size(); ++s)
          stats.by_size[s] += w.by_size[s];
      });
  stats.seconds = timer.Seconds();
  return stats;
}

void ForEachMaximalClique(
    const Graph& g, const std::function<void(std::span<const NodeId>)>& fn) {
  const Ordering core = CoreOrdering(g);
  BkWorker worker(g);
  for (NodeId v = 0; v < g.NumNodes(); ++v)
    worker.ProcessRoot(v, core.ranks, fn);
}

std::size_t CliqueNumber(const Graph& g) {
  return CountMaximalCliques(g).largest;
}

}  // namespace pivotscale
