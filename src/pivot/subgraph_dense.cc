#include "pivot/subgraph_dense.h"

namespace pivotscale {

void DenseSubgraph::Attach(const Graph& dag) {
  dag_ = &dag;
  const std::size_t n = dag.NumNodes();
  adj_.resize(n);
  deg_.assign(n, 0);
  mark_.EnsureCapacity(n);
  removed_.EnsureCapacity(n);
  verts_.clear();
}

void DenseSubgraph::Build(NodeId root) {
  // Reuse: clear only the rows the previous subgraph touched; clear() keeps
  // each row's capacity, so steady-state builds allocate nothing (the
  // allocation-reuse discipline of Section V-B).
  for (Id u : verts_) {
    adj_[u].clear();
    deg_[u] = 0;
    mark_.Unset(u);
  }
  verts_.clear();

  const auto nbrs = dag_->Neighbors(root);
  verts_.assign(nbrs.begin(), nbrs.end());
  for (Id u : verts_) mark_.Set(u);

  // Symmetrize within the subgraph: each DAG edge a->b between two members
  // becomes entries in both rows (Section V-A: the first-level subgraph is
  // symmetrized).
  for (Id a : verts_) {
    for (NodeId b : dag_->Neighbors(a)) {
      if (mark_.Test(b)) {
        adj_[a].push_back(b);
        adj_[b].push_back(a);
      }
    }
  }
  for (Id u : verts_) {
    deg_[u] = static_cast<std::uint32_t>(adj_[u].size());
    mark_.Unset(u);
  }
}

std::size_t DenseSubgraph::HeapBytes() const {
  std::size_t bytes = adj_.capacity() * sizeof(adj_[0]) +
                      deg_.capacity() * sizeof(deg_[0]) +
                      mark_.HeapBytes() + removed_.HeapBytes() +
                      verts_.capacity() * sizeof(Id);
  for (const auto& row : adj_) bytes += row.capacity() * sizeof(Id);
  return bytes;
}

}  // namespace pivotscale
