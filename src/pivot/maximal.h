// Maximal clique enumeration (Bron-Kerbosch with pivoting over a
// degeneracy-ordered outer loop — Eppstein, Löffler & Strash).
//
// Pivoter counts k-cliques by aggregating over exactly this search tree
// (Section II-B); the library exposes the underlying enumerator as a
// first-class feature: counting maximal cliques (parallel over roots) and
// listing them through a callback. The outer loop processes each vertex v
// in core order with candidates P = later neighbors and excluded
// X = earlier neighbors, which bounds every subproblem by the degeneracy
// and guarantees each maximal clique is reported exactly once.
#ifndef PIVOTSCALE_PIVOT_MAXIMAL_H_
#define PIVOTSCALE_PIVOT_MAXIMAL_H_

#include <functional>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "util/uint128.h"

namespace pivotscale {

struct MaximalCliqueStats {
  BigCount total{};                 // number of maximal cliques
  std::size_t largest = 0;          // size of the largest clique (omega)
  std::vector<BigCount> by_size;    // by_size[s] = maximal cliques of size s
  double seconds = 0;
};

// Counts all maximal cliques of the undirected graph. Parallel over roots.
// Isolated vertices count as maximal 1-cliques.
MaximalCliqueStats CountMaximalCliques(const Graph& g, int num_threads = 0);

// Calls `fn` once per maximal clique with its (unsorted) member list.
// Sequential — intended for listing/percolation workloads where the
// callback dominates anyway.
void ForEachMaximalClique(
    const Graph& g, const std::function<void(std::span<const NodeId>)>& fn);

// Size of the largest clique (the clique number omega), via the same
// enumeration with max-tracking only.
std::size_t CliqueNumber(const Graph& g);

}  // namespace pivotscale

#endif  // PIVOTSCALE_PIVOT_MAXIMAL_H_
