// The full PivotScale pipeline: heuristic -> ordering -> directionalize ->
// count, with the phase breakdown the evaluation reports.
//
// This is the library's top-level entry point. Given an undirected graph
// and a target clique size it (1) runs the order-selecting heuristic of
// Section III-E (unless an ordering is forced), (2) computes the chosen
// ordering, (3) directionalizes, and (4) runs the vertex-parallel counting
// phase with the remapped subgraph structure by default.
#ifndef PIVOTSCALE_PIVOT_PIVOTSCALE_H_
#define PIVOTSCALE_PIVOT_PIVOTSCALE_H_

#include <optional>
#include <string>

#include "graph/graph.h"
#include "order/heuristic.h"
#include "order/ordering.h"
#include "pivot/count.h"

namespace pivotscale {

class TelemetryRegistry;

struct PivotScaleOptions {
  std::uint32_t k = 8;
  // Heuristic thresholds (Section III-E). min_nodes defaults to the paper's
  // 1M; bench binaries scale it to the synthetic suite.
  HeuristicConfig heuristic;
  // When set, skip the heuristic and use exactly this ordering.
  std::optional<OrderingSpec> forced_ordering;
  // Counting-phase options. `count.k` is overridden by this struct's `k`;
  // `count.mode` is forced to kAllK when `all_k` is set and respected
  // otherwise (so kAllUpToK is reachable through the pipeline).
  CountOptions count;
  // Count every clique size up to the maximum instead of only k.
  bool all_k = false;
  // When non-null, every phase records into this registry: "heuristic",
  // "ordering", "directionalize", and "counting" spans plus each stage's
  // probe/round/load-balance metrics (see docs/api_tour.md "Telemetry").
  // Also forwarded to the counting driver unless count.telemetry is set.
  TelemetryRegistry* telemetry = nullptr;
};

struct PivotScaleResult {
  BigCount total{};                 // k-cliques counted
  HeuristicDecision decision;       // probes (zeroed if ordering forced)
  std::string ordering_name;
  EdgeId max_out_degree = 0;        // ordering quality
  CountResult count;                // counting-phase details

  double heuristic_seconds = 0;
  double ordering_seconds = 0;
  double directionalize_seconds = 0;
  double counting_seconds = 0;
  // Everything except reading/building the input graph — the paper's
  // reported "total time".
  double total_seconds = 0;
};

// Runs the pipeline. The input must be undirected and simple.
PivotScaleResult CountKCliques(const Graph& g,
                               const PivotScaleOptions& options = {});

// Convenience one-liner: heuristic-selected ordering, remap structure.
BigCount CountKCliquesSimple(const Graph& g, std::uint32_t k);

}  // namespace pivotscale

#endif  // PIVOTSCALE_PIVOT_PIVOTSCALE_H_
