#include "pivot/subgraph_sparse.h"

namespace pivotscale {

void SparseSubgraph::Attach(const Graph& dag) {
  dag_ = &dag;
  index_.Clear();
  verts_.clear();
  // Slot arrays grow to the largest out-neighborhood seen; rows_ keeps each
  // slot's vector capacity across Build calls (allocation reuse).
}

void SparseSubgraph::Build(NodeId root) {
  const auto nbrs = dag_->Neighbors(root);
  const std::size_t n = nbrs.size();

  index_.Clear();
  index_.Reserve(static_cast<std::uint32_t>(n));
  verts_.assign(nbrs.begin(), nbrs.end());
  if (rows_.size() < n) rows_.resize(n);
  if (deg_.size() < n) deg_.resize(n);
  if (flags_.size() < n) flags_.resize(n);

  for (std::size_t s = 0; s < n; ++s) {
    index_.Insert(verts_[s], static_cast<std::uint32_t>(s));
    rows_[s].clear();  // keeps capacity
    deg_[s] = 0;
    flags_[s] = 0;
  }

  // Symmetrize the members' DAG edges, exactly as the dense structure does,
  // but with hash membership tests instead of a |V|-sized byte map.
  for (Id a : verts_) {
    const std::uint32_t sa = Slot(a);
    for (NodeId b : dag_->Neighbors(a)) {
      const std::uint32_t sb = index_.Find(b);
      if (sb != FlatHashMap::kNotFound) {
        rows_[sa].push_back(b);
        rows_[sb].push_back(a);
      }
    }
  }
  for (std::size_t s = 0; s < n; ++s)
    deg_[s] = static_cast<std::uint32_t>(rows_[s].size());
}

std::size_t SparseSubgraph::HeapBytes() const {
  std::size_t bytes = verts_.capacity() * sizeof(Id) +
                      rows_.capacity() * sizeof(rows_[0]) +
                      deg_.capacity() * sizeof(deg_[0]) +
                      flags_.capacity() * sizeof(flags_[0]);
  for (const auto& row : rows_) bytes += row.capacity() * sizeof(Id);
  bytes += index_.HeapBytes();
  return bytes;
}

}  // namespace pivotscale
