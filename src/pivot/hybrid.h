// Hybrid exact k-clique counter (Section VI-H).
//
// "A hybrid algorithm which performs well for all clique sizes can easily
// be implemented by switching with a simple heuristic e.g. (k >= 8)":
// enumeration is faster for small k (its work grows with k but starts far
// below pivoting's fixed cost), pivoting for large k (its cost is nearly
// k-independent). This implements exactly that switch.
#ifndef PIVOTSCALE_PIVOT_HYBRID_H_
#define PIVOTSCALE_PIVOT_HYBRID_H_

#include <string>

#include "graph/graph.h"
#include "order/heuristic.h"
#include "util/uint128.h"

namespace pivotscale {

struct HybridConfig {
  // Switch point: k >= pivot_threshold uses pivoting (paper's example: 8).
  std::uint32_t pivot_threshold = 8;
  // Heuristic thresholds for the pivoting path's ordering selection.
  HeuristicConfig heuristic;
  int num_threads = 0;
};

struct HybridResult {
  BigCount total{};
  bool used_pivoting = false;
  std::string strategy;  // "enumeration(core)" or "pivotscale(<ordering>)"
  double seconds = 0;
};

// Exact k-clique count via the better strategy for this k.
HybridResult CountKCliquesHybrid(const Graph& g, std::uint32_t k,
                                 const HybridConfig& config = {});

}  // namespace pivotscale

#endif  // PIVOTSCALE_PIVOT_HYBRID_H_
