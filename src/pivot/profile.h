// Clique profile: the succinct-clique-tree leaf digest.
//
// Every leaf of the Pivoter recursion is characterized by its pair
// (r, np) — required vertices and pivots on the path. The histogram of
// those pairs is a complete summary of the graph's clique structure: the
// number of k-cliques for ANY k is sum over leaves of C(np, k - r), so one
// full recursion (built once) answers arbitrary per-size queries later —
// the factored form of the original Pivoter's count-everything mode.
#ifndef PIVOTSCALE_PIVOT_PROFILE_H_
#define PIVOTSCALE_PIVOT_PROFILE_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/uint128.h"

namespace pivotscale {

class CliqueProfile {
 public:
  // leaves(r, np) = number of recursion leaves with that signature.
  // Dimensions are [r][np], r >= 1.
  explicit CliqueProfile(
      std::vector<std::vector<std::uint64_t>> leaf_histogram);

  // Number of k-cliques: sum_{r,np} leaves(r,np) * C(np, k-r). O(profile
  // size) per query, no graph access.
  BigCount CountK(std::uint32_t k) const;

  // All sizes at once (index s = number of s-cliques; index 0 unused).
  std::vector<BigCount> PerSize() const;

  // Largest clique size present (0 for an empty graph).
  std::uint32_t MaxCliqueSize() const;

  // Total number of recursion leaves (the tree's width).
  std::uint64_t TotalLeaves() const;

  const std::vector<std::vector<std::uint64_t>>& histogram() const {
    return hist_;
  }

 private:
  std::vector<std::vector<std::uint64_t>> hist_;  // [r][np]
  std::uint32_t max_r_plus_np_ = 0;
};

// Runs the full (non-terminated) recursion once over the DAG and digests
// its leaves. Parallel over roots.
CliqueProfile ComputeCliqueProfile(const Graph& dag, int num_threads = 0);

}  // namespace pivotscale

#endif  // PIVOTSCALE_PIVOT_PROFILE_H_
