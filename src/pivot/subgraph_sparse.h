// Sparse induced-subgraph structure (PivotScale (sparse), Figure 4B).
//
// Only vertices present in the subgraph are indexed: a hash map takes an
// original vertex id to a compact slot, and all per-vertex state lives in
// slot-indexed arrays bounded by the DAG's maximum out-degree instead of
// |V(G)|. This collapses the thread-local footprint by orders of magnitude
// (the whole subgraph can fit in cache) at the cost of a hash lookup on
// every access — the paper measures that lookup at about 1.2x a direct
// array access, which is what motivates the remapped structure.
//
// Interface contract: see subgraph_dense.h.
#ifndef PIVOTSCALE_PIVOT_SUBGRAPH_SPARSE_H_
#define PIVOTSCALE_PIVOT_SUBGRAPH_SPARSE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "util/check.h"
#include "util/flat_hash.h"

namespace pivotscale {

class SparseSubgraph {
 public:
  using Id = std::uint32_t;
  static constexpr const char* kName = "sparse";

  void Attach(const Graph& dag);
  void Build(NodeId root);

  std::span<const Id> Vertices() const { return verts_; }

  std::span<Id> AdjPrefix(Id u) {
    const std::uint32_t s = Slot(u);
    return {rows_[s].data(), static_cast<std::size_t>(deg_[s])};
  }
  std::uint32_t Deg(Id u) const { return deg_[Slot(u)]; }
  void SetDeg(Id u, std::uint32_t d) { deg_[Slot(u)] = d; }

  void Mark(Id u) { flags_[Slot(u)] |= kMark; }
  void Unmark(Id u) { flags_[Slot(u)] &= ~kMark; }
  bool Marked(Id u) const { return (flags_[Slot(u)] & kMark) != 0; }

  void SetRemoved(Id u) { flags_[Slot(u)] |= kRemoved; }
  void ClearRemoved(Id u) { flags_[Slot(u)] &= ~kRemoved; }
  bool Removed(Id u) const { return (flags_[Slot(u)] & kRemoved) != 0; }

  NodeId OrigId(Id u) const { return u; }
  // Physical state is slot-indexed (compact), even though handles are
  // original ids — the modeled addresses must reflect the slots.
  Id ModelIndex(Id u) const { return Slot(u); }
  std::size_t IndexSpace() const { return rows_.size(); }
  std::size_t HeapBytes() const;

 private:
  static constexpr std::uint8_t kMark = 1;
  static constexpr std::uint8_t kRemoved = 2;

  // Every per-vertex access pays this lookup — the structure's defining
  // cost (~1.2x a direct array access with the flat table). Ids passed in
  // are always subgraph members, so Find never misses.
  std::uint32_t Slot(Id u) const {
    const std::uint32_t s = index_.Find(u);
    DCHECK_NE(s, FlatHashMap::kNotFound)
        << "SparseSubgraph: id is not a member of the current subgraph";
    return s;
  }

  const Graph* dag_ = nullptr;
  FlatHashMap index_;  // orig id -> slot
  std::vector<Id> verts_;                        // members (orig ids)
  std::vector<std::vector<Id>> rows_;            // slot-indexed; reused
  std::vector<std::uint32_t> deg_;               // slot-indexed
  std::vector<std::uint8_t> flags_;              // slot-indexed
};

}  // namespace pivotscale

#endif  // PIVOTSCALE_PIVOT_SUBGRAPH_SPARSE_H_
