#include "pivot/pivotscale.h"

#include <stdexcept>

#include "graph/dag.h"
#include "util/timer.h"

namespace pivotscale {

PivotScaleResult CountKCliques(const Graph& g,
                               const PivotScaleOptions& options) {
  if (!g.undirected())
    throw std::invalid_argument("CountKCliques: input must be undirected");

  PivotScaleResult result;
  PhaseTimer phases;
  phases.Start();

  OrderingSpec spec;
  if (options.forced_ordering.has_value()) {
    spec = *options.forced_ordering;
  } else {
    result.decision = SelectOrdering(g, options.heuristic);
    spec.kind = result.decision.use_core_approx ? OrderingKind::kApproxCore
                                                : OrderingKind::kDegree;
    spec.epsilon = options.heuristic.epsilon;
  }
  result.heuristic_seconds = phases.Stop("heuristic");

  const Ordering ordering = ComputeOrdering(g, spec);
  result.ordering_name = ordering.name;
  result.ordering_seconds = phases.Stop("ordering");

  const Graph dag = Directionalize(g, ordering.ranks);
  result.max_out_degree = MaxOutDegree(dag);
  result.directionalize_seconds = phases.Stop("directionalize");

  CountOptions count_options = options.count;
  count_options.k = options.k;
  count_options.mode =
      options.all_k ? CountMode::kAllK : CountMode::kSingleK;
  result.count = CountCliques(dag, count_options);
  result.counting_seconds = phases.Stop("counting");

  result.total = result.count.total;
  result.total_seconds = phases.TotalSeconds();
  return result;
}

BigCount CountKCliquesSimple(const Graph& g, std::uint32_t k) {
  PivotScaleOptions options;
  options.k = k;
  return CountKCliques(g, options).total;
}

}  // namespace pivotscale
