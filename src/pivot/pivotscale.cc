#include "pivot/pivotscale.h"

#include <stdexcept>

#include "graph/dag.h"
#include "util/telemetry.h"
#include "util/timer.h"

namespace pivotscale {

PivotScaleResult CountKCliques(const Graph& g,
                               const PivotScaleOptions& options) {
  if (!g.undirected())
    throw std::invalid_argument("CountKCliques: input must be undirected");

  TelemetryRegistry* telemetry = options.telemetry;
  PivotScaleResult result;
  PhaseTimer phases;
  phases.Start();

  OrderingSpec spec;
  if (options.forced_ordering.has_value()) {
    spec = *options.forced_ordering;
  } else {
    result.decision = SelectOrdering(g, options.heuristic, telemetry);
    spec.kind = result.decision.use_core_approx ? OrderingKind::kApproxCore
                                                : OrderingKind::kDegree;
    spec.epsilon = options.heuristic.epsilon;
  }
  result.heuristic_seconds = phases.Stop("heuristic");

  const Ordering ordering = ComputeOrdering(g, spec, telemetry);
  result.ordering_name = ordering.name;
  result.ordering_seconds = phases.Stop("ordering");

  const Graph dag = Directionalize(g, ordering.ranks, telemetry);
  result.max_out_degree = MaxOutDegree(dag);
  result.directionalize_seconds = phases.Stop("directionalize");

  CountOptions count_options = options.count;
  count_options.k = options.k;
  // Force kAllK only when asked for; otherwise the caller's mode (e.g.
  // kAllUpToK) flows through.
  if (options.all_k) count_options.mode = CountMode::kAllK;
  if (count_options.telemetry == nullptr)
    count_options.telemetry = telemetry;
  result.count = CountCliques(dag, count_options);
  result.counting_seconds = phases.Stop("counting");

  result.total = result.count.total;
  result.total_seconds = phases.TotalSeconds();

  if (telemetry != nullptr) {
    telemetry->RecordSpan("heuristic", result.heuristic_seconds);
    telemetry->RecordSpan("ordering", result.ordering_seconds);
    telemetry->RecordSpan("directionalize", result.directionalize_seconds);
    telemetry->RecordSpan("counting", result.counting_seconds);
    telemetry->SetGauge("pipeline.k", options.k);
    telemetry->SetGauge("pipeline.nodes", static_cast<double>(g.NumNodes()));
    telemetry->SetGauge("pipeline.undirected_edges",
                        static_cast<double>(g.NumUndirectedEdges()));
  }
  return result;
}

BigCount CountKCliquesSimple(const Graph& g, std::uint32_t k) {
  PivotScaleOptions options;
  options.k = k;
  return CountKCliques(g, options).total;
}

}  // namespace pivotscale
