#include "pivot/profile.h"

#include <algorithm>
#include <stdexcept>

#include "exec/executor.h"
#include "pivot/subgraph_remap.h"
#include "util/binomial.h"

namespace pivotscale {

CliqueProfile::CliqueProfile(
    std::vector<std::vector<std::uint64_t>> leaf_histogram)
    : hist_(std::move(leaf_histogram)) {
  for (std::size_t r = 0; r < hist_.size(); ++r)
    for (std::size_t np = 0; np < hist_[r].size(); ++np)
      if (hist_[r][np] > 0)
        max_r_plus_np_ = std::max(
            max_r_plus_np_, static_cast<std::uint32_t>(r + np));
}

BigCount CliqueProfile::CountK(std::uint32_t k) const {
  if (k == 0) return BigCount{};
  BinomialTable binom(max_r_plus_np_ + 1);
  BigCount total{};
  for (std::size_t r = 1; r < hist_.size(); ++r) {
    if (r > k) continue;
    const std::uint32_t need = k - static_cast<std::uint32_t>(r);
    for (std::size_t np = need; np < hist_[r].size(); ++np) {
      if (hist_[r][np] == 0) continue;
      total += BigCount{SatMul(binom.Choose(
                                   static_cast<std::uint32_t>(np), need),
                               static_cast<uint128>(hist_[r][np]))};
    }
  }
  return total;
}

std::vector<BigCount> CliqueProfile::PerSize() const {
  std::vector<BigCount> sizes(max_r_plus_np_ + 2, BigCount{});
  BinomialTable binom(max_r_plus_np_ + 1);
  for (std::size_t r = 1; r < hist_.size(); ++r)
    for (std::size_t np = 0; np < hist_[r].size(); ++np) {
      if (hist_[r][np] == 0) continue;
      const auto count = static_cast<uint128>(hist_[r][np]);
      for (std::size_t j = 0; j <= np; ++j)
        sizes[r + j] +=
            BigCount{SatMul(binom.Choose(static_cast<std::uint32_t>(np),
                                         static_cast<std::uint32_t>(j)),
                            count)};
    }
  return sizes;
}

std::uint32_t CliqueProfile::MaxCliqueSize() const {
  return max_r_plus_np_;
}

std::uint64_t CliqueProfile::TotalLeaves() const {
  std::uint64_t total = 0;
  for (const auto& row : hist_)
    for (std::uint64_t c : row) total += c;
  return total;
}

namespace {

// A second, independent client of the remap subgraph interface: the same
// pivoting recursion as PivotCounter but recording leaf signatures instead
// of aggregating binomials. Its PerSize() agreeing with the production
// counter's kAllK output is itself a strong cross-check (tested).
class ProfileRecorder {
 public:
  ProfileRecorder(const Graph& dag, std::uint32_t bound) : bound_(bound) {
    sg_.Attach(dag);
  }

  void ProcessRoot(NodeId root,
                   std::vector<std::vector<std::uint64_t>>* hist) {
    sg_.Build(root);
    const auto verts = sg_.Vertices();
    if (bufs_.size() < verts.size() + 2) {
      bufs_.resize(verts.size() + 2);
      branch_bufs_.resize(verts.size() + 2);
    }
    hist_ = hist;
    bufs_[0].assign(verts.begin(), verts.end());
    Recurse(bufs_[0], 1, 0, 0);
  }

 private:
  using Id = RemapSubgraph::Id;

  void Recurse(std::span<const Id> candidates, std::uint32_t r,
               std::uint32_t np, std::uint32_t depth) {
    if (candidates.empty()) {
      ++(*hist_)[std::min(r, bound_)][std::min(np, bound_)];
      return;
    }

    Id pivot = candidates[0];
    std::uint32_t pivot_deg = sg_.Deg(pivot);
    for (Id u : candidates) {
      if (sg_.Deg(u) > pivot_deg) {
        pivot = u;
        pivot_deg = sg_.Deg(u);
      }
    }

    auto& branches = branch_bufs_[depth];
    branches.clear();
    branches.push_back(pivot);
    for (Id v : sg_.AdjPrefix(pivot)) sg_.Mark(v);
    for (Id u : candidates)
      if (u != pivot && !sg_.Marked(u)) branches.push_back(u);
    for (Id v : sg_.AdjPrefix(pivot)) sg_.Unmark(v);

    for (Id w : branches) {
      const bool is_pivot_branch = (w == pivot);
      auto& child = bufs_[depth + 1];
      child.clear();
      for (Id v : sg_.AdjPrefix(w))
        if (!sg_.Removed(v)) child.push_back(v);

      const std::size_t undo_top = undo_.size();
      for (Id v : child) sg_.Mark(v);
      for (Id v : child) {
        auto adj = sg_.AdjPrefix(v);
        std::uint32_t kept = 0;
        for (std::uint32_t i = 0;
             i < static_cast<std::uint32_t>(adj.size()); ++i)
          if (sg_.Marked(adj[i])) std::swap(adj[kept++], adj[i]);
        undo_.push_back({v, sg_.Deg(v)});
        sg_.SetDeg(v, kept);
      }
      for (Id v : child) sg_.Unmark(v);

      Recurse(child, r + (is_pivot_branch ? 0 : 1),
              np + (is_pivot_branch ? 1 : 0), depth + 1);

      while (undo_.size() > undo_top) {
        const auto [vertex, old_deg] = undo_.back();
        undo_.pop_back();
        sg_.SetDeg(vertex, old_deg);
      }
      sg_.SetRemoved(w);
    }
    for (Id w : branches) sg_.ClearRemoved(w);
  }

  RemapSubgraph sg_;
  std::uint32_t bound_;
  std::vector<std::vector<std::uint64_t>>* hist_ = nullptr;
  std::vector<std::pair<Id, std::uint32_t>> undo_;
  std::vector<std::vector<Id>> bufs_;
  std::vector<std::vector<Id>> branch_bufs_;
};

}  // namespace

CliqueProfile ComputeCliqueProfile(const Graph& dag, int num_threads) {
  if (dag.undirected())
    throw std::invalid_argument(
        "ComputeCliqueProfile: expected a directionalized DAG");
  const NodeId n = dag.NumNodes();
  const std::uint32_t bound = static_cast<std::uint32_t>(dag.MaxDegree()) + 1;
  std::vector<std::vector<std::uint64_t>> hist(
      bound + 1, std::vector<std::uint64_t>(bound + 1, 0));

  // Per-worker reduction slot: the recorder plus its private 2-D leaf
  // histogram, merged serially after the region.
  struct Worker {
    Worker(const Graph& graph, std::uint32_t clique_bound)
        : recorder(graph, clique_bound),
          local(clique_bound + 1,
                std::vector<std::uint64_t>(clique_bound + 1, 0)) {}
    ProfileRecorder recorder;
    std::vector<std::vector<std::uint64_t>> local;
  };

  ExecOptions exec_options;
  exec_options.num_threads = num_threads;
  exec_options.cost = [&dag](std::size_t v) {
    return static_cast<double>(dag.Degree(static_cast<NodeId>(v)) + 1);
  };
  ParallelForWorkers(
      n, exec_options, [&](int) { return Worker(dag, bound); },
      [](Worker& w, std::size_t v) {
        w.recorder.ProcessRoot(static_cast<NodeId>(v), &w.local);
      },
      [&hist, bound](Worker& w) {
        for (std::size_t r = 0; r <= bound; ++r)
          for (std::size_t np = 0; np <= bound; ++np)
            hist[r][np] += w.local[r][np];
      });
  return CliqueProfile(std::move(hist));
}

}  // namespace pivotscale
