#include "pivot/hybrid.h"

#include "baselines/enumeration.h"
#include "graph/dag.h"
#include "order/core_order.h"
#include "pivot/pivotscale.h"
#include "util/timer.h"

namespace pivotscale {

HybridResult CountKCliquesHybrid(const Graph& g, std::uint32_t k,
                                 const HybridConfig& config) {
  Timer timer;
  HybridResult result;
  result.used_pivoting = k >= config.pivot_threshold;

  if (result.used_pivoting) {
    PivotScaleOptions options;
    options.k = k;
    options.heuristic = config.heuristic;
    options.count.num_threads = config.num_threads;
    const PivotScaleResult ps = CountKCliques(g, options);
    result.total = ps.total;
    result.strategy = "pivotscale(" + ps.ordering_name + ")";
  } else {
    // Enumeration path: the core ordering minimizes the out-degree bound
    // that drives enumeration's per-level candidate sizes (kclist-style).
    const Ordering core = CoreOrdering(g);
    const Graph dag = Directionalize(g, core.ranks);
    EnumerationOptions options;
    options.k = k;
    options.num_threads = config.num_threads;
    result.total = CountCliquesEnumeration(dag, options).total;
    result.strategy = "enumeration(core)";
  }
  result.seconds = timer.Seconds();
  return result;
}

}  // namespace pivotscale
