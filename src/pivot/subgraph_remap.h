// Remapped induced-subgraph structure (PivotScale (remap), Figure 4C) —
// the default and fastest structure.
//
// At the first recursion level the members of the induced subgraph are
// remapped to the compact id range [0, d(root)); all deeper levels reuse the
// new ids. Per-vertex state is then held in small dense arrays — the direct
// indexing of the dense structure with the footprint of the sparse one. The
// hash map is paid exactly once per root (during Build) rather than on every
// access (Section V-B).
//
// Interface contract: see subgraph_dense.h. Handles here are *local* ids;
// OrigId translates back for per-vertex attribution.
#ifndef PIVOTSCALE_PIVOT_SUBGRAPH_REMAP_H_
#define PIVOTSCALE_PIVOT_SUBGRAPH_REMAP_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "util/check.h"
#include "util/flat_hash.h"

namespace pivotscale {

class RemapSubgraph {
 public:
  using Id = std::uint32_t;
  static constexpr const char* kName = "remap";

  void Attach(const Graph& dag);
  void Build(NodeId root);
  // Edge-parallel variant: induces the subgraph on N+(u) ∩ N+(v) — the
  // candidate pool of cliques whose two lowest-ranked members are (u, v).
  void BuildPair(NodeId u, NodeId v);

  std::span<const Id> Vertices() const { return verts_; }

  std::span<Id> AdjPrefix(Id u) {
    DCHECK_LT(u, verts_.size());
    return {rows_[u].data(), static_cast<std::size_t>(deg_[u])};
  }
  std::uint32_t Deg(Id u) const {
    DCHECK_LT(u, verts_.size());
    return deg_[u];
  }
  void SetDeg(Id u, std::uint32_t d) { deg_[u] = d; }

  void Mark(Id u) { flags_[u] |= kMark; }
  void Unmark(Id u) { flags_[u] &= ~kMark; }
  bool Marked(Id u) const { return (flags_[u] & kMark) != 0; }

  void SetRemoved(Id u) { flags_[u] |= kRemoved; }
  void ClearRemoved(Id u) { flags_[u] &= ~kRemoved; }
  bool Removed(Id u) const { return (flags_[u] & kRemoved) != 0; }

  NodeId OrigId(Id u) const { return orig_[u]; }
  // Handles already are the compact physical indices.
  Id ModelIndex(Id u) const { return u; }
  std::size_t IndexSpace() const { return verts_.size(); }
  std::size_t HeapBytes() const;

 private:
  static constexpr std::uint8_t kMark = 1;
  static constexpr std::uint8_t kRemoved = 2;

  // Shared tail of Build/BuildPair: orig_ holds the member list; builds
  // the remap, local-id adjacency, degrees, and flags.
  void FinishBuild();

  const Graph* dag_ = nullptr;
  FlatHashMap remap_;  // used during Build only
  std::vector<Id> verts_;                 // local ids 0..n-1
  std::vector<NodeId> orig_;              // local -> original id
  std::vector<std::vector<Id>> rows_;     // local-id adjacency; reused
  std::vector<std::uint32_t> deg_;
  std::vector<std::uint8_t> flags_;
};

}  // namespace pivotscale

#endif  // PIVOTSCALE_PIVOT_SUBGRAPH_REMAP_H_
