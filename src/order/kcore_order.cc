#include "order/kcore_order.h"

#include <omp.h>

namespace pivotscale {

std::vector<EdgeId> CoreDecomposition(const Graph& g, int* rounds_out) {
  const NodeId n = g.NumNodes();
  std::vector<std::int64_t> degree(n);
#pragma omp parallel for schedule(static)
  for (NodeId u = 0; u < n; ++u)
    degree[u] = static_cast<std::int64_t>(g.Degree(u));

  std::vector<EdgeId> coreness(n, 0);
  std::vector<std::uint8_t> alive(n, 1);
  std::vector<NodeId> frontier, next_frontier;

  NodeId removed_total = 0;
  std::int64_t level = 0;
  int rounds = 0;
  while (removed_total < n) {
    // Collect everything peelable at this level, then cascade within the
    // level (removing a degree-<=level vertex can push neighbors below the
    // threshold in the same level) — the PKC processing structure.
    frontier.clear();
#pragma omp parallel
    {
      std::vector<NodeId> local;
#pragma omp for schedule(static) nowait
      for (NodeId u = 0; u < n; ++u)
        if (alive[u] && degree[u] <= level) local.push_back(u);
#pragma omp critical(kcore_merge)
      frontier.insert(frontier.end(), local.begin(), local.end());
    }

    ++rounds;  // the level-collection pass
    while (!frontier.empty()) {
      ++rounds;  // each cascade pass synchronizes
      for (NodeId u : frontier) {
        alive[u] = 0;
        coreness[u] = static_cast<EdgeId>(level);
      }
      removed_total += static_cast<NodeId>(frontier.size());

      next_frontier.clear();
#pragma omp parallel
      {
        std::vector<NodeId> local;
#pragma omp for schedule(dynamic, 64) nowait
        for (std::size_t i = 0; i < frontier.size(); ++i) {
          for (NodeId v : g.Neighbors(frontier[i])) {
            if (!alive[v]) continue;
            std::int64_t after;
#pragma omp atomic capture
            after = --degree[v];
            // Exactly the decrement that lands on `level` crosses the
            // peelable threshold, so each vertex enqueues once.
            if (after == level) local.push_back(v);
          }
        }
#pragma omp critical(kcore_merge)
        next_frontier.insert(next_frontier.end(), local.begin(),
                             local.end());
      }
      std::swap(frontier, next_frontier);
    }
    ++level;
  }
  if (rounds_out != nullptr) *rounds_out = rounds;
  return coreness;
}

Ordering KCoreOrdering(const Graph& g, int* rounds_out) {
  const NodeId n = g.NumNodes();
  const std::vector<EdgeId> coreness = CoreDecomposition(g, rounds_out);
  std::vector<std::uint64_t> keys(n);
#pragma omp parallel for schedule(static)
  for (NodeId u = 0; u < n; ++u)
    keys[u] = PackKey(coreness[u], g.Degree(u));
  return {"kcore", RanksFromKeys(keys)};
}

}  // namespace pivotscale
