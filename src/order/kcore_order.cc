#include "order/kcore_order.h"

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "exec/executor.h"

namespace pivotscale {

namespace {

// Frontier collection: every worker gathers candidates into a private
// vector (its reduction slot); the merge concatenates in worker order, so
// the frontier layout is deterministic for a fixed team size.
template <typename Keep>
void CollectFrontier(std::size_t n, std::vector<NodeId>* frontier,
                     Keep&& keep) {
  ExecOptions exec_options;
  ParallelForWorkers(
      n, exec_options, [](int) { return std::vector<NodeId>(); },
      [&keep](std::vector<NodeId>& local, std::size_t i) {
        if (NodeId v; keep(i, &v)) local.push_back(v);
      },
      [frontier](std::vector<NodeId>& local) {
        frontier->insert(frontier->end(), local.begin(), local.end());
      });
}

}  // namespace

std::vector<EdgeId> CoreDecomposition(const Graph& g, int* rounds_out) {
  const NodeId n = g.NumNodes();
  std::vector<std::int64_t> degree(n);
  ParallelFor(n, ExecOptions{}, [&](std::size_t u) {
    degree[u] = static_cast<std::int64_t>(g.Degree(static_cast<NodeId>(u)));
  });

  std::vector<EdgeId> coreness(n, 0);
  std::vector<std::uint8_t> alive(n, 1);
  std::vector<NodeId> frontier, next_frontier;

  NodeId removed_total = 0;
  std::int64_t level = 0;
  int rounds = 0;
  while (removed_total < n) {
    // Collect everything peelable at this level, then cascade within the
    // level (removing a degree-<=level vertex can push neighbors below the
    // threshold in the same level) — the PKC processing structure.
    frontier.clear();
    CollectFrontier(n, &frontier, [&](std::size_t i, NodeId* out) {
      const auto u = static_cast<NodeId>(i);
      *out = u;
      return alive[u] != 0 && degree[u] <= level;
    });

    ++rounds;  // the level-collection pass
    while (!frontier.empty()) {
      ++rounds;  // each cascade pass synchronizes
      for (NodeId u : frontier) {
        alive[u] = 0;
        coreness[u] = static_cast<EdgeId>(level);
      }
      removed_total += static_cast<NodeId>(frontier.size());

      next_frontier.clear();
      ExecOptions cascade_options;
      cascade_options.grain = 64;
      ParallelForWorkers(
          frontier.size(), cascade_options,
          [](int) { return std::vector<NodeId>(); },
          [&](std::vector<NodeId>& local, std::size_t i) {
            for (NodeId v : g.Neighbors(frontier[i])) {
              if (!alive[v]) continue;
              // Two frontier vertices can share the neighbor, hence the
              // atomic decrement. Exactly the decrement that lands on
              // `level` crosses the peelable threshold, so each vertex
              // enqueues once.
              const std::int64_t after =
                  std::atomic_ref<std::int64_t>(degree[v])
                      .fetch_sub(1, std::memory_order_relaxed) -
                  1;
              if (after == level) local.push_back(v);
            }
          },
          [&next_frontier](std::vector<NodeId>& local) {
            next_frontier.insert(next_frontier.end(), local.begin(),
                                 local.end());
          });
      std::swap(frontier, next_frontier);
    }
    ++level;
  }
  if (rounds_out != nullptr) *rounds_out = rounds;
  return coreness;
}

Ordering KCoreOrdering(const Graph& g, int* rounds_out) {
  const NodeId n = g.NumNodes();
  const std::vector<EdgeId> coreness = CoreDecomposition(g, rounds_out);
  std::vector<std::uint64_t> keys(n);
  ParallelFor(n, ExecOptions{}, [&](std::size_t i) {
    const auto u = static_cast<NodeId>(i);
    keys[u] = PackKey(coreness[u], g.Degree(u));
  });
  return {"kcore", RanksFromKeys(keys)};
}

}  // namespace pivotscale
