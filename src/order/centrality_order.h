// Eigenvector-centrality ordering (Section III-C).
//
// The insight behind this ordering: the core ordering effectively ranks by
// *importance* (it considers neighbors' degrees, not just a vertex's own),
// and importance can be approximated fast. A few unnormalized power
// iterations of eigenvector centrality — each just sums neighbor scores —
// rank "important" vertices last, producing a maximum out-degree between
// core's and degree's with only `iterations` parallel passes.
#ifndef PIVOTSCALE_ORDER_CENTRALITY_ORDER_H_
#define PIVOTSCALE_ORDER_CENTRALITY_ORDER_H_

#include "graph/graph.h"
#include "order/ordering.h"

namespace pivotscale {

// `iterations` power iterations (the paper uses 3). Scores are rescaled by
// the maximum each iteration purely to avoid floating-point overflow; no
// PageRank-style normalization is needed.
Ordering CentralityOrdering(const Graph& g, int iterations = 3);

}  // namespace pivotscale

#endif  // PIVOTSCALE_ORDER_CENTRALITY_ORDER_H_
