#include "order/ordering.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "order/approx_core_order.h"
#include "order/centrality_order.h"
#include "order/core_order.h"
#include "order/degree_order.h"
#include "order/kcore_order.h"
#include "util/telemetry.h"

namespace pivotscale {

std::vector<NodeId> RanksFromKeys(std::span<const std::uint64_t> keys) {
  const std::size_t n = keys.size();
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    if (keys[a] != keys[b]) return keys[a] < keys[b];
    return a < b;
  });
  std::vector<NodeId> ranks(n);
  for (std::size_t pos = 0; pos < n; ++pos)
    ranks[order[pos]] = static_cast<NodeId>(pos);
  return ranks;
}

std::uint64_t PackKey(std::uint64_t primary, std::uint64_t degree) {
  constexpr std::uint64_t kDegreeBits = 40;
  constexpr std::uint64_t kDegreeMask = (std::uint64_t{1} << kDegreeBits) - 1;
  constexpr std::uint64_t kPrimaryMax =
      (std::uint64_t{1} << (64 - kDegreeBits)) - 1;
  const std::uint64_t p = std::min(primary, kPrimaryMax);
  const std::uint64_t d = std::min(degree, kDegreeMask);
  return (p << kDegreeBits) | d;
}

Ordering ComputeOrdering(const Graph& g, const OrderingSpec& spec,
                         TelemetryRegistry* telemetry) {
  const auto record_rounds = [telemetry](int rounds) {
    if (telemetry != nullptr)
      telemetry->SetGauge("ordering.rounds", rounds);
  };
  switch (spec.kind) {
    case OrderingKind::kDegree:
      record_rounds(1);
      return DegreeOrdering(g);
    case OrderingKind::kCore:
      record_rounds(-1);  // inherently serial peel
      return CoreOrdering(g);
    case OrderingKind::kApproxCore: {
      ApproxCoreResult result = ApproxCoreOrderingWithStats(g, spec.epsilon);
      record_rounds(result.rounds);
      return std::move(result.ordering);
    }
    case OrderingKind::kKCore: {
      int rounds = 0;
      Ordering ordering = KCoreOrdering(g, &rounds);
      record_rounds(rounds);
      return ordering;
    }
    case OrderingKind::kCentrality:
      record_rounds(spec.iterations);
      return CentralityOrdering(g, spec.iterations);
  }
  throw std::invalid_argument("ComputeOrdering: unknown kind");
}

std::string OrderingSpecName(const OrderingSpec& spec) {
  switch (spec.kind) {
    case OrderingKind::kDegree:
      return "degree";
    case OrderingKind::kCore:
      return "core";
    case OrderingKind::kApproxCore:
      return "approx-core(eps=" + std::to_string(spec.epsilon) + ")";
    case OrderingKind::kKCore:
      return "kcore";
    case OrderingKind::kCentrality:
      return "centrality(iters=" + std::to_string(spec.iterations) + ")";
  }
  return "unknown";
}

}  // namespace pivotscale
