// Parallel k-core decomposition ordering (Section III-B).
//
// The k-core decomposition assigns each vertex its coreness: the largest k
// such that the vertex survives in the k-core. A level-synchronous parallel
// peel (in the style of ParK/PKC) computes coreness in rounds; the ordering
// ranks by (coreness, original degree, id) — the same tiebreak as the core
// approximation. Because many vertices share a coreness, this ordering has
// fewer distinct levels than a low-eps core approximation, which is why the
// paper finds it consistently lower quality (Figure 5).
#ifndef PIVOTSCALE_ORDER_KCORE_ORDER_H_
#define PIVOTSCALE_ORDER_KCORE_ORDER_H_

#include <vector>

#include "graph/graph.h"
#include "order/ordering.h"

namespace pivotscale {

// Per-vertex coreness via level-synchronous parallel peel. If
// `rounds_out` is non-null it receives the number of synchronized
// sub-rounds executed (the scaling-relevant quantity: each sub-round is a
// parallel pass followed by a barrier).
std::vector<EdgeId> CoreDecomposition(const Graph& g,
                                      int* rounds_out = nullptr);

// Ranks by (coreness, original degree, id). If `rounds_out` is non-null it
// receives the decomposition's synchronized sub-round count.
Ordering KCoreOrdering(const Graph& g, int* rounds_out = nullptr);

}  // namespace pivotscale

#endif  // PIVOTSCALE_ORDER_KCORE_ORDER_H_
