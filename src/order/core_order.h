// Exact core (degeneracy) ordering — Matula-Beck smallest-last peel.
//
// Repeatedly removing a minimum-degree vertex yields the degeneracy order,
// which provably minimizes the maximum out-degree of the directionalized
// DAG (the peel position of a vertex bounds its out-degree by the
// degeneracy). This is the ordering the original Pivoter uses; it is
// inherently sequential, which is exactly the scalability problem
// Section III addresses.
#ifndef PIVOTSCALE_ORDER_CORE_ORDER_H_
#define PIVOTSCALE_ORDER_CORE_ORDER_H_

#include "graph/graph.h"
#include "order/ordering.h"

namespace pivotscale {

// O(V + E) bucket-queue peel. ranks[u] = peel position.
Ordering CoreOrdering(const Graph& g);

// The graph's degeneracy (largest minimum degree over the peel; equals the
// maximum out-degree the core ordering produces).
EdgeId Degeneracy(const Graph& g);

}  // namespace pivotscale

#endif  // PIVOTSCALE_ORDER_CORE_ORDER_H_
