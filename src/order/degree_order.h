// Degree ordering (Section II-A): rank vertices by (degree, id) ascending.
//
// The cheapest useful ordering — one parallel pass over the degree array —
// and the paper's finding is that on clique-poor graphs its locality
// advantage makes it the fastest *overall* choice despite a worse maximum
// out-degree.
#ifndef PIVOTSCALE_ORDER_DEGREE_ORDER_H_
#define PIVOTSCALE_ORDER_DEGREE_ORDER_H_

#include "graph/graph.h"
#include "order/ordering.h"

namespace pivotscale {

Ordering DegreeOrdering(const Graph& g);

}  // namespace pivotscale

#endif  // PIVOTSCALE_ORDER_DEGREE_ORDER_H_
