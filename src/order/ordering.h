// Ordering types shared by all ordering implementations.
//
// An ordering is a rank permutation: ranks[u] is u's position in the total
// order, and directionalization keeps edge u -> v iff ranks[u] < ranks[v].
// Every ordering here breaks ties the same way the paper does: primary key
// first, then original degree, then vertex id — so all orderings are total.
#ifndef PIVOTSCALE_ORDER_ORDERING_H_
#define PIVOTSCALE_ORDER_ORDERING_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace pivotscale {

class TelemetryRegistry;

// A computed total order over the vertices of one graph.
struct Ordering {
  std::string name;            // e.g. "core", "approx-core(eps=-0.5)"
  std::vector<NodeId> ranks;   // permutation: ranks[u] in [0, n)
};

// Ranks vertices ascending by (key[u], u). Keys need not be distinct;
// the id tiebreak makes the result a permutation.
std::vector<NodeId> RanksFromKeys(std::span<const std::uint64_t> keys);

// Packs (primary, degree) into one sortable 64-bit key: primary in the high
// 24 bits (clamped), degree in the low 40 (clamped). Used by orderings whose
// tiebreak is "original degree, then id".
std::uint64_t PackKey(std::uint64_t primary, std::uint64_t degree);

// The ordering families evaluated in the paper.
enum class OrderingKind {
  kDegree,      // parallel degree ordering (Section II-A)
  kCore,        // exact sequential core/degeneracy ordering
  kApproxCore,  // parallel core approximation, Algorithm 2 (Section III-A)
  kKCore,       // parallel k-core decomposition ordering (Section III-B)
  kCentrality,  // eigenvector-centrality ordering (Section III-C)
};

// Parameters for ComputeOrdering; epsilon only applies to kApproxCore and
// iterations only to kCentrality.
struct OrderingSpec {
  OrderingKind kind = OrderingKind::kCore;
  double epsilon = -0.5;
  int iterations = 3;
};

// Dispatches to the matching implementation. Convenient for benches that
// sweep ordering families. When `telemetry` is non-null, records the
// "ordering.rounds" gauge (synchronized peel rounds for the round-based
// orderings, iterations for centrality, 1 for degree, -1 for the
// inherently serial exact core peel).
Ordering ComputeOrdering(const Graph& g, const OrderingSpec& spec,
                         TelemetryRegistry* telemetry = nullptr);

// Human-readable name for a spec (matches Ordering::name).
std::string OrderingSpecName(const OrderingSpec& spec);

}  // namespace pivotscale

#endif  // PIVOTSCALE_ORDER_ORDERING_H_
