#include "order/degree_order.h"

#include <omp.h>

namespace pivotscale {

Ordering DegreeOrdering(const Graph& g) {
  const NodeId n = g.NumNodes();
  std::vector<std::uint64_t> keys(n);
#pragma omp parallel for schedule(static)
  for (NodeId u = 0; u < n; ++u) keys[u] = g.Degree(u);
  return {"degree", RanksFromKeys(keys)};
}

}  // namespace pivotscale
