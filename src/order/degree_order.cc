#include "order/degree_order.h"

#include "exec/executor.h"

namespace pivotscale {

Ordering DegreeOrdering(const Graph& g) {
  const NodeId n = g.NumNodes();
  std::vector<std::uint64_t> keys(n);
  ParallelFor(n, ExecOptions{}, [&](std::size_t u) {
    keys[u] = g.Degree(static_cast<NodeId>(u));
  });
  return {"degree", RanksFromKeys(keys)};
}

}  // namespace pivotscale
