#include "order/heuristic.h"

#include <algorithm>

#include "exec/executor.h"
#include "util/telemetry.h"
#include "util/timer.h"

namespace pivotscale {

namespace {

// Size of the sorted-list intersection of two neighborhoods.
EdgeId CountCommonNeighbors(const Graph& g, NodeId u, NodeId v) {
  const auto nu = g.Neighbors(u);
  const auto nv = g.Neighbors(v);
  EdgeId common = 0;
  std::size_t i = 0, j = 0;
  while (i < nu.size() && j < nv.size()) {
    if (nu[i] < nv[j]) {
      ++i;
    } else if (nu[i] > nv[j]) {
      ++j;
    } else {
      ++common;
      ++i;
      ++j;
    }
  }
  return common;
}

// Reduction state for the parallel degree argmax: highest degree wins,
// lowest id breaks ties. `valid` distinguishes the identity element so the
// reduction is well-defined on any vertex subset.
struct DegreeArgMax {
  EdgeId degree = 0;
  NodeId id = 0;
  bool valid = false;
};

DegreeArgMax CombineArgMax(const DegreeArgMax& a, const DegreeArgMax& b) {
  if (!a.valid) return b;
  if (!b.valid) return a;
  if (b.degree > a.degree || (b.degree == a.degree && b.id < a.id)) return b;
  return a;
}

}  // namespace

HeuristicDecision SelectOrdering(const Graph& g,
                                 const HeuristicConfig& config,
                                 TelemetryRegistry* telemetry) {
  Timer timer;
  HeuristicDecision d;
  const NodeId n = g.NumNodes();
  if (n == 0) {
    d.seconds = timer.Seconds();
    return d;
  }

  // Probe 1: the highest-degree vertex (parallel max with id tiebreak).
  // CombineArgMax is associative and commutative, so the partition into
  // per-worker partials cannot change the winner.
  const DegreeArgMax best = ParallelReduce(
      n, ExecOptions{}, DegreeArgMax{},
      [&g](DegreeArgMax& acc, std::size_t i) {
        const auto u = static_cast<NodeId>(i);
        acc = CombineArgMax(acc, {g.Degree(u), u, true});
      },
      [](DegreeArgMax& into, const DegreeArgMax& from) {
        into = CombineArgMax(into, from);
      });
  d.max_degree_vertex = best.id;
  d.max_degree = best.degree;

  // Probe 2: its highest-degree neighbor (the paper's `a`).
  NodeId best_neighbor = best.id;
  EdgeId a = 0;
  for (NodeId v : g.Neighbors(best.id)) {
    const EdgeId deg = g.Degree(v);
    if (deg > a) {
      a = deg;
      best_neighbor = v;
    }
  }
  d.a = a;
  d.a_ratio = static_cast<double>(a) / static_cast<double>(n);

  // Probe 3: common-neighbor fraction between the pair, normalized by the
  // smaller neighborhood so a fully nested neighborhood scores 1.0.
  if (best_neighbor != best.id) {
    const EdgeId common = CountCommonNeighbors(g, best.id, best_neighbor);
    const EdgeId denom =
        std::min(g.Degree(best.id), g.Degree(best_neighbor));
    d.common_fraction =
        denom == 0 ? 0 : static_cast<double>(common) /
                             static_cast<double>(denom);
  }

  d.use_core_approx =
      n > config.min_nodes &&
      (d.a_ratio >= config.a_ratio_threshold ||
       d.common_fraction > config.common_fraction_threshold);
  d.seconds = timer.Seconds();

  if (telemetry != nullptr) {
    telemetry->SetGauge("heuristic.max_degree",
                        static_cast<double>(d.max_degree));
    telemetry->SetGauge("heuristic.a", static_cast<double>(d.a));
    telemetry->SetGauge("heuristic.a_ratio", d.a_ratio);
    telemetry->SetGauge("heuristic.common_fraction", d.common_fraction);
    telemetry->SetGauge("heuristic.use_core_approx",
                        d.use_core_approx ? 1 : 0);
  }
  return d;
}

}  // namespace pivotscale
