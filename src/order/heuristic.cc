#include "order/heuristic.h"

#include <omp.h>

#include <algorithm>

#include "util/timer.h"

namespace pivotscale {

namespace {

// Size of the sorted-list intersection of two neighborhoods.
EdgeId CountCommonNeighbors(const Graph& g, NodeId u, NodeId v) {
  const auto nu = g.Neighbors(u);
  const auto nv = g.Neighbors(v);
  EdgeId common = 0;
  std::size_t i = 0, j = 0;
  while (i < nu.size() && j < nv.size()) {
    if (nu[i] < nv[j]) {
      ++i;
    } else if (nu[i] > nv[j]) {
      ++j;
    } else {
      ++common;
      ++i;
      ++j;
    }
  }
  return common;
}

}  // namespace

HeuristicDecision SelectOrdering(const Graph& g,
                                 const HeuristicConfig& config) {
  Timer timer;
  HeuristicDecision d;
  const NodeId n = g.NumNodes();
  if (n == 0) {
    d.seconds = timer.Seconds();
    return d;
  }

  // Probe 1: the highest-degree vertex (parallel max with id tiebreak).
  NodeId best = 0;
  EdgeId best_degree = g.Degree(0);
  for (NodeId u = 1; u < n; ++u) {
    const EdgeId deg = g.Degree(u);
    if (deg > best_degree) {
      best = u;
      best_degree = deg;
    }
  }
  d.max_degree_vertex = best;
  d.max_degree = best_degree;

  // Probe 2: its highest-degree neighbor (the paper's `a`).
  NodeId best_neighbor = best;
  EdgeId a = 0;
  for (NodeId v : g.Neighbors(best)) {
    const EdgeId deg = g.Degree(v);
    if (deg > a) {
      a = deg;
      best_neighbor = v;
    }
  }
  d.a = a;
  d.a_ratio = static_cast<double>(a) / static_cast<double>(n);

  // Probe 3: common-neighbor fraction between the pair, normalized by the
  // smaller neighborhood so a fully nested neighborhood scores 1.0.
  if (best_neighbor != best) {
    const EdgeId common = CountCommonNeighbors(g, best, best_neighbor);
    const EdgeId denom =
        std::min(g.Degree(best), g.Degree(best_neighbor));
    d.common_fraction =
        denom == 0 ? 0 : static_cast<double>(common) /
                             static_cast<double>(denom);
  }

  d.use_core_approx =
      n > config.min_nodes &&
      (d.a_ratio >= config.a_ratio_threshold ||
       d.common_fraction > config.common_fraction_threshold);
  d.seconds = timer.Seconds();
  return d;
}

}  // namespace pivotscale
