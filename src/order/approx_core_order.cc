#include "order/approx_core_order.h"

#include <omp.h>

#include <limits>
#include <vector>

namespace pivotscale {

ApproxCoreResult ApproxCoreOrderingWithStats(const Graph& g,
                                             double epsilon) {
  const NodeId n = g.NumNodes();
  std::vector<std::int64_t> degree(n);
  std::vector<std::uint32_t> level(n, 0);
  std::vector<std::uint8_t> alive(n, 1);

  std::int64_t remaining_nodes = n;
  std::int64_t remaining_degree_sum = 0;
#pragma omp parallel for schedule(static) reduction(+ : remaining_degree_sum)
  for (NodeId u = 0; u < n; ++u) {
    degree[u] = static_cast<std::int64_t>(g.Degree(u));
    remaining_degree_sum += degree[u];
  }

  std::vector<NodeId> remove;
  remove.reserve(n);
  int round = 0;
  while (remaining_nodes > 0) {
    const double avg = static_cast<double>(remaining_degree_sum) /
                       static_cast<double>(remaining_nodes);
    const double threshold = (1.0 + epsilon) * avg;

    remove.clear();
    // Selection pass. Parallel with a thread-local collect + merge; on one
    // core this is a plain loop, but the structure mirrors the algorithm.
#pragma omp parallel
    {
      std::vector<NodeId> local;
#pragma omp for schedule(static) nowait
      for (NodeId u = 0; u < n; ++u) {
        if (alive[u] &&
            static_cast<double>(degree[u]) < threshold)
          local.push_back(u);
      }
#pragma omp critical(approx_core_merge)
      remove.insert(remove.end(), local.begin(), local.end());
    }

    // Progress guarantee: with eps < 0 the threshold can fall below the
    // minimum remaining degree (e.g. on regular graphs). Fall back to
    // removing all minimum-degree vertices, which is still a bulk peel.
    if (remove.empty()) {
      std::int64_t min_degree = std::numeric_limits<std::int64_t>::max();
#pragma omp parallel for schedule(static) reduction(min : min_degree)
      for (NodeId u = 0; u < n; ++u)
        if (alive[u]) min_degree = std::min(min_degree, degree[u]);
#pragma omp parallel
      {
        std::vector<NodeId> local;
#pragma omp for schedule(static) nowait
        for (NodeId u = 0; u < n; ++u)
          if (alive[u] && degree[u] == min_degree) local.push_back(u);
#pragma omp critical(approx_core_merge)
        remove.insert(remove.end(), local.begin(), local.end());
      }
    }

    // Removal pass: assign the round as the rank level, then update degrees
    // of surviving neighbors. The degree updates use atomics because two
    // removed vertices can share a surviving neighbor.
    for (NodeId u : remove) {
      level[u] = static_cast<std::uint32_t>(round);
      alive[u] = 0;
    }
    // Degree-sum bookkeeping: removing R drops sum(deg(u) for u in R) plus
    // one decrement per R-survivor edge (R-R edges are fully covered by the
    // first term since both endpoints contribute).
    std::int64_t removed_degree = 0;
    std::int64_t survivor_decrements = 0;
#pragma omp parallel for schedule(dynamic, 64) \
    reduction(+ : removed_degree, survivor_decrements)
    for (std::size_t i = 0; i < remove.size(); ++i) {
      const NodeId u = remove[i];
      removed_degree += degree[u];
      for (NodeId v : g.Neighbors(u)) {
        if (!alive[v]) continue;
#pragma omp atomic
        --degree[v];
        ++survivor_decrements;
      }
    }
    remaining_degree_sum -= removed_degree + survivor_decrements;
    remaining_nodes -= static_cast<std::int64_t>(remove.size());
    ++round;
  }

  // Composite rank key: (round, original degree, id) — the tiebreaker the
  // paper prescribes for non-unique round-based rankings.
  std::vector<std::uint64_t> keys(n);
#pragma omp parallel for schedule(static)
  for (NodeId u = 0; u < n; ++u) keys[u] = PackKey(level[u], g.Degree(u));

  ApproxCoreResult result;
  result.ordering.name =
      "approx-core(eps=" + std::to_string(epsilon) + ")";
  result.ordering.ranks = RanksFromKeys(keys);
  result.rounds = round;
  return result;
}

Ordering ApproxCoreOrdering(const Graph& g, double epsilon) {
  return ApproxCoreOrderingWithStats(g, epsilon).ordering;
}

}  // namespace pivotscale
