#include "order/approx_core_order.h"

#include <atomic>
#include <limits>
#include <vector>

#include "exec/executor.h"

namespace pivotscale {

namespace {

// Thread-local collect + worker-order merge; on one core this degenerates
// to a plain loop, but the structure mirrors the algorithm.
template <typename Keep>
void CollectIds(std::size_t n, std::vector<NodeId>* out, Keep&& keep) {
  ExecOptions exec_options;
  ParallelForWorkers(
      n, exec_options, [](int) { return std::vector<NodeId>(); },
      [&keep](std::vector<NodeId>& local, std::size_t i) {
        const auto u = static_cast<NodeId>(i);
        if (keep(u)) local.push_back(u);
      },
      [out](std::vector<NodeId>& local) {
        out->insert(out->end(), local.begin(), local.end());
      });
}

}  // namespace

ApproxCoreResult ApproxCoreOrderingWithStats(const Graph& g,
                                             double epsilon) {
  const NodeId n = g.NumNodes();
  std::vector<std::int64_t> degree(n);
  std::vector<std::uint32_t> level(n, 0);
  std::vector<std::uint8_t> alive(n, 1);

  std::int64_t remaining_nodes = n;
  std::int64_t remaining_degree_sum = ParallelReduce(
      n, ExecOptions{}, std::int64_t{0},
      [&](std::int64_t& sum, std::size_t i) {
        const auto u = static_cast<NodeId>(i);
        degree[u] = static_cast<std::int64_t>(g.Degree(u));
        sum += degree[u];
      },
      [](std::int64_t& into, std::int64_t from) { into += from; });

  std::vector<NodeId> remove;
  remove.reserve(n);
  int round = 0;
  while (remaining_nodes > 0) {
    const double avg = static_cast<double>(remaining_degree_sum) /
                       static_cast<double>(remaining_nodes);
    const double threshold = (1.0 + epsilon) * avg;

    remove.clear();
    // Selection pass.
    CollectIds(n, &remove, [&](NodeId u) {
      return alive[u] != 0 &&
             static_cast<double>(degree[u]) < threshold;
    });

    // Progress guarantee: with eps < 0 the threshold can fall below the
    // minimum remaining degree (e.g. on regular graphs). Fall back to
    // removing all minimum-degree vertices, which is still a bulk peel.
    if (remove.empty()) {
      const std::int64_t min_degree = ParallelReduce(
          n, ExecOptions{}, std::numeric_limits<std::int64_t>::max(),
          [&](std::int64_t& min_so_far, std::size_t i) {
            const auto u = static_cast<NodeId>(i);
            if (alive[u]) min_so_far = std::min(min_so_far, degree[u]);
          },
          [](std::int64_t& into, std::int64_t from) {
            into = std::min(into, from);
          });
      CollectIds(n, &remove, [&](NodeId u) {
        return alive[u] != 0 && degree[u] == min_degree;
      });
    }

    // Removal pass: assign the round as the rank level, then update degrees
    // of surviving neighbors. The degree updates use atomics because two
    // removed vertices can share a surviving neighbor.
    for (NodeId u : remove) {
      level[u] = static_cast<std::uint32_t>(round);
      alive[u] = 0;
    }
    // Degree-sum bookkeeping: removing R drops sum(deg(u) for u in R) plus
    // one decrement per R-survivor edge (R-R edges are fully covered by the
    // first term since both endpoints contribute).
    struct Deltas {
      std::int64_t removed_degree = 0;
      std::int64_t survivor_decrements = 0;
    };
    ExecOptions removal_options;
    removal_options.grain = 64;
    const Deltas deltas = ParallelReduce(
        remove.size(), removal_options, Deltas{},
        [&](Deltas& d, std::size_t i) {
          const NodeId u = remove[i];
          d.removed_degree += degree[u];
          for (NodeId v : g.Neighbors(u)) {
            if (!alive[v]) continue;
            std::atomic_ref<std::int64_t>(degree[v])
                .fetch_sub(1, std::memory_order_relaxed);
            ++d.survivor_decrements;
          }
        },
        [](Deltas& into, const Deltas& from) {
          into.removed_degree += from.removed_degree;
          into.survivor_decrements += from.survivor_decrements;
        });
    remaining_degree_sum -=
        deltas.removed_degree + deltas.survivor_decrements;
    remaining_nodes -= static_cast<std::int64_t>(remove.size());
    ++round;
  }

  // Composite rank key: (round, original degree, id) — the tiebreaker the
  // paper prescribes for non-unique round-based rankings.
  std::vector<std::uint64_t> keys(n);
  ParallelFor(n, ExecOptions{}, [&](std::size_t i) {
    const auto u = static_cast<NodeId>(i);
    keys[u] = PackKey(level[u], g.Degree(u));
  });

  ApproxCoreResult result;
  result.ordering.name =
      "approx-core(eps=" + std::to_string(epsilon) + ")";
  result.ordering.ranks = RanksFromKeys(keys);
  result.rounds = round;
  return result;
}

Ordering ApproxCoreOrdering(const Graph& g, double epsilon) {
  return ApproxCoreOrderingWithStats(g, epsilon).ordering;
}

}  // namespace pivotscale
