#include "order/core_order.h"

#include <vector>

namespace pivotscale {

namespace {

// Batagelj-Zaversnik smallest-last peel. Fills ranks with peel positions
// and returns the degeneracy (max degree at pop time == max coreness).
//
// Invariants: `order` stays sorted by current degree; `bin[d]` is the first
// position whose vertex has current degree >= d. Popping the vertex at
// position i freezes its degree (its coreness); neighbors with strictly
// larger current degree are swapped to the front of their bucket and
// decremented. Neighbors of equal degree are left alone — their coreness is
// already determined — which is what keeps every bucket boundary valid.
EdgeId PeelSmallestLast(const Graph& g, std::vector<NodeId>* ranks) {
  const NodeId n = g.NumNodes();
  ranks->assign(n, 0);
  if (n == 0) return 0;

  std::vector<EdgeId> degree(n);
  EdgeId max_degree = 0;
  for (NodeId u = 0; u < n; ++u) {
    degree[u] = g.Degree(u);
    max_degree = std::max(max_degree, degree[u]);
  }

  // bin[d] = first position of degree-d vertices in `order`.
  std::vector<NodeId> bin(max_degree + 2, 0);
  for (NodeId u = 0; u < n; ++u) ++bin[degree[u] + 1];
  for (EdgeId d = 1; d <= max_degree + 1; ++d) bin[d] += bin[d - 1];

  std::vector<NodeId> order(n);
  std::vector<NodeId> pos(n);
  {
    std::vector<NodeId> next(bin.begin(), bin.end() - 1);
    for (NodeId u = 0; u < n; ++u) {
      pos[u] = next[degree[u]]++;
      order[pos[u]] = u;
    }
  }

  EdgeId degeneracy = 0;
  for (NodeId i = 0; i < n; ++i) {
    const NodeId v = order[i];
    (*ranks)[v] = i;
    degeneracy = std::max(degeneracy, degree[v]);
    for (NodeId u : g.Neighbors(v)) {
      if (degree[u] <= degree[v]) continue;  // processed or same-coreness
      const EdgeId du = degree[u];
      const NodeId pu = pos[u];
      const NodeId pw = bin[du];  // front of u's bucket
      const NodeId w = order[pw];
      if (u != w) {
        order[pu] = w;
        pos[w] = pu;
        order[pw] = u;
        pos[u] = pw;
      }
      ++bin[du];
      --degree[u];
    }
  }
  return degeneracy;
}

}  // namespace

Ordering CoreOrdering(const Graph& g) {
  std::vector<NodeId> ranks;
  PeelSmallestLast(g, &ranks);
  return {"core", std::move(ranks)};
}

EdgeId Degeneracy(const Graph& g) {
  std::vector<NodeId> ranks;
  return PeelSmallestLast(g, &ranks);
}

}  // namespace pivotscale
