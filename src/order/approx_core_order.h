// Parallel core-ordering approximation (Algorithm 2, Section III-A).
//
// Instead of peeling one minimum-degree vertex at a time, each round removes
// *all* vertices whose remaining degree is below (1 + eps) times the average
// remaining degree, in parallel. eps trades ordering quality for round count:
// sufficiently negative eps (the paper uses -0.5) reproduces the core
// ordering's maximum out-degree; very large eps degenerates to the degree
// ordering. Rank key = (removal round, original degree, vertex id).
#ifndef PIVOTSCALE_ORDER_APPROX_CORE_ORDER_H_
#define PIVOTSCALE_ORDER_APPROX_CORE_ORDER_H_

#include "graph/graph.h"
#include "order/ordering.h"

namespace pivotscale {

// Result with the round count exposed (Figure 6 reports rounds).
struct ApproxCoreResult {
  Ordering ordering;
  int rounds = 0;
};

ApproxCoreResult ApproxCoreOrderingWithStats(const Graph& g, double epsilon);

// Convenience wrapper returning just the ordering.
Ordering ApproxCoreOrdering(const Graph& g, double epsilon);

}  // namespace pivotscale

#endif  // PIVOTSCALE_ORDER_APPROX_CORE_ORDER_H_
