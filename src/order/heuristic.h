// Order-selecting heuristic (Section III-E).
//
// Clique-rich graphs reward the core approximation's algorithmic advantage;
// clique-poor graphs reward the degree ordering's speed and locality. The
// heuristic predicts clique richness from assortativity probes that cost
// O(d_max) time:
//   a       = the highest degree among the neighbors of the highest-degree
//             vertex (large a => assortative => cliques likely)
//   common  = fraction of neighbors shared between that vertex pair
// Selection rule (paper defaults): use the core approximation iff the graph
// is large enough AND (a/|V| >= 0.0015 OR common > 0.10); otherwise degree.
#ifndef PIVOTSCALE_ORDER_HEURISTIC_H_
#define PIVOTSCALE_ORDER_HEURISTIC_H_

#include "graph/graph.h"

namespace pivotscale {

class TelemetryRegistry;

struct HeuristicConfig {
  // Minimum |V| for the core approximation to be worthwhile; below this the
  // ordering phase dominates total time and degree wins (paper: 1M on the
  // SNAP suite; the synthetic suite default is scaled down accordingly).
  NodeId min_nodes = 1'000'000;
  double a_ratio_threshold = 0.0015;
  double common_fraction_threshold = 0.10;
  // Epsilon used if the core approximation is selected.
  double epsilon = -0.5;
};

struct HeuristicDecision {
  bool use_core_approx = false;    // false => degree ordering
  NodeId max_degree_vertex = 0;    // the probe vertex
  EdgeId max_degree = 0;
  EdgeId a = 0;                    // highest degree among its neighbors
  double a_ratio = 0;              // a / |V|
  double common_fraction = 0;      // shared-neighbor fraction of the pair
  double seconds = 0;              // time to compute the heuristic
};

// Computes the probes and applies the selection rule. O(|N(u*)| + d_max)
// plus one sorted intersection (the degree max is a parallel reduction).
// When `telemetry` is non-null the probe values and the decision are
// recorded as "heuristic.*" gauges.
HeuristicDecision SelectOrdering(const Graph& g,
                                 const HeuristicConfig& config = {},
                                 TelemetryRegistry* telemetry = nullptr);

}  // namespace pivotscale

#endif  // PIVOTSCALE_ORDER_HEURISTIC_H_
