#include "order/coloring_order.h"

#include <algorithm>
#include <numeric>

#include "exec/executor.h"

namespace pivotscale {

std::vector<NodeId> GreedyColoring(const Graph& g) {
  const NodeId n = g.NumNodes();
  constexpr NodeId kUncolored = ~NodeId{0};
  std::vector<NodeId> color(n, kUncolored);

  // Largest-first: high-degree vertices pick colors before their many
  // neighbors constrain them, which empirically minimizes the color count.
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    if (g.Degree(a) != g.Degree(b)) return g.Degree(a) > g.Degree(b);
    return a < b;
  });

  std::vector<std::uint8_t> used(g.MaxDegree() + 2, 0);
  for (NodeId u : order) {
    for (NodeId v : g.Neighbors(u))
      if (color[v] != kUncolored) used[color[v]] = 1;
    NodeId c = 0;
    while (used[c]) ++c;
    color[u] = c;
    for (NodeId v : g.Neighbors(u))
      if (color[v] != kUncolored) used[color[v]] = 0;
  }
  return color;
}

Ordering ColoringOrdering(const Graph& g) {
  const NodeId n = g.NumNodes();
  const std::vector<NodeId> color = GreedyColoring(g);
  std::vector<std::uint64_t> keys(n);
  ParallelFor(n, ExecOptions{}, [&](std::size_t i) {
    const auto u = static_cast<NodeId>(i);
    keys[u] = PackKey(color[u], g.Degree(u));
  });
  return {"coloring", RanksFromKeys(keys)};
}

}  // namespace pivotscale
