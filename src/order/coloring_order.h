// Greedy-coloring ordering (related work: Li et al. use coloring-based
// ordering heuristics for k-clique listing; Besta et al.'s coloring work
// inspired the core approximation of Section III-A).
//
// Vertices are greedily colored in descending-degree order (largest-first);
// the ordering ranks by (color, degree, id). Colors approximate "levels of
// mutual conflict": within a clique every vertex gets a distinct color, so
// directing edges from low to high color spreads each clique's out-degrees
// across color classes. Included for completeness of the ordering library
// and the ordering_explorer example; it is not part of the paper's sweep.
#ifndef PIVOTSCALE_ORDER_COLORING_ORDER_H_
#define PIVOTSCALE_ORDER_COLORING_ORDER_H_

#include <vector>

#include "graph/graph.h"
#include "order/ordering.h"

namespace pivotscale {

// Greedy largest-first proper coloring; returns per-vertex colors
// (0-based). The number of colors is at most max degree + 1.
std::vector<NodeId> GreedyColoring(const Graph& g);

Ordering ColoringOrdering(const Graph& g);

}  // namespace pivotscale

#endif  // PIVOTSCALE_ORDER_COLORING_ORDER_H_
