#include "order/centrality_order.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "exec/executor.h"

namespace pivotscale {

Ordering CentralityOrdering(const Graph& g, int iterations) {
  if (iterations < 1)
    throw std::invalid_argument("CentralityOrdering: iterations < 1");
  const NodeId n = g.NumNodes();
  std::vector<double> score(n, 1.0), next(n, 0.0);

  for (int it = 0; it < iterations; ++it) {
    ExecOptions sum_options;
    sum_options.grain = 1024;
    const double max_score = ParallelReduce(
        n, sum_options, 0.0,
        [&](double& max_so_far, std::size_t i) {
          const auto u = static_cast<NodeId>(i);
          double sum = 0.0;
          for (NodeId v : g.Neighbors(u)) sum += score[v];
          next[u] = sum;
          max_so_far = std::max(max_so_far, sum);
        },
        [](double& into, double from) { into = std::max(into, from); });
    // Rescale so repeated iterations cannot overflow; relative order is
    // unaffected, which is all the ranking needs.
    const double inv = max_score > 0 ? 1.0 / max_score : 1.0;
    ParallelFor(n, ExecOptions{}, [&](std::size_t u) { next[u] *= inv; });
    std::swap(score, next);
  }

  // Quantize score to 32 bits for the packed key; tiebreak by original
  // degree then id like every other approximation in this suite.
  std::vector<std::uint64_t> keys(n);
  ParallelFor(n, ExecOptions{}, [&](std::size_t i) {
    const auto u = static_cast<NodeId>(i);
    const auto q = static_cast<std::uint64_t>(
        std::min(1.0, std::max(0.0, score[u])) * 4294967295.0);
    keys[u] = (q << 24) |
              std::min<std::uint64_t>(g.Degree(u),
                                      (std::uint64_t{1} << 24) - 1);
  });
  return {"centrality(iters=" + std::to_string(iterations) + ")",
          RanksFromKeys(keys)};
}

}  // namespace pivotscale
