#include "order/centrality_order.h"

#include <omp.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pivotscale {

Ordering CentralityOrdering(const Graph& g, int iterations) {
  if (iterations < 1)
    throw std::invalid_argument("CentralityOrdering: iterations < 1");
  const NodeId n = g.NumNodes();
  std::vector<double> score(n, 1.0), next(n, 0.0);

  for (int it = 0; it < iterations; ++it) {
    double max_score = 0.0;
#pragma omp parallel for schedule(dynamic, 1024) \
    reduction(max : max_score)
    for (NodeId u = 0; u < n; ++u) {
      double sum = 0.0;
      for (NodeId v : g.Neighbors(u)) sum += score[v];
      next[u] = sum;
      max_score = std::max(max_score, sum);
    }
    // Rescale so repeated iterations cannot overflow; relative order is
    // unaffected, which is all the ranking needs.
    const double inv = max_score > 0 ? 1.0 / max_score : 1.0;
#pragma omp parallel for schedule(static)
    for (NodeId u = 0; u < n; ++u) next[u] *= inv;
    std::swap(score, next);
  }

  // Quantize score to 32 bits for the packed key; tiebreak by original
  // degree then id like every other approximation in this suite.
  std::vector<std::uint64_t> keys(n);
#pragma omp parallel for schedule(static)
  for (NodeId u = 0; u < n; ++u) {
    const auto q = static_cast<std::uint64_t>(
        std::min(1.0, std::max(0.0, score[u])) * 4294967295.0);
    keys[u] = (q << 24) |
              std::min<std::uint64_t>(g.Degree(u),
                                      (std::uint64_t{1} << 24) - 1);
  }
  return {"centrality(iters=" + std::to_string(iterations) + ")",
          RanksFromKeys(keys)};
}

}  // namespace pivotscale
