// k-truss decomposition.
//
// The k-truss is the maximal subgraph where every edge is supported by at
// least k-2 triangles — the edge-analog of the k-core and a standard
// cohesion measure in the clique-finding application space (every k-clique
// lies inside the k-truss, so trussness is also a counting prefilter).
// This computes each edge's trussness by iterative support peeling.
#ifndef PIVOTSCALE_ANALYSIS_KTRUSS_H_
#define PIVOTSCALE_ANALYSIS_KTRUSS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace pivotscale {

struct TrussDecomposition {
  // One entry per undirected edge, aligned with `edges`.
  std::vector<Edge> edges;                 // (u, v) with u < v
  std::vector<std::uint32_t> trussness;    // max k with the edge in k-truss
  std::uint32_t max_trussness = 2;         // graph trussness (2 if no triangles)
};

// Computes the full truss decomposition. O(sum of deg^2) triangle listing
// plus near-linear peeling — intended for the suite-scale graphs.
TrussDecomposition ComputeTrussDecomposition(const Graph& g);

// The edges of the k-truss of g (u < v per edge). k >= 2; k = 2 returns
// every edge.
std::vector<Edge> KTrussEdges(const Graph& g, std::uint32_t k);

}  // namespace pivotscale

#endif  // PIVOTSCALE_ANALYSIS_KTRUSS_H_
