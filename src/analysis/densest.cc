#include "analysis/densest.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "graph/dag.h"
#include "graph/transform.h"
#include "order/core_order.h"
#include "pivot/count.h"
#include "util/timer.h"

namespace pivotscale {

DensestSubgraphResult KCliqueDensestSubgraph(
    const Graph& g, std::uint32_t k, const DensestSubgraphConfig& config) {
  if (k < 2)
    throw std::invalid_argument("KCliqueDensestSubgraph: k must be >= 2");
  if (config.peel_fraction <= 0 || config.peel_fraction >= 1)
    throw std::invalid_argument(
        "KCliqueDensestSubgraph: peel_fraction out of (0, 1)");

  Timer timer;
  DensestSubgraphResult best;

  // Current subgraph, tracked as original-id members.
  std::vector<NodeId> members(g.NumNodes());
  std::iota(members.begin(), members.end(), NodeId{0});
  Graph current = g;  // renumbered copy; ids map through `members`

  while (current.NumNodes() > 0) {
    ++best.rounds;
    // Exact per-vertex k-clique counts on the current subgraph.
    const Graph dag = Directionalize(current, CoreOrdering(current).ranks);
    CountOptions options;
    options.k = k;
    options.per_vertex = true;
    options.num_threads = config.num_threads;
    const CountResult counts = CountCliques(dag, options);

    const double density =
        counts.total.AsDouble() / static_cast<double>(current.NumNodes());
    if (density > best.density ||
        (best.vertices.empty() && counts.total > BigCount{})) {
      best.density = density;
      best.cliques = counts.total;
      best.vertices = members;
    }
    if (counts.total == BigCount{}) break;  // no k-cliques left anywhere

    // Peel the lowest-count fraction (at least one vertex).
    const NodeId n = current.NumNodes();
    std::vector<NodeId> by_count(n);
    std::iota(by_count.begin(), by_count.end(), NodeId{0});
    std::sort(by_count.begin(), by_count.end(), [&](NodeId a, NodeId b) {
      return counts.per_vertex[a] < counts.per_vertex[b];
    });
    const NodeId keep_from = std::max<NodeId>(
        1, static_cast<NodeId>(config.peel_fraction * n));
    std::vector<NodeId> survivors(by_count.begin() + keep_from,
                                  by_count.end());
    std::sort(survivors.begin(), survivors.end());

    const InducedResult induced = InduceSubgraph(current, survivors);
    std::vector<NodeId> new_members(induced.original_ids.size());
    for (std::size_t i = 0; i < induced.original_ids.size(); ++i)
      new_members[i] = members[induced.original_ids[i]];
    members = std::move(new_members);
    current = induced.graph;
  }

  best.seconds = timer.Seconds();
  return best;
}

}  // namespace pivotscale
