#include "analysis/analysis.h"

#include <algorithm>
#include <cmath>

#include "exec/executor.h"
#include "graph/dag.h"
#include "order/degree_order.h"

namespace pivotscale {

std::uint64_t CountTriangles(const Graph& g) {
  // Directionalize by degree order, then count length-2 paths that close:
  // for each u -> v, |N+(u) ∩ N+(v)| with sorted merges.
  const Ordering order = DegreeOrdering(g);
  const Graph dag = Directionalize(g, order.ranks);
  const NodeId n = dag.NumNodes();
  ExecOptions exec_options;
  exec_options.grain = 256;
  return ParallelReduce(
      n, exec_options, std::uint64_t{0},
      [&dag](std::uint64_t& total, std::size_t idx) {
        const auto u = static_cast<NodeId>(idx);
        const auto nu = dag.Neighbors(u);
        for (NodeId v : nu) {
          const auto nv = dag.Neighbors(v);
          std::size_t i = 0, j = 0;
          while (i < nu.size() && j < nv.size()) {
            if (nu[i] < nv[j]) {
              ++i;
            } else if (nu[i] > nv[j]) {
              ++j;
            } else {
              ++total;
              ++i;
              ++j;
            }
          }
        }
      },
      [](std::uint64_t& into, std::uint64_t from) { into += from; });
}

namespace {

std::uint64_t CountWedges(const Graph& g) {
  std::uint64_t wedges = 0;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    const std::uint64_t d = g.Degree(u);
    wedges += d * (d - 1) / 2;
  }
  return wedges;
}

}  // namespace

double GlobalClusteringCoefficient(const Graph& g) {
  const std::uint64_t wedges = CountWedges(g);
  if (wedges == 0) return 0;
  return 3.0 * static_cast<double>(CountTriangles(g)) /
         static_cast<double>(wedges);
}

double AverageLocalClusteringCoefficient(const Graph& g) {
  const NodeId n = g.NumNodes();
  if (n == 0) return 0;
  ExecOptions exec_options;
  exec_options.grain = 256;
  const double sum = ParallelReduce(
      n, exec_options, 0.0,
      [&g](double& acc, std::size_t idx) {
        const auto u = static_cast<NodeId>(idx);
        const auto nbrs = g.Neighbors(u);
        if (nbrs.size() < 2) return;
        std::uint64_t closed = 0;
        for (std::size_t i = 0; i < nbrs.size(); ++i)
          for (std::size_t j = i + 1; j < nbrs.size(); ++j)
            if (g.HasEdge(nbrs[i], nbrs[j])) ++closed;
        const double possible =
            static_cast<double>(nbrs.size()) *
            static_cast<double>(nbrs.size() - 1) / 2.0;
        acc += static_cast<double>(closed) / possible;
      },
      [](double& into, double from) { into += from; });
  return sum / static_cast<double>(n);
}

std::vector<std::uint64_t> Log2Histogram(
    const std::vector<EdgeId>& values) {
  std::vector<std::uint64_t> buckets;
  for (EdgeId v : values) {
    int b = 0;
    EdgeId x = v;
    while (x > 1) {
      x >>= 1;
      ++b;
    }
    if (static_cast<std::size_t>(b) >= buckets.size())
      buckets.resize(b + 1, 0);
    ++buckets[b];
  }
  return buckets;
}

std::vector<EdgeId> DegreeSequence(const Graph& g) {
  std::vector<EdgeId> degrees(g.NumNodes());
  for (NodeId u = 0; u < g.NumNodes(); ++u) degrees[u] = g.Degree(u);
  return degrees;
}

double DegreeAssortativity(const Graph& g) {
  // Pearson correlation of (remaining) degrees at edge endpoints, computed
  // over each undirected edge once (symmetric, so using both directions
  // changes nothing but the constant).
  double sum_x = 0, sum_x2 = 0, sum_xy = 0;
  std::uint64_t m = 0;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    const double du = static_cast<double>(g.Degree(u)) - 1;
    for (NodeId v : g.Neighbors(u)) {
      const double dv = static_cast<double>(g.Degree(v)) - 1;
      sum_x += du;
      sum_x2 += du * du;
      sum_xy += du * dv;
      ++m;
    }
  }
  if (m == 0) return 0;
  const double mean = sum_x / static_cast<double>(m);
  const double var = sum_x2 / static_cast<double>(m) - mean * mean;
  if (var <= 0) return 0;
  const double cov = sum_xy / static_cast<double>(m) - mean * mean;
  return cov / var;
}

}  // namespace pivotscale
