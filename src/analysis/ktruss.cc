#include "analysis/ktruss.h"

#include <algorithm>
#include <queue>

#include <unordered_map>

namespace pivotscale {

namespace {

// Edge-id lookup: edges are (u, v) with u < v, indexed by their position in
// the decomposition's edge array. The map key packs both endpoints.
std::uint64_t EdgeKey(NodeId u, NodeId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

}  // namespace

TrussDecomposition ComputeTrussDecomposition(const Graph& g) {
  TrussDecomposition result;
  for (NodeId u = 0; u < g.NumNodes(); ++u)
    for (NodeId v : g.Neighbors(u))
      if (u < v) result.edges.emplace_back(u, v);
  const std::size_t m = result.edges.size();
  result.trussness.assign(m, 2);
  if (m == 0) return result;

  std::unordered_map<std::uint64_t, std::uint32_t> edge_id;
  edge_id.reserve(m * 2);
  for (std::uint32_t e = 0; e < m; ++e)
    edge_id.emplace(EdgeKey(result.edges[e].first, result.edges[e].second),
                    e);

  // Initial support: triangles through each edge, via the smaller
  // endpoint's neighborhood.
  std::vector<std::uint32_t> support(m, 0);
  for (std::uint32_t e = 0; e < m; ++e) {
    const auto [u, v] = result.edges[e];
    const auto nu = g.Neighbors(u);
    const auto nv = g.Neighbors(v);
    std::size_t i = 0, j = 0;
    while (i < nu.size() && j < nv.size()) {
      if (nu[i] < nv[j]) {
        ++i;
      } else if (nu[i] > nv[j]) {
        ++j;
      } else {
        ++support[e];
        ++i;
        ++j;
      }
    }
  }

  // Peel edges in increasing support order; when the edge (u, v) leaves,
  // every surviving triangle (u, v, w) loses one support on its other two
  // edges. The bucket queue mirrors the core-decomposition peel.
  std::vector<std::uint8_t> removed(m, 0);
  using HeapEntry = std::pair<std::uint32_t, std::uint32_t>;  // (sup, e)
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>
      heap;
  for (std::uint32_t e = 0; e < m; ++e) heap.emplace(support[e], e);

  std::uint32_t current_truss = 2;
  std::size_t removed_count = 0;
  while (removed_count < m) {
    const auto [sup, e] = heap.top();
    heap.pop();
    if (removed[e] || sup != support[e]) continue;  // stale entry
    current_truss = std::max(current_truss, support[e] + 2);
    result.trussness[e] = current_truss;
    removed[e] = 1;
    ++removed_count;

    const auto [u, v] = result.edges[e];
    const auto nu = g.Neighbors(u);
    const auto nv = g.Neighbors(v);
    std::size_t i = 0, j = 0;
    while (i < nu.size() && j < nv.size()) {
      if (nu[i] < nv[j]) {
        ++i;
      } else if (nu[i] > nv[j]) {
        ++j;
      } else {
        const NodeId w = nu[i];
        const std::uint32_t e1 = edge_id.at(EdgeKey(u, w));
        const std::uint32_t e2 = edge_id.at(EdgeKey(v, w));
        if (!removed[e1] && !removed[e2]) {
          for (std::uint32_t other : {e1, e2}) {
            if (support[other] > 0) {
              --support[other];
              heap.emplace(support[other], other);
            }
          }
        }
        ++i;
        ++j;
      }
    }
  }
  result.max_trussness = current_truss;
  return result;
}

std::vector<Edge> KTrussEdges(const Graph& g, std::uint32_t k) {
  const TrussDecomposition d = ComputeTrussDecomposition(g);
  std::vector<Edge> kept;
  for (std::size_t e = 0; e < d.edges.size(); ++e)
    if (d.trussness[e] >= k) kept.push_back(d.edges[e]);
  return kept;
}

}  // namespace pivotscale
