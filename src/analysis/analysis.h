// Graph analysis utilities around the clique-counting core:
//  * triangle counting — an independent specialized kernel that also
//    cross-validates the pivot counter at k = 3,
//  * clustering coefficients — the standard density summaries,
//  * degree histograms — what the paper's Figure 3 plots (core-ordered vs
//    degree-ordered DAG out-degree distributions),
//  * degree assortativity — the network property (Newman 2002) behind the
//    Section III-E heuristic's probes.
#ifndef PIVOTSCALE_ANALYSIS_ANALYSIS_H_
#define PIVOTSCALE_ANALYSIS_ANALYSIS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace pivotscale {

// Exact triangle count via sorted-adjacency intersection over a
// rank-directionalized DAG. Parallel over vertices.
std::uint64_t CountTriangles(const Graph& g);

// Global clustering coefficient: 3 * triangles / wedges (0 if no wedges).
double GlobalClusteringCoefficient(const Graph& g);

// Average local clustering coefficient (vertices of degree < 2 contribute
// 0, as in the standard definition).
double AverageLocalClusteringCoefficient(const Graph& g);

// Histogram of values into power-of-two buckets: bucket b holds values in
// [2^b, 2^(b+1)) with bucket 0 holding {0, 1}. Used for degree
// distributions (Figure 3).
std::vector<std::uint64_t> Log2Histogram(
    const std::vector<EdgeId>& values);

// Out-degree list of a graph (for histogramming DAGs).
std::vector<EdgeId> DegreeSequence(const Graph& g);

// Pearson degree assortativity over edges (Newman 2002); in [-1, 1].
// Social networks are assortative (> 0) — the premise of the ordering
// heuristic.
double DegreeAssortativity(const Graph& g);

}  // namespace pivotscale

#endif  // PIVOTSCALE_ANALYSIS_ANALYSIS_H_
