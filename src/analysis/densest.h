// k-clique densest subgraph by iterative peeling — the flagship use of the
// per-vertex counting mode the paper's conclusion highlights.
//
// The k-clique densest subgraph maximizes (#k-cliques in S) / |S|. The
// classic peeling scheme (Tsourakakis, WWW'15): repeatedly remove the
// vertex (or a batch of vertices) with the fewest incident k-cliques and
// keep the densest prefix seen; this gives a 1/k approximation. Each round
// recomputes per-vertex counts on the shrinking graph with the exact
// pivoting kernel.
#ifndef PIVOTSCALE_ANALYSIS_DENSEST_H_
#define PIVOTSCALE_ANALYSIS_DENSEST_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/uint128.h"

namespace pivotscale {

struct DensestSubgraphConfig {
  // Fraction of the lowest-count vertices removed per round; batching
  // trades approximation tightness for rounds (1 vertex/round is the
  // textbook scheme, far too slow for counting-based peeling).
  double peel_fraction = 0.1;
  int num_threads = 0;
};

struct DensestSubgraphResult {
  std::vector<NodeId> vertices;  // members of the best subgraph found
  BigCount cliques{};            // k-cliques inside it
  double density = 0;            // cliques / |vertices|
  int rounds = 0;
  double seconds = 0;
};

// Approximates the k-clique densest subgraph of g. k >= 2.
DensestSubgraphResult KCliqueDensestSubgraph(
    const Graph& g, std::uint32_t k,
    const DensestSubgraphConfig& config = {});

}  // namespace pivotscale

#endif  // PIVOTSCALE_ANALYSIS_DENSEST_H_
