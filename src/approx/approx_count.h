// Sampling-based approximate k-clique counting.
//
// Section VII surveys approximate counters (Turán-shadow, color-based
// sampling); this module implements a stratified root-sampling estimator
// on top of the exact pivoting kernel: the total count is the sum of
// per-root counts over the DAG, so sampling roots and counting them
// exactly yields an unbiased estimator. Stratifying by out-degree (heavy
// roots are few but carry most of the count) collapses the variance that
// plain uniform sampling would suffer on skewed graphs.
#ifndef PIVOTSCALE_APPROX_APPROX_COUNT_H_
#define PIVOTSCALE_APPROX_APPROX_COUNT_H_

#include <cstdint>

#include "graph/graph.h"
#include "util/uint128.h"

namespace pivotscale {

struct ApproxCountConfig {
  // Fraction of roots counted exactly, in (0, 1]. 1.0 degenerates to the
  // exact count.
  double sample_fraction = 0.05;
  // At least this many samples per non-empty stratum.
  std::uint32_t min_samples_per_stratum = 8;
  // Out-degree strata boundaries are powers of two up to this many strata.
  int max_strata = 24;
  std::uint64_t seed = 1;
  int num_threads = 0;
};

struct ApproxCountResult {
  // The estimate (rounded to integer; exact within a stratum that was
  // fully sampled).
  BigCount estimate{};
  double estimate_double = 0;
  // Estimated relative standard error from within-stratum sample variance.
  double relative_std_error = 0;
  std::uint64_t roots_sampled = 0;
  std::uint64_t roots_total = 0;
  double seconds = 0;
};

// Estimates the k-clique count of a directionalized DAG.
ApproxCountResult ApproxCountKCliques(const Graph& dag, std::uint32_t k,
                                      const ApproxCountConfig& config = {});

// Color sparsification (the color-based sampling family of Section VII):
// each vertex gets one of `colors` uniform colors; only monochromatic
// edges survive; a k-clique survives with probability colors^-(k-1), so
// the exact count of the sparsified graph times colors^(k-1) is unbiased.
// `repeats` independent colorings are averaged and the sample standard
// error reported.
struct ColorSamplingConfig {
  std::uint32_t colors = 4;
  int repeats = 5;
  std::uint64_t seed = 1;
  int num_threads = 0;
};

// Takes the *undirected* graph (sparsification changes the DAG).
ApproxCountResult ColorSamplingCount(const Graph& g, std::uint32_t k,
                                     const ColorSamplingConfig& config = {});

}  // namespace pivotscale

#endif  // PIVOTSCALE_APPROX_APPROX_COUNT_H_
