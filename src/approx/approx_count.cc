#include "approx/approx_count.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "exec/executor.h"
#include "graph/builder.h"
#include "graph/dag.h"
#include "order/degree_order.h"
#include "pivot/count.h"
#include "pivot/pivoter.h"
#include "pivot/subgraph_remap.h"
#include "util/rng.h"
#include "util/timer.h"

namespace pivotscale {

namespace {

int StratumOf(EdgeId out_degree, int max_strata) {
  int s = 0;
  EdgeId d = out_degree;
  while (d > 0 && s < max_strata - 1) {
    d >>= 1;
    ++s;
  }
  return s;
}

}  // namespace

ApproxCountResult ApproxCountKCliques(const Graph& dag, std::uint32_t k,
                                      const ApproxCountConfig& config) {
  if (dag.undirected())
    throw std::invalid_argument(
        "ApproxCountKCliques: expected a directionalized DAG");
  if (config.sample_fraction <= 0 || config.sample_fraction > 1)
    throw std::invalid_argument(
        "ApproxCountKCliques: sample_fraction out of (0, 1]");

  Timer timer;
  const NodeId n = dag.NumNodes();

  // Partition roots into out-degree strata.
  std::vector<std::vector<NodeId>> strata(config.max_strata);
  for (NodeId v = 0; v < n; ++v)
    strata[StratumOf(dag.Degree(v), config.max_strata)].push_back(v);

  // Choose per-stratum sample sets (partial Fisher-Yates prefix).
  Rng rng(config.seed);
  struct Sample {
    NodeId root;
    int stratum;
  };
  std::vector<Sample> samples;
  std::vector<std::uint64_t> stratum_size(config.max_strata, 0);
  std::vector<std::uint64_t> stratum_samples(config.max_strata, 0);
  for (int s = 0; s < config.max_strata; ++s) {
    auto& roots = strata[s];
    stratum_size[s] = roots.size();
    if (roots.empty()) continue;
    std::uint64_t m = static_cast<std::uint64_t>(
        std::ceil(config.sample_fraction * static_cast<double>(roots.size())));
    m = std::max<std::uint64_t>(m, config.min_samples_per_stratum);
    m = std::min<std::uint64_t>(m, roots.size());
    stratum_samples[s] = m;
    for (std::uint64_t i = 0; i < m; ++i) {
      const std::uint64_t j = i + rng.Below(roots.size() - i);
      std::swap(roots[i], roots[j]);
      samples.push_back({roots[i], s});
    }
  }

  // Exact per-root counts for the sampled roots.
  const std::uint32_t bound = static_cast<std::uint32_t>(dag.MaxDegree()) + 1;
  const BinomialTable binom(bound + 1);
  std::vector<double> counts(samples.size(), 0.0);
  ExecOptions exec_options;
  exec_options.num_threads = config.num_threads;
  exec_options.grain = 16;
  exec_options.cost = [&](std::size_t i) {
    const auto d =
        static_cast<double>(dag.Degree(samples[i].root));
    return (d + 1) * (d + 1);
  };
  ParallelForWorkers(
      samples.size(), exec_options,
      [&](int) {
        return PivotCounter<RemapSubgraph, NoStats>(
            dag, CountMode::kSingleK, k, /*per_vertex=*/false, bound,
            &binom);
      },
      [&](PivotCounter<RemapSubgraph, NoStats>& counter, std::size_t i) {
        // Per-root delta of the accumulating counter; stored as double
        // (precision loss starts beyond 2^53 per root, where the
        // estimator's relative error is negligible anyway).
        const uint128 before = counter.total().value();
        counter.ProcessRoot(samples[i].root);
        counts[i] = ToDouble(counter.total().value() - before);
      },
      [](PivotCounter<RemapSubgraph, NoStats>&) {});

  // Horvitz-Thompson per stratum: estimate_s = N_s * mean_s; variance via
  // within-stratum sample variance with finite-population correction.
  ApproxCountResult result;
  result.roots_total = n;
  double estimate = 0, variance = 0;
  std::vector<double> stratum_sum(config.max_strata, 0.0);
  std::vector<double> stratum_sum_sq(config.max_strata, 0.0);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    stratum_sum[samples[i].stratum] += counts[i];
    stratum_sum_sq[samples[i].stratum] += counts[i] * counts[i];
  }
  for (int s = 0; s < config.max_strata; ++s) {
    const double m = static_cast<double>(stratum_samples[s]);
    const double N = static_cast<double>(stratum_size[s]);
    if (m == 0) continue;
    const double mean = stratum_sum[s] / m;
    estimate += N * mean;
    if (m > 1 && m < N) {
      const double sample_var =
          (stratum_sum_sq[s] - m * mean * mean) / (m - 1);
      variance += N * N * (sample_var / m) * (1.0 - m / N);
    }
  }
  result.roots_sampled = samples.size();
  result.estimate_double = estimate;
  result.estimate = BigCount{static_cast<uint128>(std::max(0.0, estimate))};
  result.relative_std_error =
      estimate > 0 ? std::sqrt(std::max(0.0, variance)) / estimate : 0;
  result.seconds = timer.Seconds();
  return result;
}

ApproxCountResult ColorSamplingCount(const Graph& g, std::uint32_t k,
                                     const ColorSamplingConfig& config) {
  if (g.NumNodes() > 0 && !g.undirected())
    throw std::invalid_argument(
        "ColorSamplingCount: expected an undirected graph");
  if (config.colors < 2)
    throw std::invalid_argument("ColorSamplingCount: colors must be >= 2");
  if (config.repeats < 1)
    throw std::invalid_argument("ColorSamplingCount: repeats must be >= 1");
  if (k < 2)
    throw std::invalid_argument("ColorSamplingCount: k must be >= 2");

  Timer timer;
  const NodeId n = g.NumNodes();
  // Scale factor colors^(k-1), saturating.
  uint128 scale = 1;
  for (std::uint32_t i = 0; i + 1 < k; ++i)
    scale = SatMul(scale, config.colors);

  std::vector<double> estimates;
  Rng rng(config.seed);
  std::vector<std::uint8_t> color(n);
  for (int rep = 0; rep < config.repeats; ++rep) {
    for (NodeId v = 0; v < n; ++v)
      color[v] = static_cast<std::uint8_t>(rng.Below(config.colors));
    EdgeList kept;
    for (NodeId u = 0; u < n; ++u)
      for (NodeId v : g.Neighbors(u))
        if (u < v && color[u] == color[v]) kept.emplace_back(u, v);
    const Graph sparse = BuildUndirected(std::move(kept), n);
    const Graph dag =
        Directionalize(sparse, DegreeOrdering(sparse).ranks);
    CountOptions options;
    options.k = k;
    options.num_threads = config.num_threads;
    const BigCount mono = CountCliques(dag, options).total;
    estimates.push_back(ToDouble(mono.value()) * ToDouble(scale));
  }

  ApproxCountResult result;
  result.roots_total = n;
  result.roots_sampled =
      static_cast<std::uint64_t>(config.repeats);  // colorings, here
  double mean = 0;
  for (double e : estimates) mean += e;
  mean /= static_cast<double>(estimates.size());
  double var = 0;
  for (double e : estimates) var += (e - mean) * (e - mean);
  if (estimates.size() > 1)
    var /= static_cast<double>(estimates.size() - 1);
  result.estimate_double = mean;
  result.estimate = BigCount{static_cast<uint128>(std::max(0.0, mean))};
  result.relative_std_error =
      mean > 0
          ? std::sqrt(var / static_cast<double>(estimates.size())) / mean
          : 0;
  result.seconds = timer.Seconds();
  return result;
}

}  // namespace pivotscale
