// Enumeration-based k-clique counting baseline (kclist / Arb-Count style).
//
// The classic DAG enumeration: per root vertex, the candidate set is the
// out-neighborhood; each level picks one candidate and intersects the
// candidate set with its out-neighborhood, so the chosen vertices always
// form a clique and each k-clique is generated exactly once in canonical
// (rank) order. Work grows combinatorially with k — the behaviour Figure 12
// contrasts against pivoting — so the driver supports a time budget and
// reports ">budget" runs as timed_out, mirroring the paper's ">2h" entries.
#ifndef PIVOTSCALE_BASELINES_ENUMERATION_H_
#define PIVOTSCALE_BASELINES_ENUMERATION_H_

#include <cstdint>

#include "graph/graph.h"
#include "util/uint128.h"

namespace pivotscale {

struct EnumerationOptions {
  std::uint32_t k = 8;
  int num_threads = 0;             // 0 = OpenMP default
  double time_budget_seconds = 0;  // 0 = unlimited
};

struct EnumerationResult {
  BigCount total{};    // meaningless if timed_out
  double seconds = 0;
  bool timed_out = false;
};

// Counts k-cliques on a directionalized DAG by enumeration.
EnumerationResult CountCliquesEnumeration(const Graph& dag,
                                          const EnumerationOptions& options);

}  // namespace pivotscale

#endif  // PIVOTSCALE_BASELINES_ENUMERATION_H_
