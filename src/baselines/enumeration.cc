#include "baselines/enumeration.h"

#include <atomic>
#include <stdexcept>
#include <vector>

#include "exec/executor.h"
#include "util/timer.h"

namespace pivotscale {

namespace {

// One thread's enumeration state. `label[u] = depth` marks u as a member of
// the candidate set at that depth (the kclist labeling trick), so building
// the next level's candidates is a filter of the chosen vertex's
// out-neighborhood.
class EnumWorker {
 public:
  EnumWorker(const Graph& dag, std::uint32_t k)
      : dag_(dag), k_(k), label_(dag.NumNodes(), 0), bufs_(k + 1) {}

  // Counts k-cliques rooted at v; returns the count. Checks `deadline` via
  // the caller-provided predicate every few thousand recursive steps.
  template <typename DeadlinePred>
  BigCount ProcessRoot(NodeId v, const DeadlinePred& deadline_hit) {
    if (k_ == 1) return BigCount{1};
    auto& cand = bufs_[2];
    cand.clear();
    for (NodeId u : dag_.Neighbors(v)) {
      cand.push_back(u);
      label_[u] = 2;
    }
    const BigCount total = Recurse(2, deadline_hit);
    for (NodeId u : cand) label_[u] = 0;
    return total;
  }

 private:
  // `depth` = number of chosen vertices + 1; candidates live in
  // bufs_[depth] with label_ == depth.
  template <typename DeadlinePred>
  BigCount Recurse(std::uint32_t depth, const DeadlinePred& deadline_hit) {
    const auto& cand = bufs_[depth];
    if (depth == k_) return BigCount{cand.size()};

    if (++steps_ % 4096 == 0 && deadline_hit()) {
      aborted_ = true;
      return BigCount{};
    }

    BigCount total{};
    auto& next = bufs_[depth + 1];
    for (NodeId u : cand) {
      next.clear();
      for (NodeId w : dag_.Neighbors(u)) {
        if (label_[w] == depth) {
          label_[w] = depth + 1;
          next.push_back(w);
        }
      }
      total += Recurse(depth + 1, deadline_hit);
      for (NodeId w : next) label_[w] = depth;
      if (aborted_) return total;
    }
    return total;
  }

 public:
  bool aborted() const { return aborted_; }

 private:
  const Graph& dag_;
  std::uint32_t k_;
  std::vector<std::uint32_t> label_;
  std::vector<std::vector<NodeId>> bufs_;
  std::uint64_t steps_ = 0;
  bool aborted_ = false;
};

}  // namespace

EnumerationResult CountCliquesEnumeration(const Graph& dag,
                                          const EnumerationOptions& options) {
  if (dag.undirected())
    throw std::invalid_argument(
        "CountCliquesEnumeration: expected a directionalized DAG");
  if (options.k < 1)
    throw std::invalid_argument("CountCliquesEnumeration: k must be >= 1");

  const NodeId n = dag.NumNodes();

  Timer timer;
  std::atomic<bool> timed_out{false};
  const double budget = options.time_budget_seconds;
  auto deadline_hit = [&]() {
    if (budget > 0 && timer.Seconds() > budget) {
      timed_out.store(true, std::memory_order_relaxed);
      return true;
    }
    return timed_out.load(std::memory_order_relaxed);
  };

  // Worker state: the kclist labeling engine plus this worker's partial
  // total, merged serially after the region.
  struct Worker {
    Worker(const Graph& graph, std::uint32_t k) : engine(graph, k) {}
    EnumWorker engine;
    BigCount local{};
  };

  BigCount total{};
  ExecOptions exec_options;
  exec_options.num_threads = options.num_threads;
  exec_options.grain = 64;
  exec_options.cost = [&dag](std::size_t v) {
    return static_cast<double>(dag.Degree(static_cast<NodeId>(v)) + 1);
  };
  ParallelForWorkers(
      n, exec_options, [&](int) { return Worker(dag, options.k); },
      [&deadline_hit](Worker& w, std::size_t v) {
        if (!deadline_hit())
          w.local += w.engine.ProcessRoot(static_cast<NodeId>(v),
                                          deadline_hit);
      },
      [&total](Worker& w) { total += w.local; });

  EnumerationResult result;
  result.timed_out = timed_out.load();
  result.total = result.timed_out ? BigCount{} : total;
  result.seconds = timer.Seconds();
  return result;
}

}  // namespace pivotscale
