// "Pivoter (naive parallel)" baseline — a model of the original Pivoter
// release as evaluated in the paper.
//
// Two properties distinguish it from PivotScale: the ordering phase is the
// exact sequential core ordering (no parallel approximation), and the
// counting phase uses the dense |V|-indexed subgraph structure with a
// static OpenMP schedule — the straightforward parallelization the Pivoter
// authors describe as unoptimized. The counting algorithm itself is the
// same correct recursion, so results cross-validate against PivotScale.
#ifndef PIVOTSCALE_BASELINES_PIVOTER_NAIVE_H_
#define PIVOTSCALE_BASELINES_PIVOTER_NAIVE_H_

#include <cstdint>

#include "graph/graph.h"
#include "util/uint128.h"

namespace pivotscale {

struct PivoterNaiveResult {
  BigCount total{};
  double ordering_seconds = 0;
  double counting_seconds = 0;
  double total_seconds = 0;
  EdgeId max_out_degree = 0;
};

// Runs sequential core ordering + dense-structure counting of k-cliques on
// the undirected input graph.
PivoterNaiveResult RunPivoterNaive(const Graph& g, std::uint32_t k,
                                   int num_threads = 0);

}  // namespace pivotscale

#endif  // PIVOTSCALE_BASELINES_PIVOTER_NAIVE_H_
