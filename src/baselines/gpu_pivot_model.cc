#include "baselines/gpu_pivot_model.h"

#include <bit>
#include <stdexcept>
#include <vector>

#include "exec/executor.h"
#include "util/binomial.h"
#include "util/flat_hash.h"
#include "util/timer.h"

namespace pivotscale {

namespace {

// Fixed-width bitset arithmetic over spans of 64-bit words.
inline int PopcountWords(const std::uint64_t* a, std::size_t words) {
  int count = 0;
  for (std::size_t i = 0; i < words; ++i) count += std::popcount(a[i]);
  return count;
}

inline int PopcountAnd(const std::uint64_t* a, const std::uint64_t* b,
                       std::size_t words) {
  int count = 0;
  for (std::size_t i = 0; i < words; ++i) count += std::popcount(a[i] & b[i]);
  return count;
}

// One thread's GPU-Pivot-style engine (models a warp).
class GpuPivotWorker {
 public:
  GpuPivotWorker(const Graph& dag, std::uint32_t k,
                 const BinomialTable* binom)
      : dag_(dag), k_(k), binom_(binom) {}

  BigCount ProcessRoot(NodeId root) {
    const auto nbrs = dag_.Neighbors(root);
    n_ = static_cast<std::uint32_t>(nbrs.size());
    words_ = (n_ + 63) / 64;
    if (n_ == 0) return k_ == 1 ? BigCount{1} : BigCount{};

    // Binary-encoded adjacency matrix over remapped local ids. Unlike
    // PivotScale this matrix is immutable: every level recomputes its
    // candidate bitset from scratch.
    remap_.Clear();
    remap_.Reserve(n_);
    for (std::uint32_t local = 0; local < n_; ++local)
      remap_.Insert(nbrs[local], local);
    matrix_.assign(static_cast<std::size_t>(n_) * words_, 0);
    for (std::uint32_t a = 0; a < n_; ++a) {
      for (NodeId b : dag_.Neighbors(nbrs[a])) {
        const std::uint32_t local = remap_.Find(b);
        if (local == FlatHashMap::kNotFound) continue;
        SetBit(Row(a), local);
        SetBit(Row(local), a);
      }
    }

    // Depth-indexed candidate bitsets (a fresh bitset per level is the
    // rebuild-per-level cost).
    if (cand_.size() < static_cast<std::size_t>(n_ + 2))
      cand_.resize(n_ + 2);
    auto& top = cand_[0];
    top.assign(words_, ~std::uint64_t{0});
    // Clear the padding bits beyond n_.
    if (n_ % 64 != 0) top[words_ - 1] = (std::uint64_t{1} << (n_ % 64)) - 1;

    return Recurse(0, /*r=*/1, /*np=*/0);
  }

  std::size_t WorkspaceBytes() const {
    std::size_t bytes = matrix_.capacity() * sizeof(std::uint64_t);
    for (const auto& c : cand_) bytes += c.capacity() * sizeof(std::uint64_t);
    return bytes;
  }

 private:
  std::uint64_t* Row(std::uint32_t u) {
    return matrix_.data() + static_cast<std::size_t>(u) * words_;
  }
  static void SetBit(std::uint64_t* row, std::uint32_t bit) {
    row[bit / 64] |= std::uint64_t{1} << (bit % 64);
  }
  static bool TestBit(const std::uint64_t* row, std::uint32_t bit) {
    return (row[bit / 64] >> (bit % 64)) & 1;
  }

  BigCount Recurse(std::uint32_t depth, std::uint32_t r, std::uint32_t np) {
    auto& cand = cand_[depth];
    const int remaining = PopcountWords(cand.data(), words_);

    if (r == k_) return BigCount{1};
    if (r + np + static_cast<std::uint32_t>(remaining) < k_)
      return BigCount{};
    if (remaining == 0) {
      if (k_ < r || k_ - r > np) return BigCount{};
      return BigCount{binom_->Choose(np, k_ - r)};
    }

    // Pivot selection: the intra-warp-parallel step in GPU-Pivot. A full
    // row-AND popcount per candidate — per-level work that a mutating
    // structure avoids.
    std::uint32_t pivot = 0;
    int pivot_deg = -1;
    for (std::uint32_t u = 0; u < n_; ++u) {
      if (!TestBit(cand.data(), u)) continue;
      const int d = PopcountAnd(Row(u), cand.data(), words_);
      if (d > pivot_deg) {
        pivot = u;
        pivot_deg = d;
      }
    }

    // Branch over the pivot first, then the pivot's non-neighbors, clearing
    // each processed vertex from the working set.
    auto& next = cand_[depth + 1];
    next.resize(words_);

    BigCount total{};
    // Working copy that loses processed vertices (held in `cand` itself —
    // restored by the caller never, because each depth owns its bitset and
    // the parent recomputes nothing; clearing is safe).
    // Pivot branch:
    {
      const std::uint64_t* row = Row(pivot);
      for (std::uint32_t w = 0; w < words_; ++w) next[w] = cand[w] & row[w];
      total += Recurse(depth + 1, r, np + 1);
      cand[pivot / 64] &= ~(std::uint64_t{1} << (pivot % 64));
    }
    // Non-neighbor branches, ascending id:
    for (std::uint32_t u = 0; u < n_; ++u) {
      if (!TestBit(cand.data(), u) || TestBit(Row(pivot), u)) continue;
      const std::uint64_t* row = Row(u);
      for (std::uint32_t w = 0; w < words_; ++w) next[w] = cand[w] & row[w];
      total += Recurse(depth + 1, r + 1, np);
      cand[u / 64] &= ~(std::uint64_t{1} << (u % 64));
    }
    return total;
  }

  const Graph& dag_;
  std::uint32_t k_;
  const BinomialTable* binom_;
  std::uint32_t n_ = 0;
  std::size_t words_ = 0;
  FlatHashMap remap_;
  std::vector<std::uint64_t> matrix_;
  std::vector<std::vector<std::uint64_t>> cand_;
};

}  // namespace

GpuPivotModelResult CountCliquesGpuPivotModel(const Graph& dag,
                                              std::uint32_t k,
                                              int num_threads) {
  if (dag.undirected())
    throw std::invalid_argument(
        "CountCliquesGpuPivotModel: expected a directionalized DAG");
  if (k < 1)
    throw std::invalid_argument("CountCliquesGpuPivotModel: k must be >= 1");

  const NodeId n = dag.NumNodes();
  const std::uint32_t bound = static_cast<std::uint32_t>(dag.MaxDegree()) + 1;
  const BinomialTable binom(bound + 1);

  struct Worker {
    Worker(const Graph& graph, std::uint32_t k_arg,
           const BinomialTable* binom_arg)
        : engine(graph, k_arg, binom_arg) {}
    GpuPivotWorker engine;
    BigCount local{};
  };

  Timer timer;
  GpuPivotModelResult result;
  BigCount total{};
  ExecOptions exec_options;
  exec_options.num_threads = num_threads;
  exec_options.grain = 64;
  exec_options.cost = [&dag](std::size_t v) {
    return static_cast<double>(dag.Degree(static_cast<NodeId>(v)) + 1);
  };
  ParallelForWorkers(
      n, exec_options, [&](int) { return Worker(dag, k, &binom); },
      [](Worker& w, std::size_t v) {
        w.local += w.engine.ProcessRoot(static_cast<NodeId>(v));
      },
      [&](Worker& w) {
        total += w.local;
        result.workspace_bytes += w.engine.WorkspaceBytes();
      });
  result.total = total;
  result.seconds = timer.Seconds();
  return result;
}

}  // namespace pivotscale
