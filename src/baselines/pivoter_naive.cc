#include "baselines/pivoter_naive.h"

#include <omp.h>

#include "graph/dag.h"
#include "order/core_order.h"
#include "pivot/count.h"
#include "pivot/pivoter.h"
#include "pivot/subgraph_dense.h"
#include "util/timer.h"

namespace pivotscale {

PivoterNaiveResult RunPivoterNaive(const Graph& g, std::uint32_t k,
                                   int num_threads) {
  PivoterNaiveResult result;
  PhaseTimer phases;
  phases.Start();

  const Ordering ordering = CoreOrdering(g);
  const Graph dag = Directionalize(g, ordering.ranks);
  result.max_out_degree = MaxOutDegree(dag);
  result.ordering_seconds = phases.Stop("ordering");

  // Counting: dense structure, static schedule — the naive parallelization.
  const NodeId n = dag.NumNodes();
  const std::uint32_t bound = static_cast<std::uint32_t>(dag.MaxDegree()) + 1;
  const BinomialTable binom(bound + 1);
  const int threads =
      num_threads > 0 ? num_threads : omp_get_max_threads();

  BigCount total{};
#pragma omp parallel num_threads(threads)
  {
    PivotCounter<DenseSubgraph, NoStats> counter(
        dag, CountMode::kSingleK, k, /*per_vertex=*/false, bound, &binom);
#pragma omp for schedule(static) nowait
    for (NodeId v = 0; v < n; ++v) counter.ProcessRoot(v);
#pragma omp critical(pivoter_naive_reduce)
    total += counter.total();
  }
  result.total = total;
  result.counting_seconds = phases.Stop("counting");
  result.total_seconds = phases.TotalSeconds();
  return result;
}

}  // namespace pivotscale
