#include "baselines/pivoter_naive.h"

#include "exec/executor.h"
#include "graph/dag.h"
#include "order/core_order.h"
#include "pivot/count.h"
#include "pivot/pivoter.h"
#include "pivot/subgraph_dense.h"
#include "util/timer.h"

namespace pivotscale {

PivoterNaiveResult RunPivoterNaive(const Graph& g, std::uint32_t k,
                                   int num_threads) {
  PivoterNaiveResult result;
  PhaseTimer phases;
  phases.Start();

  const Ordering ordering = CoreOrdering(g);
  const Graph dag = Directionalize(g, ordering.ranks);
  result.max_out_degree = MaxOutDegree(dag);
  result.ordering_seconds = phases.Stop("ordering");

  // Counting: dense structure, one contiguous block per worker
  // (chunks_per_worker = 1 reproduces a static partition), no cost model —
  // the naive parallelization this baseline exists to demonstrate.
  const NodeId n = dag.NumNodes();
  const std::uint32_t bound = static_cast<std::uint32_t>(dag.MaxDegree()) + 1;
  const BinomialTable binom(bound + 1);

  BigCount total{};
  ExecOptions exec_options;
  exec_options.num_threads = num_threads;
  exec_options.chunks_per_worker = 1;
  ParallelForWorkers(
      n, exec_options,
      [&](int) {
        return PivotCounter<DenseSubgraph, NoStats>(
            dag, CountMode::kSingleK, k, /*per_vertex=*/false, bound,
            &binom);
      },
      [](PivotCounter<DenseSubgraph, NoStats>& counter, std::size_t v) {
        counter.ProcessRoot(static_cast<NodeId>(v));
      },
      [&total](PivotCounter<DenseSubgraph, NoStats>& counter) {
        total += counter.total();
      });
  result.total = total;
  result.counting_seconds = phases.Stop("counting");
  result.total_seconds = phases.TotalSeconds();
  return result;
}

}  // namespace pivotscale
