// CPU model of GPU-Pivot (Almasri et al., ICS'22).
//
// The paper compares against GPU-Pivot using its published numbers; this
// environment has no GPU, so this baseline executes GPU-Pivot's *algorithmic
// structure* on the CPU (see DESIGN.md substitutions): the first-level
// subgraph is a binary-encoded adjacency matrix, and — because that encoding
// does not support reversible mutations — the candidate set is re-intersected
// from scratch at every recursion level. The extra per-level intersection
// work is exactly why GPU-Pivot's time grows with k on clique-rich graphs
// (Section VI-G), the behaviour this model reproduces. Counting semantics
// are identical to Pivoter (cross-validated in the tests).
#ifndef PIVOTSCALE_BASELINES_GPU_PIVOT_MODEL_H_
#define PIVOTSCALE_BASELINES_GPU_PIVOT_MODEL_H_

#include <cstdint>

#include "graph/graph.h"
#include "util/uint128.h"

namespace pivotscale {

struct GpuPivotModelResult {
  BigCount total{};
  double seconds = 0;
  // Bytes of the per-thread bit-matrix workspace (GPU-Pivot's memory
  // footprint advantage over a per-thread adjacency-list subgraph).
  std::size_t workspace_bytes = 0;
};

// Counts k-cliques on a directionalized DAG with the bit-matrix
// rebuild-per-level pivoting recursion.
GpuPivotModelResult CountCliquesGpuPivotModel(const Graph& dag,
                                              std::uint32_t k,
                                              int num_threads = 0);

}  // namespace pivotscale

#endif  // PIVOTSCALE_BASELINES_GPU_PIVOT_MODEL_H_
