#include "sim/scaling_sim.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "util/stats.h"

namespace pivotscale {

ScalingSimResult SimulateScaling(const WorkTrace& trace,
                                 const ScalingSimConfig& config) {
  if (config.num_threads < 1)
    throw std::invalid_argument("SimulateScaling: num_threads < 1");
  if (config.chunk_size < 1)
    throw std::invalid_argument("SimulateScaling: chunk_size < 1");

  const int T = config.num_threads;
  const std::size_t n = trace.roots.size();

  ScalingSimResult result;
  result.thread_busy_seconds.assign(T, 0.0);
  result.serial_seconds =
      static_cast<double>(trace.TotalNanos()) * 1e-9;

  // Per-root simulated seconds under the configured work model.
  std::vector<double> root_seconds(n);
  bool use_units = config.work_model == WorkModel::kDeterministicUnits;
  double total_units = 0;
  if (use_units) {
    for (const RootWork& w : trace.roots)
      total_units += static_cast<double>(w.edge_ops + w.build_ops +
                                         config.per_root_overhead_units);
    if (total_units <= 0) use_units = false;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (use_units) {
      const double units = static_cast<double>(
          trace.roots[i].edge_ops + trace.roots[i].build_ops +
          config.per_root_overhead_units);
      root_seconds[i] = result.serial_seconds * units / total_units;
    } else {
      root_seconds[i] = static_cast<double>(trace.roots[i].nanos) * 1e-9;
    }
  }

  // Compute-side makespan from the scheduling policy.
  double makespan = 0;
  if (config.static_schedule) {
    // Contiguous block per thread, like schedule(static) over the vertex
    // range: skewed graphs concentrate heavy roots in few blocks.
    const std::size_t per = (n + T - 1) / std::max<std::size_t>(1, T);
    for (int t = 0; t < T; ++t) {
      const std::size_t begin = std::min(n, per * t);
      const std::size_t end = std::min(n, begin + per);
      double busy = 0;
      for (std::size_t i = begin; i < end; ++i) busy += root_seconds[i];
      result.thread_busy_seconds[t] = busy;
      makespan = std::max(makespan, busy);
    }
  } else {
    // Dynamic chunked self-scheduling: each chunk of consecutive roots goes
    // to the thread that frees up first (min-heap of completion times).
    using HeapEntry = std::pair<double, int>;  // (available time, thread)
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>
        heap;
    for (int t = 0; t < T; ++t) heap.emplace(0.0, t);
    const std::size_t chunk = static_cast<std::size_t>(config.chunk_size);
    for (std::size_t begin = 0; begin < n; begin += chunk) {
      const std::size_t end = std::min(n, begin + chunk);
      double work = 0;
      for (std::size_t i = begin; i < end; ++i) work += root_seconds[i];
      auto [available, t] = heap.top();
      heap.pop();
      result.thread_busy_seconds[t] += work;
      heap.emplace(available + work, t);
    }
    while (!heap.empty()) {
      makespan = std::max(makespan, heap.top().first);
      heap.pop();
    }
  }

  // Memory-side floor: the memory-bound share of the total work does not
  // scale once the aggregate footprint spills the modeled cache.
  if (config.per_thread_footprint_bytes > 0 && T > 1) {
    const double aggregate =
        static_cast<double>(config.per_thread_footprint_bytes) *
        static_cast<double>(T);
    const double cache = static_cast<double>(config.cache_capacity_bytes);
    if (aggregate > cache) {
      const double spill_share = 1.0 - cache / aggregate;  // in (0, 1)
      const double memory_floor =
          result.serial_seconds * config.memory_time_fraction * spill_share;
      makespan = std::max(makespan, memory_floor);
    }
  }

  result.makespan_seconds = makespan;
  result.busy_cov = CoeffOfVariation(result.thread_busy_seconds);
  return result;
}

double SimulateSpeedup(const WorkTrace& trace,
                       const ScalingSimConfig& config) {
  ScalingSimConfig one = config;
  one.num_threads = 1;
  const double base = SimulateScaling(trace, one).makespan_seconds;
  const double at_t = SimulateScaling(trace, config).makespan_seconds;
  return at_t > 0 ? base / at_t : 0;
}

}  // namespace pivotscale
