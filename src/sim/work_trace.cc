#include "sim/work_trace.h"

#include <algorithm>

namespace pivotscale {

std::uint64_t WorkTrace::TotalNanos() const {
  std::uint64_t total = 0;
  for (const RootWork& w : roots) total += w.nanos;
  return total;
}

std::uint64_t WorkTrace::TotalEdgeOps() const {
  std::uint64_t total = 0;
  for (const RootWork& w : roots) total += w.edge_ops;
  return total;
}

std::uint64_t WorkTrace::MaxNanos() const {
  std::uint64_t max = 0;
  for (const RootWork& w : roots) max = std::max(max, w.nanos);
  return max;
}

}  // namespace pivotscale
