// Parallel-scaling simulator (the Figure 11 substitution).
//
// This reproduction runs on a single core, so multi-thread speedups cannot
// be measured directly. Instead, the real counter records a per-root work
// trace (sim/work_trace.h) and this simulator replays it under an
// OpenMP-style scheduler with T virtual threads:
//
//  * scheduling: dynamic chunked self-scheduling (default; matches the
//    driver's schedule(dynamic, chunk)) or static block partitioning (the
//    naive-parallel model). Each chunk goes to the earliest-available
//    thread; makespan and per-thread busy times fall out.
//  * memory contention: when the aggregate thread-local structure footprint
//    (per_thread_footprint_bytes * T) exceeds the modeled shared cache, a
//    fraction of the work time (memory_time_fraction) stops scaling — it is
//    serialized behind the memory system. This reproduces the dense
//    structure's >=32-thread plateau while compact structures keep scaling.
//
// Validity: the paper itself argues (Section IV) that counting-phase
// scaling is determined by (a) the work distribution across roots — which
// the trace captures exactly — and (b) memory pressure from thread-local
// structures — which the footprint model captures. Absolute wall-clock is
// the only thing requiring real cores.
#ifndef PIVOTSCALE_SIM_SCALING_SIM_H_
#define PIVOTSCALE_SIM_SCALING_SIM_H_

#include <cstdint>
#include <vector>

#include "sim/work_trace.h"

namespace pivotscale {

// How a root's simulated work is derived from its trace record.
enum class WorkModel {
  // Deterministic units: edge_ops + build_ops + a constant per-root
  // overhead, scaled so the trace's total measured time is preserved.
  // Immune to timer granularity and OS-preemption spikes, which on a
  // shared single core routinely charge a multi-millisecond timeslice to
  // a sub-microsecond root and would otherwise fabricate heavy roots.
  kDeterministicUnits,
  // Raw per-root measured nanoseconds (use on dedicated hardware).
  kMeasuredNanos,
};

struct ScalingSimConfig {
  int num_threads = 64;
  WorkModel work_model = WorkModel::kDeterministicUnits;
  // Constant per-root overhead, in edge-op units (scheduling, timers,
  // subgraph reset), for the deterministic model.
  std::uint64_t per_root_overhead_units = 4;
  // Roots per scheduling grant (dynamic mode).
  int chunk_size = 16;
  // true = static block partitioning (naive parallelization model).
  bool static_schedule = false;

  // Memory contention model. footprint = 0 disables it.
  std::size_t per_thread_footprint_bytes = 0;
  std::size_t cache_capacity_bytes = std::size_t{256} << 20;  // paper's LLC
  // Fraction of counting time that is memory-system time once the aggregate
  // footprint fully spills the cache; bounds the attainable speedup at
  // 1 / memory_time_fraction.
  double memory_time_fraction = 0.03;
};

struct ScalingSimResult {
  double makespan_seconds = 0;
  std::vector<double> thread_busy_seconds;
  // Coefficient of variation of per-thread busy time (load balance; the
  // paper measures 0.03 across its suite).
  double busy_cov = 0;
  // makespan(1 thread) / makespan(T threads), computed by the caller via a
  // second run, or use SimulateSpeedup below.
  double serial_seconds = 0;  // sum of all work (the T=1 makespan)
};

// Replays `trace` on the simulated machine.
ScalingSimResult SimulateScaling(const WorkTrace& trace,
                                 const ScalingSimConfig& config);

// Convenience: self-relative speedup at `config.num_threads` versus the
// same configuration at one thread.
double SimulateSpeedup(const WorkTrace& trace,
                       const ScalingSimConfig& config);

}  // namespace pivotscale

#endif  // PIVOTSCALE_SIM_SCALING_SIM_H_
