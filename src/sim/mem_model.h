// Analytic memory-footprint model for the subgraph structures.
//
// Section VI-D compares process memory across structures at 64 threads.
// Measured workspace bytes are exact for the threads that actually ran;
// this model extrapolates a structure's thread-local footprint to any
// thread count so the memory study and the scaling simulation can reason
// about 64-thread configurations on a single-core host.
#ifndef PIVOTSCALE_SIM_MEM_MODEL_H_
#define PIVOTSCALE_SIM_MEM_MODEL_H_

#include <cstdint>

#include "graph/graph.h"
#include "pivot/count.h"

namespace pivotscale {

// Estimated bytes of one thread's subgraph workspace for the given
// structure on a DAG with `num_nodes` vertices and maximum out-degree
// `max_out_degree`.
//
// dense:  |V| adjacency-row headers + |V| degrees + 2|V| flag bytes,
//         plus payload bounded by max_out_degree^2 entries.
// sparse: compact slot arrays + hash index, all O(max_out_degree), plus the
//         same payload bound.
// remap:  like sparse but with plain arrays (hash map only during build).
std::size_t EstimateStructureBytes(SubgraphKind kind, NodeId num_nodes,
                                   EdgeId max_out_degree);

// Aggregate footprint of `threads` thread-local structures. Prefers the
// measured single-thread workspace when available (measured > 0), falling
// back to the estimate.
std::size_t AggregateWorkspaceBytes(SubgraphKind kind, NodeId num_nodes,
                                    EdgeId max_out_degree, int threads,
                                    std::size_t measured_per_thread = 0);

}  // namespace pivotscale

#endif  // PIVOTSCALE_SIM_MEM_MODEL_H_
