#include "sim/cache_sim.h"

#include <stdexcept>

namespace pivotscale {

namespace {
int Log2Exact(std::size_t v) {
  int shift = 0;
  while ((std::size_t{1} << shift) < v) ++shift;
  if ((std::size_t{1} << shift) != v)
    throw std::invalid_argument("CacheSim: size not a power of two");
  return shift;
}
}  // namespace

CacheSim::CacheSim(std::size_t capacity_bytes, int associativity,
                   int line_bytes)
    : ways_(associativity) {
  if (associativity < 1 || line_bytes < 1 || capacity_bytes == 0)
    throw std::invalid_argument("CacheSim: bad geometry");
  line_shift_ = Log2Exact(static_cast<std::size_t>(line_bytes));
  const std::size_t lines = capacity_bytes / line_bytes;
  if (lines % associativity != 0)
    throw std::invalid_argument(
        "CacheSim: capacity not divisible into sets");
  sets_ = lines / associativity;
  Log2Exact(sets_);  // require power-of-two sets for masked indexing
  tags_.assign(sets_ * ways_, 0);
  lru_.assign(sets_ * ways_, 0);
}

void CacheSim::Access(std::uint64_t address) {
  const std::uint64_t line = address >> line_shift_;
  const std::size_t set = static_cast<std::size_t>(line) & (sets_ - 1);
  const std::size_t base = set * static_cast<std::size_t>(ways_);
  // Tag 0 collides with "invalid"; offset by 1 so every real tag is nonzero.
  const std::uint64_t tag = line + 1;

  ++clock_;
  std::size_t victim = base;
  std::uint64_t oldest = ~std::uint64_t{0};
  for (int w = 0; w < ways_; ++w) {
    const std::size_t slot = base + w;
    if (tags_[slot] == tag) {
      lru_[slot] = clock_;
      ++hits_;
      return;
    }
    if (lru_[slot] < oldest) {
      oldest = lru_[slot];
      victim = slot;
    }
  }
  ++misses_;
  tags_[victim] = tag;
  lru_[victim] = clock_;
}

void CacheSim::Reset() {
  std::fill(tags_.begin(), tags_.end(), 0);
  std::fill(lru_.begin(), lru_.end(), 0);
  hits_ = misses_ = 0;
  clock_ = 0;
}

}  // namespace pivotscale
