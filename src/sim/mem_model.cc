#include "sim/mem_model.h"

namespace pivotscale {

std::size_t EstimateStructureBytes(SubgraphKind kind, NodeId num_nodes,
                                   EdgeId max_out_degree) {
  const std::size_t n = num_nodes;
  const std::size_t d = max_out_degree;
  // Payload: the first-level subgraph stores each member edge twice; the
  // member count is <= d and each member's list is <= d entries.
  const std::size_t payload = d * d * sizeof(std::uint32_t);
  switch (kind) {
    case SubgraphKind::kDense:
      // Row headers (vector: ptr+size+cap), degree array, 2 flag byte maps.
      return n * (24 + sizeof(std::uint32_t) + 2) + payload;
    case SubgraphKind::kSparse:
      // Slot arrays sized d plus a hash index (~32 B/entry + buckets).
      return d * (24 + sizeof(std::uint32_t) + 1 + 40) + payload;
    case SubgraphKind::kRemap:
      // Slot arrays sized d; hash map only alive during build.
      return d * (24 + sizeof(std::uint32_t) + 1 + 32) + payload;
  }
  return 0;
}

std::size_t AggregateWorkspaceBytes(SubgraphKind kind, NodeId num_nodes,
                                    EdgeId max_out_degree, int threads,
                                    std::size_t measured_per_thread) {
  const std::size_t per_thread =
      measured_per_thread > 0
          ? measured_per_thread
          : EstimateStructureBytes(kind, num_nodes, max_out_degree);
  return per_thread * static_cast<std::size_t>(threads);
}

}  // namespace pivotscale
