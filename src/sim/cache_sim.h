// Set-associative LRU cache simulator (the LLC-MPKI substitution).
//
// Table II and Section VI-D attribute the degree ordering's and the compact
// subgraph structures' speed to last-level-cache behaviour. Hardware
// counters are unavailable here, so the TraceStats counting policy streams
// modeled addresses of subgraph accesses into this simulator and the
// benches report its miss rate / misses-per-kilo-op in place of LLC MPKI.
// The default geometry approximates one core's slice-adjusted share of the
// paper's 256 MB LLC.
#ifndef PIVOTSCALE_SIM_CACHE_SIM_H_
#define PIVOTSCALE_SIM_CACHE_SIM_H_

#include <cstdint>
#include <vector>

namespace pivotscale {

class CacheSim {
 public:
  // capacity_bytes must be a multiple of associativity * line_bytes; both
  // the set count and line size should be powers of two.
  CacheSim(std::size_t capacity_bytes, int associativity, int line_bytes);

  // Simulates one access; records a hit or a miss (with LRU fill).
  void Access(std::uint64_t address);

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t accesses() const { return hits_ + misses_; }
  double MissRate() const {
    return accesses() == 0
               ? 0
               : static_cast<double>(misses_) /
                     static_cast<double>(accesses());
  }
  // Misses per thousand accesses — the MPKI analog over modeled accesses.
  double MissesPerKiloAccess() const { return MissRate() * 1000.0; }

  void Reset();

  std::size_t num_sets() const { return sets_; }
  int associativity() const { return ways_; }

 private:
  std::size_t sets_;
  int ways_;
  int line_shift_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  // tags_[set * ways + way]; lru_[same] = last-use stamp (0 = invalid).
  std::vector<std::uint64_t> tags_;
  std::vector<std::uint64_t> lru_;
  std::uint64_t clock_ = 0;
};

}  // namespace pivotscale

#endif  // PIVOTSCALE_SIM_CACHE_SIM_H_
