// Per-root work traces.
//
// The scaling study (Figure 11) needs the distribution of work across root
// vertices: on real silicon that distribution is what the OpenMP dynamic
// scheduler balances, and on this single-core reproduction it is the input
// to the scheduler simulation in scaling_sim.h. A trace records, for every
// root vertex processed, the measured nanoseconds and the adjacency-entry
// operation count (a machine-independent work measure).
#ifndef PIVOTSCALE_SIM_WORK_TRACE_H_
#define PIVOTSCALE_SIM_WORK_TRACE_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace pivotscale {

struct RootWork {
  NodeId root = 0;
  std::uint64_t nanos = 0;      // measured wall time for this root
  std::uint64_t edge_ops = 0;   // adjacency entries scanned for this root
  std::uint64_t build_ops = 0;  // subgraph-build size proxy (out-degree)
};

struct WorkTrace {
  std::vector<RootWork> roots;

  std::uint64_t TotalNanos() const;
  std::uint64_t TotalEdgeOps() const;
  // Largest single-root work — the lower bound of any schedule's makespan.
  std::uint64_t MaxNanos() const;
};

}  // namespace pivotscale

#endif  // PIVOTSCALE_SIM_WORK_TRACE_H_
