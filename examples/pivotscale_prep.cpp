// Builds a preprocessed .psx store artifact from an edge list or .psg
// graph, so pivotscale_serve can answer clique queries without re-running
// the heuristic / ordering / directionalize phases.
//
// Usage:
//   pivotscale_prep --graph in.el --out graph.psx
//                   [--ordering heuristic|core|approx|kcore|centrality|degree]
//                   [--eps -0.5] [--heuristic-min-nodes N] [--threads N]
//                   [--skip-degeneracy] [--telemetry-json out.json]
//
// Without --graph a demo graph is generated (the CI loop executes every
// example bare). See docs/serving.md for the artifact layout.
#include <iostream>
#include <stdexcept>

#include "exec/thread_budget.h"
#include "pivotscale.h"
#include "store/artifact.h"
#include "util/cli.h"
#include "util/table.h"
#include "util/telemetry.h"
#include "util/version.h"

using namespace pivotscale;

namespace {

OrderingSpec ParseOrdering(const std::string& name, double eps) {
  if (name == "core") return {OrderingKind::kCore};
  if (name == "approx") return {OrderingKind::kApproxCore, eps};
  if (name == "kcore") return {OrderingKind::kKCore};
  if (name == "centrality") return {OrderingKind::kCentrality, 0, 3};
  if (name == "degree") return {OrderingKind::kDegree};
  throw std::runtime_error("unknown --ordering: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    ArgParser args(argc, argv);
    args.RejectUnknown({"graph", "out", "ordering", "eps",
                        "heuristic-min-nodes", "skip-degeneracy",
                        "threads", "telemetry-json", "version"});
    if (args.GetBool("version", false)) {
      std::cout << "pivotscale_prep " << VersionString() << "\n";
      return 0;
    }
    // The build pipeline's parallel phases take their teams from the
    // shared budget, so capping the budget is the whole-binary --threads.
    if (args.Has("threads"))
      ThreadBudget::Global().SetCapacity(args.GetThreads());
    const std::string path = args.GetString("graph", "");
    const std::string out = args.GetString("out", "graph.psx");

    Graph g;
    if (!path.empty()) {
      Timer load_timer;
      g = LoadGraph(path);
      std::cout << "loaded " << path << " in "
                << TablePrinter::Cell(load_timer.Seconds(), 2) << "s\n";
    } else {
      EdgeList edges = Rmat(12, 8.0, 1);
      PlantCliques(&edges, 4096, 8, 8, 16, 2);
      g = BuildGraph(std::move(edges));
      std::cout << "no --graph given; generated a demo graph\n";
    }
    std::cout << "graph: " << g.NumNodes() << " vertices, "
              << g.NumUndirectedEdges() << " edges\n";

    ArtifactBuildOptions options;
    options.compute_degeneracy = !args.GetBool("skip-degeneracy", false);
    options.heuristic.min_nodes =
        static_cast<NodeId>(args.GetInt("heuristic-min-nodes", 15'000));
    const std::string ordering = args.GetString("ordering", "heuristic");
    if (ordering != "heuristic")
      options.forced_ordering =
          ParseOrdering(ordering, args.GetDouble("eps", -0.5));

    const std::string telemetry_path =
        args.GetString("telemetry-json", "");
    TelemetryRegistry telemetry;
    if (!telemetry_path.empty()) options.telemetry = &telemetry;

    Timer build_timer;
    const GraphArtifact artifact = BuildArtifact(g, options);
    const double build_seconds = build_timer.Seconds();

    Timer write_timer;
    WriteArtifact(out, artifact);
    const double write_seconds = write_timer.Seconds();

    TablePrinter table("artifact " + out, {"field", "value"});
    table.AddRow({"ordering", artifact.ordering_name});
    table.AddRow({"max out-degree",
                  TablePrinter::Cell(std::uint64_t{artifact.max_out_degree})});
    table.AddRow({"degeneracy",
                  options.compute_degeneracy
                      ? TablePrinter::Cell(std::uint64_t{artifact.degeneracy})
                      : std::string("(skipped)")});
    table.AddRow({"heap bytes",
                  TablePrinter::Cell(std::uint64_t{artifact.HeapBytes()})});
    table.AddRow({"build seconds", TablePrinter::Cell(build_seconds, 3)});
    table.AddRow({"write seconds", TablePrinter::Cell(write_seconds, 3)});
    table.Print();

    if (!telemetry_path.empty()) {
      WriteRunReport(telemetry_path, telemetry);
      std::cout << "telemetry written to " << telemetry_path << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
