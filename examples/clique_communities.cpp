// k-clique percolation community detection (Palla et al., Nature 2005) —
// one of the clique-counting applications the paper's introduction cites.
//
// Two k-cliques are adjacent if they share k-1 vertices; communities are
// the connected components of that adjacency. This example enumerates
// k-cliques with the library's DAG enumeration (listing, not just
// counting), unions adjacent cliques, and prints the community size
// distribution. PivotScale's counting pass is used first to pick a k small
// enough for enumeration to be cheap — exactly the counting-before-listing
// workflow the clique-counting literature recommends.
//
// Usage: clique_communities [--graph path.el] [--k 4]
#include <algorithm>
#include <iostream>
#include <map>
#include <numeric>
#include <vector>

#include "pivotscale.h"
#include "util/cli.h"
#include "util/table.h"

using namespace pivotscale;

namespace {

// Disjoint-set union over clique ids.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t Find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(std::size_t a, std::size_t b) {
    a = Find(a);
    b = Find(b);
    if (a != b) parent_[a] = b;
  }

 private:
  std::vector<std::size_t> parent_;
};

// Lists all k-cliques via the canonical DAG extension (same recursion as
// the enumeration baseline, but materializing members).
void ListCliques(const Graph& dag, std::uint32_t k,
                 std::vector<std::vector<NodeId>>* out) {
  std::vector<std::uint32_t> label(dag.NumNodes(), 0);
  std::vector<std::vector<NodeId>> bufs(k + 1);
  std::vector<NodeId> chosen;

  struct Rec {
    const Graph& dag;
    std::uint32_t k;
    std::vector<std::uint32_t>& label;
    std::vector<std::vector<NodeId>>& bufs;
    std::vector<NodeId>& chosen;
    std::vector<std::vector<NodeId>>* out;
    void Go(std::uint32_t depth) {
      const auto& cand = bufs[depth];
      if (depth == k) {
        for (NodeId w : cand) {
          chosen.push_back(w);
          out->push_back(chosen);
          chosen.pop_back();
        }
        return;
      }
      auto& next = bufs[depth + 1];
      for (NodeId u : cand) {
        next.clear();
        for (NodeId w : dag.Neighbors(u))
          if (label[w] == depth) {
            label[w] = depth + 1;
            next.push_back(w);
          }
        chosen.push_back(u);
        Go(depth + 1);
        chosen.pop_back();
        for (NodeId w : next) label[w] = depth;
      }
    }
  } rec{dag, k, label, bufs, chosen, out};

  for (NodeId v = 0; v < dag.NumNodes(); ++v) {
    if (k == 1) {
      out->push_back({v});
      continue;
    }
    auto& cand = bufs[2];
    cand.clear();
    for (NodeId u : dag.Neighbors(v)) {
      cand.push_back(u);
      label[u] = 2;
    }
    chosen.assign(1, v);
    rec.Go(2);
    chosen.clear();
    for (NodeId u : cand) label[u] = 0;
  }
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const auto k = static_cast<std::uint32_t>(args.GetInt("k", 4));
  const std::string path = args.GetString("graph", "");

  Graph g;
  if (!path.empty()) {
    g = LoadGraph(path);
  } else {
    EdgeList edges = CommunityModel(/*n=*/3000, /*communities=*/500,
                                    /*min_size=*/4, /*max_size=*/9,
                                    /*intra_p=*/0.9, /*seed=*/11);
    EdgeList noise = GnM(3000, 2000, 12);
    edges.insert(edges.end(), noise.begin(), noise.end());
    g = BuildGraph(std::move(edges));
  }

  // Counting first: if there are billions of k-cliques, listing them is
  // hopeless and the user should raise k or shrink the graph.
  const BigCount count = CountKCliquesSimple(g, k);
  std::cout << g.NumNodes() << " vertices, " << g.NumUndirectedEdges()
            << " edges; " << count.ToString() << " " << k << "-cliques\n";
  if (count > BigCount(5'000'000)) {
    std::cout << "too many cliques to list; raise --k\n";
    return 1;
  }

  const Graph dag = Directionalize(g, CoreOrdering(g).ranks);
  std::vector<std::vector<NodeId>> cliques;
  ListCliques(dag, k, &cliques);

  // Percolation: cliques sharing k-1 vertices are unioned. Index cliques
  // by each (k-1)-subset via sorting: two cliques sharing k-1 vertices
  // share a subset key.
  UnionFind uf(cliques.size());
  std::map<std::vector<NodeId>, std::size_t> subset_owner;
  std::vector<NodeId> key;
  for (std::size_t c = 0; c < cliques.size(); ++c) {
    std::vector<NodeId> members = cliques[c];
    std::sort(members.begin(), members.end());
    for (std::uint32_t skip = 0; skip < k; ++skip) {
      key.clear();
      for (std::uint32_t i = 0; i < k; ++i)
        if (i != skip) key.push_back(members[i]);
      const auto [it, inserted] = subset_owner.try_emplace(key, c);
      if (!inserted) uf.Union(c, it->second);
    }
  }

  // Community = set of vertices of all cliques in one component.
  std::map<std::size_t, std::vector<NodeId>> communities;
  for (std::size_t c = 0; c < cliques.size(); ++c) {
    auto& verts = communities[uf.Find(c)];
    verts.insert(verts.end(), cliques[c].begin(), cliques[c].end());
  }
  std::map<std::size_t, std::size_t> size_histogram;
  for (auto& [root, verts] : communities) {
    std::sort(verts.begin(), verts.end());
    verts.erase(std::unique(verts.begin(), verts.end()), verts.end());
    ++size_histogram[verts.size()];
  }

  TablePrinter table(
      std::to_string(k) + "-clique percolation communities (" +
          std::to_string(communities.size()) + " total from " +
          std::to_string(cliques.size()) + " cliques)",
      {"community size (vertices)", "count"});
  for (const auto& [size, n] : size_histogram)
    table.AddRow({TablePrinter::Cell(std::uint64_t{size}),
                  TablePrinter::Cell(std::uint64_t{n})});
  table.Print();
  return 0;
}
