// Concurrent TCP clique-query server over preprocessed .psx artifacts.
//
// The network sibling of pivotscale_serve: the same NDJSON protocol
// (src/service/protocol.h — one request per line, blank line flushes the
// connection's pending lines as one deduplicated batch), served to many
// clients at once by an epoll event loop (src/net/event_loop.*) in front
// of a fixed worker pool with a bounded admission queue
// (src/net/worker_pool.*). Overload sheds with
// {"ok":false,"error":"overloaded"}; per-request "deadline_ms" expires
// with "deadline exceeded"; SIGTERM/SIGINT drain gracefully (stop
// accepting, finish in-flight batches, flush every response, exit 0).
//
// Usage:
//   pivotscale_served --port P [--bind 127.0.0.1] [--max-connections N]
//                     [--queue-depth N] [--workers N]
//                     [--max-line-bytes N] [--cache-bytes N] [--threads N]
//                     [--preload a.psx,b.psx] [--telemetry-json out.json]
//                     [--port-file path] [--version]
//
// --port 0 picks an ephemeral port; the bound port is printed on stdout
// and, with --port-file, written bare to that file (for scripts).
// Run bare (no --port), the binary prints the usage banner and exits so
// the CI examples loop terminates.
#include <csignal>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>

#include "net/event_loop.h"
#include "service/query_engine.h"
#include "util/cli.h"
#include "util/telemetry.h"
#include "util/version.h"

using namespace pivotscale;

namespace {

constexpr char kUsage[] =
    "pivotscale_served: concurrent NDJSON clique-query server (TCP)\n"
    "  pivotscale_served --port P [--bind 127.0.0.1]\n"
    "                    [--max-connections N] [--queue-depth N]\n"
    "                    [--workers N] [--max-line-bytes N]\n"
    "                    [--cache-bytes N] [--threads N]\n"
    "                    [--preload a.psx,b.psx]\n"
    "                    [--telemetry-json out.json] [--port-file path]\n"
    "  request : {\"id\":1,\"graph\":\"g.psx\",\"k\":8}  (id required, >= 0)\n"
    "            optional keys: all_k, per_vertex, top, structure,\n"
    "            deadline_ms (expired work answers \"deadline exceeded\")\n"
    "  a blank line flushes the pending lines as one deduplicated batch;\n"
    "  a full admission queue answers \"overloaded\" instead of queueing.\n"
    "SIGTERM/SIGINT drain gracefully. See docs/serving.md.\n";

NetServer* g_server = nullptr;

void HandleSignal(int) {
  if (g_server != nullptr) g_server->RequestDrain();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    ArgParser args(argc, argv);
    args.RejectUnknown({"port", "bind", "max-connections", "queue-depth",
                        "workers", "max-line-bytes", "cache-bytes",
                        "threads", "preload", "telemetry-json",
                        "port-file", "version", "help"});
    if (args.GetBool("version", false)) {
      std::cout << "pivotscale_served " << VersionString() << "\n";
      return 0;
    }
    if (args.GetBool("help", false) || !args.Has("port")) {
      std::cout << kUsage;
      return 0;
    }

    const std::string telemetry_path =
        args.GetString("telemetry-json", "");
    TelemetryRegistry telemetry;

    QueryEngineOptions engine_options;
    engine_options.cache_byte_budget = static_cast<std::size_t>(
        args.GetInt("cache-bytes", std::int64_t{1} << 30));
    engine_options.num_threads = args.GetThreads();
    if (!telemetry_path.empty()) engine_options.telemetry = &telemetry;
    QueryEngine engine(engine_options);

    std::stringstream preload_list(args.GetString("preload", ""));
    std::string preload_path;
    while (std::getline(preload_list, preload_path, ',')) {
      if (preload_path.empty()) continue;
      engine.Preload(preload_path);
      std::cerr << "preloaded " << preload_path << "\n";
    }

    NetServerOptions options;
    options.bind_address = args.GetString("bind", "127.0.0.1");
    options.port = static_cast<std::uint16_t>(args.GetInt("port", 0));
    options.max_connections =
        static_cast<int>(args.GetInt("max-connections", 1024));
    options.queue_depth =
        static_cast<std::size_t>(args.GetInt("queue-depth", 64));
    options.workers = args.GetThreads("workers", 2);
    options.max_line_bytes = static_cast<std::size_t>(args.GetInt(
        "max-line-bytes",
        static_cast<std::int64_t>(ReadLineFramer::kDefaultMaxLineBytes)));
    if (!telemetry_path.empty()) options.telemetry = &telemetry;

    NetServer server(&engine, options);
    server.Start();
    g_server = &server;
    std::signal(SIGTERM, HandleSignal);
    std::signal(SIGINT, HandleSignal);

    const std::string port_file = args.GetString("port-file", "");
    if (!port_file.empty()) {
      std::ofstream out(port_file);
      if (!out)
        throw std::runtime_error("cannot write --port-file " + port_file);
      out << server.port() << "\n";
    }
    std::cout << "pivotscale_served: listening on " << options.bind_address
              << ":" << server.port() << " (workers=" << options.workers
              << ", queue-depth=" << options.queue_depth << ")"
              << std::endl;

    server.Run();
    g_server = nullptr;
    std::cout << "pivotscale_served: drained, exiting\n";

    if (!telemetry_path.empty()) {
      WriteRunReport(telemetry_path, telemetry);
      std::cerr << "telemetry written to " << telemetry_path << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
