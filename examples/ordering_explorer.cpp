// Ordering explorer: run every ordering on a graph and report quality,
// time, resulting counting time, and what the heuristic would pick — a
// hands-on tour of the paper's Section III tradeoffs for your own graph.
//
// Usage: ordering_explorer [--graph path.el] [--k 8] [--eps -0.5]
#include <iostream>

#include "pivotscale.h"
#include "util/cli.h"
#include "util/table.h"

using namespace pivotscale;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const auto k = static_cast<std::uint32_t>(args.GetInt("k", 8));
  const double eps = args.GetDouble("eps", -0.5);
  const std::string path = args.GetString("graph", "");

  Graph g;
  if (!path.empty()) {
    g = LoadGraph(path);
  } else {
    EdgeList edges = Rmat(13, 8.0, 21);
    PlantCliques(&edges, 4096, 12, 8, 18, 22);
    g = BuildGraph(std::move(edges));
    std::cout << "Generated an RMAT social graph with planted cliques\n";
  }
  std::cout << "graph: " << g.NumNodes() << " vertices, "
            << g.NumUndirectedEdges() << " edges, degeneracy "
            << Degeneracy(g) << "\n\n";

  const std::vector<OrderingSpec> specs = {
      {OrderingKind::kCore},
      {OrderingKind::kApproxCore, eps},
      {OrderingKind::kApproxCore, 0.1},
      {OrderingKind::kKCore},
      {OrderingKind::kCentrality, 0, 3},
      {OrderingKind::kDegree},
  };

  TablePrinter table("ordering tradeoffs (k=" + std::to_string(k) + ")",
                     {"ordering", "order (s)", "max out-deg", "count (s)",
                      "total (s)", "k-cliques"});
  for (const OrderingSpec& spec : specs) {
    Timer order_timer;
    const Ordering ordering = ComputeOrdering(g, spec);
    const double order_seconds = order_timer.Seconds();

    Timer count_timer;
    const Graph dag = Directionalize(g, ordering.ranks);
    CountOptions options;
    options.k = k;
    const CountResult result = CountCliques(dag, options);
    const double count_seconds = count_timer.Seconds();

    table.AddRow({ordering.name, TablePrinter::Cell(order_seconds, 4),
                  TablePrinter::Cell(std::uint64_t{MaxOutDegree(dag)}),
                  TablePrinter::Cell(count_seconds, 4),
                  TablePrinter::Cell(order_seconds + count_seconds, 4),
                  result.total.ToString()});
  }
  table.Print();

  HeuristicConfig config;
  config.min_nodes = g.NumNodes() / 2;  // let the probes decide
  const HeuristicDecision d = SelectOrdering(g, config);
  std::cout << "\nheuristic: a=" << d.a << " a/|V|="
            << TablePrinter::Cell(d.a_ratio, 5)
            << " common=" << TablePrinter::Cell(d.common_fraction, 2)
            << " -> "
            << (d.use_core_approx ? "core approximation" : "degree ordering")
            << "\n";
  return 0;
}
