// k-clique densest subgraph discovery — the application the paper's
// conclusion points per-vertex counts at (and one of the densest-subgraph
// use cases its introduction cites).
//
// Peels the graph by per-vertex k-clique counts and reports the densest
// prefix, then contrasts k-clique density with plain edge density: on a
// social-style graph the two disagree, which is exactly why clique-based
// density is used for community cores.
//
// Usage: densest_subgraph [--graph path.el] [--k 4] [--peel 0.1]
#include <iostream>

#include "pivotscale.h"
#include "util/cli.h"
#include "util/table.h"

using namespace pivotscale;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const auto k = static_cast<std::uint32_t>(args.GetInt("k", 4));
  const std::string path = args.GetString("graph", "");

  Graph g;
  if (!path.empty()) {
    g = LoadGraph(path);
  } else {
    // Sparse social noise with one strong community and a planted core.
    EdgeList edges = GnM(5000, 12000, 31);
    EdgeList comm = CommunityModel(5000, 400, 3, 8, 0.8, 32);
    edges.insert(edges.end(), comm.begin(), comm.end());
    PlantCliques(&edges, 5000, 1, 14, 14, 33);
    g = BuildGraph(std::move(edges));
    std::cout << "generated a social graph with a planted 14-clique core\n";
  }
  std::cout << "graph: " << g.NumNodes() << " vertices, "
            << g.NumUndirectedEdges() << " edges\n\n";

  DensestSubgraphConfig config;
  config.peel_fraction = args.GetDouble("peel", 0.1);
  const DensestSubgraphResult result =
      KCliqueDensestSubgraph(g, k, config);

  std::cout << k << "-clique densest subgraph: " << result.vertices.size()
            << " vertices, " << result.cliques.ToString() << " " << k
            << "-cliques, density "
            << TablePrinter::Cell(result.density, 2) << " cliques/vertex ("
            << result.rounds << " peel rounds, "
            << TablePrinter::Cell(result.seconds, 2) << "s)\n";

  // Contrast with the whole graph's averages.
  const BigCount total = CountKCliquesSimple(g, k);
  std::cout << "whole graph: "
            << TablePrinter::Cell(
                   total.AsDouble() / static_cast<double>(g.NumNodes()), 2)
            << " cliques/vertex, "
            << TablePrinter::Cell(2.0 * g.AverageDegree(), 2)
            << " edge-endpoints/vertex\n";

  // Edge density of the found core (cliques concentrate much harder than
  // edges do).
  const InducedResult core = InduceSubgraph(g, result.vertices);
  if (core.graph.NumNodes() > 0) {
    std::cout << "core edge density: "
              << TablePrinter::Cell(
                     static_cast<double>(
                         core.graph.NumUndirectedEdges()) /
                         core.graph.NumNodes(),
                     2)
              << " edges/vertex vs whole-graph "
              << TablePrinter::Cell(g.AverageDegree(), 2) << "\n";
  }
  return 0;
}
