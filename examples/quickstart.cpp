// Quickstart: count k-cliques in a graph with the full PivotScale pipeline.
//
// Usage:
//   quickstart [--graph path.el] [--k 8]
//
// Without --graph, a small synthetic social network is generated so the
// example runs out of the box.
#include <cstdio>
#include <iostream>

#include "pivotscale.h"
#include "util/cli.h"

using namespace pivotscale;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const std::uint32_t k =
      static_cast<std::uint32_t>(args.GetInt("k", 8));
  const std::string path = args.GetString("graph", "");

  Graph g;
  if (!path.empty()) {
    g = LoadGraph(path);
    std::cout << "Loaded " << path << "\n";
  } else {
    // A community-structured graph with a few thousand vertices.
    EdgeList edges = CommunityModel(/*n=*/4000, /*communities=*/900,
                                    /*min_size=*/3, /*max_size=*/9,
                                    /*intra_p=*/0.9, /*seed=*/42);
    PlantCliques(&edges, 4000, 5, 10, 14, 43);
    g = BuildGraph(std::move(edges));
    std::cout << "Generated a synthetic social network\n";
  }
  std::cout << "  vertices: " << g.NumNodes()
            << "  edges: " << g.NumUndirectedEdges()
            << "  avg degree: " << g.AverageDegree() << "\n";

  // The one-call pipeline: heuristic ordering selection, parallel ordering,
  // directionalization, and pivot-based counting.
  PivotScaleOptions options;
  options.k = k;
  // The heuristic's size gate is tuned for million-vertex graphs; drop it
  // so the demo exercises the full decision logic.
  options.heuristic.min_nodes = 1000;
  const PivotScaleResult result = CountKCliques(g, options);

  std::cout << "\n" << k << "-cliques: " << result.total.ToString() << "\n";
  std::cout << "ordering used: " << result.ordering_name
            << " (max out-degree " << result.max_out_degree << ")\n";
  std::printf(
      "phases: heuristic %.4fs | ordering %.4fs | directionalize %.4fs | "
      "counting %.4fs | total %.4fs\n",
      result.heuristic_seconds, result.ordering_seconds,
      result.directionalize_seconds, result.counting_seconds,
      result.total_seconds);
  return 0;
}
