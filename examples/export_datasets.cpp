// Exports the synthetic evaluation suite to files, so the graphs can be
// inspected, shared, or fed to other tools (text edge lists are
// SNAP-format compatible; .psg binaries reload fast via LoadGraph).
//
// Usage: export_datasets [--out DIR] [--scale 1.0] [--format el|psg|both]
#include <filesystem>
#include <iostream>

#include "pivotscale.h"
#include "util/cli.h"
#include "util/table.h"

using namespace pivotscale;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const std::string out = args.GetString("out", "datasets");
  // Small default scale: the bare run should finish in seconds and not
  // fill the working directory with hundreds of MB.
  const double scale = args.GetDouble("scale", 0.1);
  const std::string format = args.GetString("format", "psg");

  std::filesystem::create_directories(out);
  TablePrinter table("exported datasets (scale " +
                         TablePrinter::Cell(scale, 2) + ")",
                     {"graph", "|V|", "|E|", "files"});
  for (const std::string& name : DatasetNames()) {
    const Dataset d = MakeDataset(name, scale);
    std::string files;
    if (format == "el" || format == "both") {
      EdgeList edges;
      for (NodeId u = 0; u < d.graph.NumNodes(); ++u)
        for (NodeId v : d.graph.Neighbors(u))
          if (u < v) edges.emplace_back(u, v);
      const std::string path = out + "/" + name + ".el";
      WriteEdgeList(path, edges);
      files = path;
    }
    if (format == "psg" || format == "both") {
      const std::string path = out + "/" + name + ".psg";
      WriteBinaryGraph(path, d.graph);
      files += (files.empty() ? "" : " ") + path;
    }
    table.AddRow({d.name,
                  TablePrinter::Cell(std::uint64_t{d.graph.NumNodes()}),
                  TablePrinter::Cell(d.graph.NumUndirectedEdges()), files});
  }
  table.Print();
  std::cout << "reload with LoadGraph(\"" << out
            << "/<name>.psg\") or any SNAP-compatible tool (.el)\n";
  return 0;
}
