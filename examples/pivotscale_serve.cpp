// Clique-query server over preprocessed .psx artifacts.
//
// Speaks the newline-delimited JSON protocol of src/service/protocol.h on
// stdin/stdout: one request object per line, one response per line, in
// request order. A blank line (or end of input) flushes the accumulated
// lines as one batch through the QueryEngine, so same-graph k-queries
// inside a batch are answered from a single counting run. Lines go
// through the same ReadLineFramer as the TCP server (pivotscale_served):
// a trailing '\r' is stripped so CRLF clients parse, and a line over
// --max-line-bytes is answered with a per-line error instead of growing
// the buffer without bound.
//
// Usage:
//   pivotscale_serve [--batch requests.ndjson] [--cache-bytes N]
//                    [--threads N] [--preload a.psx,b.psx]
//                    [--max-line-bytes N] [--telemetry-json out.json]
//                    [--version]
//
// --batch replays a request file (benchmarking / CI smoke); without it,
// requests are read from stdin until EOF. Run with --help for the request
// schema. Executed bare (no stdin redirection is detected as an empty
// batch), the binary prints the usage banner and exits cleanly.
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "net/framer.h"
#include "service/protocol.h"
#include "service/query_engine.h"
#include "util/cli.h"
#include "util/telemetry.h"
#include "util/version.h"

using namespace pivotscale;

namespace {

constexpr char kUsage[] =
    "pivotscale_serve: NDJSON clique-query server over .psx artifacts\n"
    "  request : {\"id\":1,\"graph\":\"g.psx\",\"k\":8}  (id required, >= 0)\n"
    "            optional keys: all_k, per_vertex, top, structure,\n"
    "            deadline_ms (accepted; enforced by pivotscale_served)\n"
    "  response: {\"id\":1,\"ok\":true,\"k\":8,\"count\":\"...\",...}\n"
    "  a blank line flushes the pending lines as one deduplicated batch\n"
    "Build artifacts with pivotscale_prep; see docs/serving.md.\n";

struct PendingRequest {
  std::int64_t id = -1;
  bool parsed = false;
  std::string parse_error;
  ServiceQuery query;
};

// Parses the accumulated lines, runs the parseable ones as one batch, and
// writes one response line per request, in order.
void FlushBatch(QueryEngine& engine, std::vector<PendingRequest>* pending,
                std::ostream& out) {
  if (pending->empty()) return;
  std::vector<ServiceQuery> batch;
  for (const PendingRequest& req : *pending)
    if (req.parsed) batch.push_back(req.query);
  const std::vector<ServiceResult> results = engine.RunBatch(batch);
  std::size_t next_result = 0;
  for (const PendingRequest& req : *pending) {
    if (req.parsed)
      out << SerializeResponse(req.id, results[next_result++]) << '\n';
    else
      out << SerializeError(req.id, req.parse_error) << '\n';
  }
  out.flush();
  pending->clear();
}

// Turns one framed line into a pending request (or a pending error), or
// flushes on the blank line.
void ProcessLine(QueryEngine& engine, FramedLine&& line,
                 std::size_t max_line_bytes,
                 std::vector<PendingRequest>* pending, std::ostream& out) {
  PendingRequest req;
  if (line.oversized) {
    req.parse_error =
        "line exceeds " + std::to_string(max_line_bytes) + " bytes";
    pending->push_back(std::move(req));
    return;
  }
  if (line.text.empty()) {
    FlushBatch(engine, pending, out);
    return;
  }
  try {
    ProtocolRequest parsed = ParseRequest(line.text);
    req.id = parsed.id;
    req.query = std::move(parsed.query);
    req.parsed = true;
  } catch (const std::exception& e) {
    req.parse_error = e.what();
  }
  pending->push_back(std::move(req));
}

}  // namespace

int main(int argc, char** argv) {
  try {
    ArgParser args(argc, argv);
    args.RejectUnknown({"batch", "cache-bytes", "threads", "preload",
                        "max-line-bytes", "telemetry-json", "version",
                        "help"});
    if (args.GetBool("version", false)) {
      std::cout << "pivotscale_serve " << VersionString() << "\n";
      return 0;
    }
    if (args.GetBool("help", false)) {
      std::cout << kUsage;
      return 0;
    }

    const std::string telemetry_path =
        args.GetString("telemetry-json", "");
    TelemetryRegistry telemetry;

    QueryEngineOptions options;
    options.cache_byte_budget = static_cast<std::size_t>(
        args.GetInt("cache-bytes", std::int64_t{1} << 30));
    options.num_threads = args.GetThreads();
    if (!telemetry_path.empty()) options.telemetry = &telemetry;
    QueryEngine engine(options);

    std::stringstream preload_list(args.GetString("preload", ""));
    std::string preload_path;
    while (std::getline(preload_list, preload_path, ',')) {
      if (preload_path.empty()) continue;
      engine.Preload(preload_path);
      std::cerr << "preloaded " << preload_path << "\n";
    }

    const std::string batch_path = args.GetString("batch", "");
    std::ifstream batch_file;
    if (!batch_path.empty()) {
      batch_file.open(batch_path);
      if (!batch_file)
        throw std::runtime_error("cannot open --batch file " + batch_path);
    }
    std::istream& in = batch_path.empty() ? std::cin : batch_file;

    // Interactive stdin with no piped input: print usage so a bare run in
    // the examples loop terminates instead of blocking on a silent read.
    if (batch_path.empty() && isatty(fileno(stdin))) {
      std::cout << kUsage;
      return 0;
    }

    const std::size_t max_line_bytes = static_cast<std::size_t>(
        args.GetInt("max-line-bytes", static_cast<std::int64_t>(
                                          ReadLineFramer::kDefaultMaxLineBytes)));
    ReadLineFramer framer(max_line_bytes);
    std::vector<PendingRequest> pending;
    std::vector<FramedLine> lines;
    char buf[16384];
    while (in.read(buf, sizeof(buf)) || in.gcount() > 0) {
      lines.clear();
      framer.Feed(buf, static_cast<std::size_t>(in.gcount()), &lines);
      for (FramedLine& line : lines)
        ProcessLine(engine, std::move(line), max_line_bytes, &pending,
                    std::cout);
    }
    FramedLine last;
    if (framer.Finish(&last))
      ProcessLine(engine, std::move(last), max_line_bytes, &pending,
                  std::cout);
    FlushBatch(engine, &pending, std::cout);

    if (!telemetry_path.empty()) {
      WriteRunReport(telemetry_path, telemetry);
      std::cerr << "telemetry written to " << telemetry_path << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
