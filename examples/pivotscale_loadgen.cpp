// Load generator for pivotscale_served: N concurrent connections replay
// a mixed-k request stream and the report answers the question single-run
// wall clocks cannot — what are the tail latencies, and does the server
// shed rather than queue under overload?
//
// Each connection sends --batches batches of --batch-size requests
// (k cycling through --ks, graph cycling through the comma-separated
// --graph list), reads the responses, and times every request from batch
// send to response arrival. The aggregate report is one JSON object:
// throughput, p50/p95/p99/max latency, ok/shed/timed-out/error counts,
// and the count observed per k with a per-k consistency flag (so a smoke
// script can diff served counts against standalone pivotscale_cli).
//
// Usage:
//   pivotscale_loadgen --port P --graph g.psx[,h.psx]
//                      [--host 127.0.0.1] [--connections 8]
//                      [--batches 16] [--batch-size 4]
//                      [--ks 3,4,5,6,7,8] [--deadline-ms N] [--all-k]
//                      [--json report.json] [--version]
//
// Run bare (no --port), prints the usage banner and exits so the CI
// examples loop terminates. Exit code 0 when every connection completed
// (shed/timeout responses are expected outcomes, not failures).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "net/framer.h"
#include "util/cli.h"
#include "util/json_writer.h"
#include "util/version.h"

using namespace pivotscale;

namespace {

constexpr char kUsage[] =
    "pivotscale_loadgen: concurrent load generator for pivotscale_served\n"
    "  pivotscale_loadgen --port P --graph g.psx[,h.psx]\n"
    "                     [--host 127.0.0.1] [--connections 8]\n"
    "                     [--batches 16] [--batch-size 4]\n"
    "                     [--ks 3,4,5,6,7,8] [--deadline-ms N] [--all-k]\n"
    "                     [--json report.json]\n"
    "Replays a mixed-k NDJSON request stream over N concurrent\n"
    "connections and reports throughput, p50/p95/p99 latency, and\n"
    "shed/timeout counts as one JSON object. See docs/serving.md.\n";

struct WorkerStats {
  std::vector<double> latencies_ms;
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t errors = 0;       // non-shed, non-timeout failures
  bool connect_failed = false;
  std::string failure;
  // Observed count string per k (ok responses only) + consistency flag.
  std::map<std::uint64_t, std::string> count_by_k;
  std::map<std::uint64_t, bool> consistent_by_k;
};

int ConnectWithRetry(const std::string& host, std::uint16_t port,
                     std::string* error) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    *error = "invalid host " + host;
    return -1;
  }
  for (int attempt = 0; attempt < 50; ++attempt) {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
      *error = std::string("socket: ") + std::strerror(errno);
      return -1;
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      timeval timeout{30, 0};  // a stuck server must not hang the run
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout,
                   sizeof(timeout));
      return fd;
    }
    ::close(fd);
    if (errno != ECONNREFUSED) {
      *error = std::string("connect: ") + std::strerror(errno);
      return -1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  *error = "connect: connection refused (server not up after 5s)";
  return -1;
}

// Classifies one response line into the stats; latency is recorded by the
// caller. Returns false on an unparseable response (counted as error).
void RecordResponse(const std::string& line, WorkerStats* stats) {
  JsonValue doc;
  try {
    doc = ParseJson(line);
  } catch (const std::exception&) {
    ++stats->errors;
    return;
  }
  const JsonValue* ok = doc.Find("ok");
  if (ok == nullptr) {
    ++stats->errors;
    return;
  }
  if (ok->bool_value) {
    ++stats->ok;
    const JsonValue* k = doc.Find("k");
    const JsonValue* count = doc.Find("count");
    if (k != nullptr && count != nullptr) {
      const std::uint64_t kk = static_cast<std::uint64_t>(k->number);
      auto [it, inserted] =
          stats->count_by_k.emplace(kk, count->string_value);
      if (inserted)
        stats->consistent_by_k[kk] = true;
      else if (it->second != count->string_value)
        stats->consistent_by_k[kk] = false;
    }
    return;
  }
  const JsonValue* error = doc.Find("error");
  const std::string message =
      error != nullptr ? error->string_value : "";
  if (message == "overloaded")
    ++stats->shed;
  else if (message == "deadline exceeded")
    ++stats->timed_out;
  else
    ++stats->errors;
}

double Percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    ArgParser args(argc, argv);
    args.RejectUnknown({"port", "host", "graph", "connections", "batches",
                        "batch-size", "ks", "deadline-ms", "all-k",
                        "json", "version", "help"});
    if (args.GetBool("version", false)) {
      std::cout << "pivotscale_loadgen " << VersionString() << "\n";
      return 0;
    }
    if (args.GetBool("help", false) || !args.Has("port")) {
      std::cout << kUsage;
      return 0;
    }

    const std::string host = args.GetString("host", "127.0.0.1");
    const std::uint16_t port =
        static_cast<std::uint16_t>(args.GetInt("port", 0));
    const int connections = args.GetThreads("connections", 8);
    const int batches =
        std::max<int>(1, static_cast<int>(args.GetInt("batches", 16)));
    const int batch_size =
        std::max<int>(1, static_cast<int>(args.GetInt("batch-size", 4)));
    const std::int64_t deadline_ms = args.GetInt("deadline-ms", -1);
    const bool all_k = args.GetBool("all-k", false);
    const std::vector<std::int64_t> ks =
        args.GetIntList("ks", {3, 4, 5, 6, 7, 8});

    std::vector<std::string> graphs;
    std::stringstream graph_list(args.GetString("graph", ""));
    std::string graph;
    while (std::getline(graph_list, graph, ','))
      if (!graph.empty()) graphs.push_back(graph);
    if (graphs.empty())
      throw std::runtime_error(
          "--graph is required (a .psx artifact path the server can "
          "load; comma-separate to cycle several)");

    std::vector<WorkerStats> stats(
        static_cast<std::size_t>(connections));
    std::vector<std::thread> threads;
    const auto run_start = std::chrono::steady_clock::now();

    for (int c = 0; c < connections; ++c) {
      threads.emplace_back([&, c] {
        WorkerStats& s = stats[static_cast<std::size_t>(c)];
        std::string error;
        const int fd = ConnectWithRetry(host, port, &error);
        if (fd < 0) {
          s.connect_failed = true;
          s.failure = error;
          return;
        }
        ReadLineFramer framer;
        std::int64_t next_id =
            static_cast<std::int64_t>(c) * 1'000'000;
        for (int b = 0; b < batches; ++b) {
          // Build one batch: k cycles through --ks, graph through the
          // artifact list (per batch, so dedup still happens inside).
          std::string payload;
          for (int r = 0; r < batch_size; ++r) {
            const std::size_t mix =
                static_cast<std::size_t>(b * batch_size + r);
            JsonWriter w;
            w.BeginObject();
            w.Key("id");
            w.Value(next_id++);
            w.Key("graph");
            w.Value(graphs[static_cast<std::size_t>(b) % graphs.size()]);
            if (all_k) {
              w.Key("all_k");
              w.Value(true);
            } else {
              w.Key("k");
              w.Value(ks[mix % ks.size()]);
            }
            if (deadline_ms >= 0) {
              w.Key("deadline_ms");
              w.Value(deadline_ms);
            }
            w.EndObject();
            payload += w.str();
            payload += '\n';
          }
          payload += '\n';  // blank line: flush as one batch

          const auto sent_at = std::chrono::steady_clock::now();
          std::size_t off = 0;
          while (off < payload.size()) {
            const ssize_t n = ::send(fd, payload.data() + off,
                                     payload.size() - off, MSG_NOSIGNAL);
            if (n <= 0) {
              s.failure = "send failed mid-run";
              ::close(fd);
              return;
            }
            off += static_cast<std::size_t>(n);
          }

          // One response line per request, in order.
          int received = 0;
          std::vector<FramedLine> lines;
          char buf[16384];
          while (received < batch_size) {
            const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
            if (n <= 0) {
              s.failure = "connection lost before all responses";
              ::close(fd);
              return;
            }
            lines.clear();
            framer.Feed(buf, static_cast<std::size_t>(n), &lines);
            const auto now = std::chrono::steady_clock::now();
            const double ms =
                std::chrono::duration<double, std::milli>(now - sent_at)
                    .count();
            for (const FramedLine& line : lines) {
              if (line.text.empty()) continue;
              s.latencies_ms.push_back(ms);
              RecordResponse(line.text, &s);
              ++received;
            }
          }
        }
        ::close(fd);
      });
    }
    for (std::thread& t : threads) t.join();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      run_start)
            .count();

    // Aggregate.
    std::vector<double> latencies;
    std::uint64_t ok = 0, shed = 0, timed_out = 0, errors = 0;
    int failed_connections = 0;
    std::map<std::uint64_t, std::string> count_by_k;
    std::map<std::uint64_t, bool> consistent_by_k;
    for (const WorkerStats& s : stats) {
      latencies.insert(latencies.end(), s.latencies_ms.begin(),
                       s.latencies_ms.end());
      ok += s.ok;
      shed += s.shed;
      timed_out += s.timed_out;
      errors += s.errors;
      if (s.connect_failed || !s.failure.empty()) {
        ++failed_connections;
        std::cerr << "loadgen: connection failure: " << s.failure << "\n";
      }
      for (const auto& [k, count] : s.count_by_k) {
        auto [it, inserted] = count_by_k.emplace(k, count);
        bool consistent = s.consistent_by_k.at(k);
        if (!inserted && it->second != count) consistent = false;
        auto [cit, cinserted] = consistent_by_k.emplace(k, consistent);
        if (!cinserted) cit->second = cit->second && consistent;
      }
    }
    std::sort(latencies.begin(), latencies.end());
    const std::uint64_t responses = ok + shed + timed_out + errors;

    JsonWriter w;
    w.BeginObject();
    w.Key("schema");
    w.Value("pivotscale.loadgen_report");
    w.Key("version");
    w.Value(std::uint64_t{1});
    w.Key("connections");
    w.Value(static_cast<std::int64_t>(connections));
    w.Key("failed_connections");
    w.Value(static_cast<std::int64_t>(failed_connections));
    w.Key("batches_per_connection");
    w.Value(static_cast<std::int64_t>(batches));
    w.Key("batch_size");
    w.Value(static_cast<std::int64_t>(batch_size));
    w.Key("responses");
    w.Value(responses);
    w.Key("ok");
    w.Value(ok);
    w.Key("shed");
    w.Value(shed);
    w.Key("timed_out");
    w.Value(timed_out);
    w.Key("errors");
    w.Value(errors);
    w.Key("seconds");
    w.Value(seconds);
    w.Key("throughput_rps");
    w.Value(seconds > 0 ? static_cast<double>(responses) / seconds : 0);
    w.Key("latency_ms");
    w.BeginObject();
    w.Key("p50");
    w.Value(Percentile(latencies, 0.50));
    w.Key("p95");
    w.Value(Percentile(latencies, 0.95));
    w.Key("p99");
    w.Value(Percentile(latencies, 0.99));
    w.Key("max");
    w.Value(latencies.empty() ? 0 : latencies.back());
    w.EndObject();
    w.Key("counts");
    w.BeginArray();
    for (const auto& [k, count] : count_by_k) {
      w.BeginObject();
      w.Key("k");
      w.Value(k);
      w.Key("count");
      w.Value(count);
      w.Key("consistent");
      w.Value(consistent_by_k.at(k));
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();

    const std::string report = w.str();
    const std::string json_path = args.GetString("json", "");
    if (!json_path.empty()) {
      std::ofstream out(json_path);
      if (!out)
        throw std::runtime_error("cannot write --json " + json_path);
      out << report << "\n";
      std::cerr << "loadgen report written to " << json_path << "\n";
    }
    std::cout << report << std::endl;

    return failed_connections == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
