// Full-featured command-line front end for the library — the binary a
// downstream user runs on their own graphs.
//
// Usage:
//   pivotscale_cli --graph path.el [--k 8] [--all-k] [--per-vertex]
//                  [--top 10]
//                  [--ordering heuristic|core|approx|kcore|centrality|degree]
//                  [--eps -0.5] [--structure remap|sparse|dense]
//                  [--threads N] [--stats] [--save-binary out.psg]
//                  [--telemetry-json out.json]
//
// --per-vertex prints the --top N most clique-active vertices (default 10)
// and, with --telemetry-json, records them as the "per_vertex.top_vertex_ids"
// / "per_vertex.top_counts" series. --telemetry-json writes the full run
// telemetry (per-phase spans, per-thread busy times, op counters) as one
// JSON document and prints the ASCII load-imbalance summary. Unknown flags
// are rejected. Without --graph a demo graph is generated (so the binary
// runs bare).
#include <algorithm>
#include <iostream>
#include <stdexcept>
#include <vector>

#include "pivotscale.h"
#include "util/cli.h"
#include "util/mem.h"
#include "util/table.h"
#include "util/telemetry.h"
#include "util/version.h"

using namespace pivotscale;

namespace {

OrderingSpec ParseOrdering(const std::string& name, double eps) {
  if (name == "core") return {OrderingKind::kCore};
  if (name == "approx") return {OrderingKind::kApproxCore, eps};
  if (name == "kcore") return {OrderingKind::kKCore};
  if (name == "centrality") return {OrderingKind::kCentrality, 0, 3};
  if (name == "degree") return {OrderingKind::kDegree};
  throw std::runtime_error("unknown --ordering: " + name);
}

SubgraphKind ParseStructure(const std::string& name) {
  if (name == "remap") return SubgraphKind::kRemap;
  if (name == "sparse") return SubgraphKind::kSparse;
  if (name == "dense") return SubgraphKind::kDense;
  throw std::runtime_error("unknown --structure: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    ArgParser args(argc, argv);
    args.RejectUnknown({"graph", "k", "all-k", "per-vertex", "top",
                        "ordering", "eps", "structure", "threads", "stats",
                        "save-binary", "telemetry-json",
                        "heuristic-min-nodes", "version"});
    if (args.GetBool("version", false)) {
      std::cout << "pivotscale_cli " << VersionString() << "\n";
      return 0;
    }
    const std::string path = args.GetString("graph", "");

    Graph g;
    if (!path.empty()) {
      Timer load_timer;
      g = LoadGraph(path);
      std::cout << "loaded " << path << " in "
                << TablePrinter::Cell(load_timer.Seconds(), 2) << "s\n";
    } else {
      EdgeList edges = Rmat(12, 8.0, 1);
      PlantCliques(&edges, 4096, 8, 8, 16, 2);
      g = BuildGraph(std::move(edges));
      std::cout << "no --graph given; generated a demo graph\n";
    }
    std::cout << "graph: " << g.NumNodes() << " vertices, "
              << g.NumUndirectedEdges() << " edges, avg degree "
              << TablePrinter::Cell(g.AverageDegree(), 2) << "\n";

    if (args.Has("save-binary")) {
      const std::string out = args.GetString("save-binary", "");
      WriteBinaryGraph(out, g);
      std::cout << "wrote binary graph to " << out << "\n";
    }

    PivotScaleOptions options;
    options.k = static_cast<std::uint32_t>(args.GetInt("k", 8));
    options.all_k = args.GetBool("all-k", false);
    options.count.per_vertex = args.GetBool("per-vertex", false);
    options.count.structure =
        ParseStructure(args.GetString("structure", "remap"));
    options.count.num_threads = args.GetThreads();
    options.count.collect_op_stats = args.GetBool("stats", false);
    options.heuristic.min_nodes =
        static_cast<NodeId>(args.GetInt("heuristic-min-nodes", 15'000));

    const std::string ordering = args.GetString("ordering", "heuristic");
    if (ordering != "heuristic")
      options.forced_ordering =
          ParseOrdering(ordering, args.GetDouble("eps", -0.5));

    const std::string telemetry_path =
        args.GetString("telemetry-json", "");
    TelemetryRegistry telemetry;
    if (!telemetry_path.empty()) options.telemetry = &telemetry;

    const PivotScaleResult result = CountKCliques(g, options);

    std::cout << "\nordering: " << result.ordering_name
              << " (max out-degree " << result.max_out_degree << ")\n";
    if (options.all_k) {
      TablePrinter table("clique counts by size", {"k", "count"});
      for (std::size_t s = 1; s < result.count.per_size.size(); ++s)
        if (result.count.per_size[s] != BigCount{})
          table.AddRow({TablePrinter::Cell(std::uint64_t{s}),
                        result.count.per_size[s].ToString()});
      table.Print();
    } else {
      std::cout << options.k << "-cliques: " << result.total.ToString()
                << "\n";
    }
    if (options.count.per_vertex) {
      // Top-N vertices by k-clique participation (ties broken by id).
      const auto& pv = result.count.per_vertex;
      std::vector<NodeId> order;
      for (NodeId v = 0; v < g.NumNodes(); ++v)
        if (pv[v] != BigCount{}) order.push_back(v);
      const std::size_t top = std::min<std::size_t>(
          static_cast<std::size_t>(std::max<std::int64_t>(
              args.GetInt("top", 10), 1)),
          order.size());
      std::partial_sort(order.begin(), order.begin() + top, order.end(),
                        [&](NodeId a, NodeId b) {
                          if (pv[a] != pv[b]) return pv[b] < pv[a];
                          return a < b;
                        });
      TablePrinter table("top " + std::to_string(top) +
                             " clique-active vertices",
                         {"rank", "vertex", std::to_string(options.k) +
                                                "-cliques"});
      for (std::size_t t = 0; t < top; ++t)
        table.AddRow({TablePrinter::Cell(std::uint64_t{t + 1}),
                      TablePrinter::Cell(std::uint64_t{order[t]}),
                      pv[order[t]].ToString()});
      table.Print();
      if (!telemetry_path.empty()) {
        // Counts ride as doubles (exact below 2^53; the JSON series slot
        // is double-typed) so per-vertex results land in the run report.
        std::vector<double> ids(top), counts(top);
        for (std::size_t t = 0; t < top; ++t) {
          ids[t] = static_cast<double>(order[t]);
          counts[t] = pv[order[t]].AsDouble();
        }
        telemetry.SetSeries("per_vertex.top_vertex_ids", std::move(ids));
        telemetry.SetSeries("per_vertex.top_counts", std::move(counts));
      }
    }
    if (options.count.collect_op_stats) {
      std::cout << "recursion: " << result.count.ops.calls << " calls, "
                << result.count.ops.edge_ops << " edge ops, "
                << result.count.ops.induces << " inductions\n";
    }
    std::printf(
        "phases: heuristic %.3fs | ordering %.3fs | directionalize %.3fs | "
        "counting %.3fs | total %.3fs\n",
        result.heuristic_seconds, result.ordering_seconds,
        result.directionalize_seconds, result.counting_seconds,
        result.total_seconds);
    std::cout << "peak RSS: " << HumanBytes(PeakRssBytes()) << "\n";
    if (!telemetry_path.empty()) {
      WriteRunReport(telemetry_path, telemetry);
      std::cout << "telemetry written to " << telemetry_path << "\n";
      const std::string imbalance = LoadImbalanceSummary(telemetry);
      if (!imbalance.empty()) std::cout << imbalance;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
