// Social-network analysis with per-vertex clique counts.
//
// The paper's conclusion notes that per-vertex k-clique counts are a simple
// extension of PivotScale; this example uses them the way social-network
// analysts do: ranking users by their participation in dense groups
// (k-clique membership is a strong cohesion signal — far stronger than
// degree) and comparing the two rankings.
//
// Usage: social_network_analysis [--graph path.el] [--k 5] [--top 10]
#include <algorithm>
#include <iostream>
#include <vector>

#include "pivotscale.h"
#include "util/cli.h"
#include "util/table.h"

using namespace pivotscale;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const auto k = static_cast<std::uint32_t>(args.GetInt("k", 5));
  const auto top = static_cast<std::size_t>(args.GetInt("top", 10));
  const std::string path = args.GetString("graph", "");

  Graph g;
  if (!path.empty()) {
    g = LoadGraph(path);
  } else {
    // A social network with community structure plus celebrity hubs.
    EdgeList edges = CommunityModel(/*n=*/8000, /*communities=*/1500,
                                    /*min_size=*/3, /*max_size=*/10,
                                    /*intra_p=*/0.85, /*seed=*/7);
    EdgeList hubs = StarHeavy(8000, 4, 0.05, 8);
    edges.insert(edges.end(), hubs.begin(), hubs.end());
    PlantCliques(&edges, 8000, 8, 10, 16, 9);
    g = BuildGraph(std::move(edges));
  }
  std::cout << "graph: " << g.NumNodes() << " vertices, "
            << g.NumUndirectedEdges() << " edges\n";

  // Count with per-vertex attribution through the full pipeline.
  PivotScaleOptions options;
  options.k = k;
  options.heuristic.min_nodes = 1000;
  options.count.per_vertex = true;
  const PivotScaleResult result = CountKCliques(g, options);
  std::cout << result.total.ToString() << " " << k << "-cliques ("
            << result.ordering_name << " ordering, "
            << TablePrinter::Cell(result.total_seconds, 3) << "s)\n\n";

  // Rank vertices by clique participation and by degree, and show how the
  // two disagree: hubs top the degree list, but clique membership finds
  // the community cores.
  std::vector<NodeId> by_cliques(g.NumNodes()), by_degree(g.NumNodes());
  for (NodeId v = 0; v < g.NumNodes(); ++v) by_cliques[v] = by_degree[v] = v;
  const auto& pv = result.count.per_vertex;
  std::sort(by_cliques.begin(), by_cliques.end(),
            [&](NodeId a, NodeId b) { return pv[b] < pv[a]; });
  std::sort(by_degree.begin(), by_degree.end(), [&](NodeId a, NodeId b) {
    return g.Degree(b) < g.Degree(a);
  });

  TablePrinter table("top vertices: clique participation vs degree",
                     {"rank", "by cliques", "clique count", "degree",
                      "by degree", "its cliques", "its degree"});
  for (std::size_t r = 0; r < std::min(top, std::size_t{g.NumNodes()});
       ++r) {
    const NodeId c = by_cliques[r], d = by_degree[r];
    table.AddRow({TablePrinter::Cell(std::uint64_t{r + 1}),
                  TablePrinter::Cell(std::uint64_t{c}), pv[c].ToString(),
                  TablePrinter::Cell(std::uint64_t{g.Degree(c)}),
                  TablePrinter::Cell(std::uint64_t{d}), pv[d].ToString(),
                  TablePrinter::Cell(std::uint64_t{g.Degree(d)})});
  }
  table.Print();

  // Sanity check from the counting identity: per-vertex counts sum to
  // k times the total (each clique has k members).
  BigCount sum{};
  for (const BigCount& c : pv) sum += c;
  std::cout << "\nidentity check: sum(per-vertex) = "
            << sum.ToString() << " = " << k << " x "
            << result.total.ToString() << "\n";
  return 0;
}
