#!/usr/bin/env python3
"""Project-invariant linter for PivotScale (docs/analysis.md).

Checks conventions a compiler cannot see:

  telemetry-name   AddCounter names must match ^[a-z]+(\\.[a-z_]+)+$ so the
                   run-report JSON namespace stays flat and greppable
                   (tests/ exempt: registry-mechanics tests use toy names).
  no-libc-random   rand()/srand()/time( are banned in src/: every random
                   stream must come from the seeded generators
                   (src/graph/generators.*) so runs are reproducible.
  no-naked-new     `new` expressions are banned in src/: ownership goes
                   through containers and smart-pointer factories.
  include-guards   every header carries a PIVOTSCALE_*_H_ include guard
                   matching its path.
  atomic-writes    file-writing handles (std::ofstream, fopen with a write
                   mode) are only allowed inside util/atomic_file.cc; all
                   other writers must go through WriteFileAtomic so readers
                   can never observe a truncated artifact.
  raw-omp-parallel `#pragma omp parallel` is banned outside the exec layer
                   (src/exec/) and src/util/prefix_sum.h: every parallel
                   region in src/, bench/, and examples/ must go through
                   the Executor primitives (ParallelFor / ParallelReduce /
                   ParallelForWorkers) so thread budgeting, chunking, and
                   exec.* telemetry stay uniform (tests/ exempt: harness
                   tests may open raw regions to probe executor behavior).

Exit status: 0 when clean, 1 when any finding was printed. Run from
anywhere; paths resolve relative to the repo root (this file's parent's
parent). `--list-rules` prints rule names and exits.
"""

import argparse
import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC_DIR = REPO_ROOT / "src"

COUNTER_NAME_RE = re.compile(r"^[a-z]+(\.[a-z_]+)+$")
ADD_COUNTER_RE = re.compile(r"""AddCounter\(\s*"([^"]*)"\s*,""")
LIBC_RANDOM_RE = re.compile(r"(?<![\w.:])(?:s?rand|time)\s*\(")
NAKED_NEW_RE = re.compile(r"(?<![\w.])new\b(?!\s*\()")
WRITE_HANDLE_RE = re.compile(
    r"std::ofstream|\bofstream\b|fopen\s*\([^)]*,\s*\"[wa]"
)

# The one blessed write site (temp file + rename) and the module that owns
# deliberately dynamic telemetry counter names.
ATOMIC_WRITE_OWNER = "util/atomic_file.cc"

OMP_PARALLEL_RE = re.compile(r"#\s*pragma\s+omp\s+parallel\b")

# Files allowed to open raw OpenMP parallel regions: the executor itself
# and the two-pass prefix sum (a barrier-structured region the Executor's
# chunked self-scheduling loop cannot express).
OMP_PARALLEL_ALLOWLIST = (
    "src/exec/",
    "src/util/prefix_sum.h",
)


def strip_comments_and_strings(text):
    """Blanks comments and string/char literals, preserving line structure.

    Keeps AddCounter name literals intact is NOT needed here: callers that
    need literals run on the raw text; this stripped view exists so keyword
    rules (new / rand / ofstream) cannot be tripped by prose or strings.
    """
    out = []
    i = 0
    n = len(text)
    mode = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode == "code":
            if c == "/" and nxt == "/":
                mode = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                mode = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                mode = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                mode = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif mode == "line_comment":
            if c == "\n":
                mode = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif mode == "block_comment":
            if c == "*" and nxt == "/":
                mode = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        else:  # string or char literal
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if (mode == "string" and c == '"') or (mode == "char" and c == "'"):
                mode = "code"
                out.append(" ")
            else:
                out.append("\n" if c == "\n" else " ")
        i += 1
    return "".join(out)


def iter_findings_for_file(path):
    rel = path.relative_to(REPO_ROOT).as_posix()
    raw = path.read_text(encoding="utf-8", errors="replace")
    code = strip_comments_and_strings(raw)
    raw_lines = raw.splitlines()
    code_lines = code.splitlines()

    # telemetry-name: raw text, the names live in string literals. Tests
    # exercising registry mechanics may use toy names; the namespace rule
    # protects what shipping binaries emit.
    is_test = rel.startswith("tests/")
    for lineno, line in enumerate(raw_lines, 1):
        if is_test:
            break
        for match in ADD_COUNTER_RE.finditer(line):
            name = match.group(1)
            if not COUNTER_NAME_RE.match(name):
                yield (rel, lineno, "telemetry-name",
                       f'counter "{name}" does not match '
                       "^[a-z]+(\\.[a-z_]+)+$")

    in_src = rel.startswith("src/")
    omp_enforced = (not is_test
                    and not rel.startswith(OMP_PARALLEL_ALLOWLIST))
    for lineno, line in enumerate(code_lines, 1):
        if omp_enforced and OMP_PARALLEL_RE.search(line):
            yield (rel, lineno, "raw-omp-parallel",
                   "raw `#pragma omp parallel` outside src/exec/; "
                   "use the Executor primitives (exec/executor.h)")
        if in_src and LIBC_RANDOM_RE.search(line):
            yield (rel, lineno, "no-libc-random",
                   "rand()/time( is banned; use the seeded generators")
        if in_src and NAKED_NEW_RE.search(line):
            yield (rel, lineno, "no-naked-new",
                   "naked new; use containers or make_unique/make_shared")
        if (in_src and rel != f"src/{ATOMIC_WRITE_OWNER}"
                and WRITE_HANDLE_RE.search(line)):
            yield (rel, lineno, "atomic-writes",
                   "file write outside util/atomic_file; "
                   "route it through WriteFileAtomic")

    # include-guards: headers only.
    if path.suffix == ".h":
        expected = (
            "PIVOTSCALE_"
            + re.sub(r"[^A-Za-z0-9]", "_",
                     rel.removeprefix("src/")).upper()
            + "_"
        )
        if (f"#ifndef {expected}" not in raw
                or f"#define {expected}" not in raw):
            yield (rel, 1, "include-guards",
                   f"missing include guard {expected}")


def lint(paths):
    findings = []
    for path in paths:
        findings.extend(iter_findings_for_file(path))
    return findings


def default_targets():
    targets = []
    for root in (SRC_DIR, REPO_ROOT / "tests", REPO_ROOT / "bench",
                 REPO_ROOT / "examples"):
        if root.is_dir():
            targets.extend(sorted(root.rglob("*.h")))
            targets.extend(sorted(root.rglob("*.cc")))
            targets.extend(sorted(root.rglob("*.cpp")))
    return targets


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="*",
                        help="files to lint (default: src/ tests/ bench/ "
                             "examples/)")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        print("telemetry-name no-libc-random no-naked-new include-guards "
              "atomic-writes raw-omp-parallel")
        return 0

    if args.files:
        targets = [pathlib.Path(f).resolve() for f in args.files]
        targets = [t for t in targets if t.suffix in (".h", ".cc", ".cpp")]
    else:
        targets = default_targets()

    findings = lint(targets)
    for rel, lineno, rule, message in findings:
        print(f"{rel}:{lineno}: [{rule}] {message}")
    if findings:
        print(f"lint.py: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
