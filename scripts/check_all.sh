#!/usr/bin/env bash
# One-shot local analysis gate (docs/analysis.md): everything CI runs,
# runnable before a push. Stages:
#   1. tools/lint.py               project-invariant linter
#   2. -Werror build + full ctest  (build-check/), then the same suite
#      again under OMP_NUM_THREADS=2 so a 2-thread budget exercises real
#      multi-worker executor teams even on single-core runners, plus a
#      micro_exec scheduler-smoke run
#   3. clang-tidy over src/        when a clang-tidy binary exists
#   4. TSan build + race shards    (build-check-tsan/)
# Stage 3 is skipped with a note on toolchains without clang-tidy (the
# config is .clang-tidy; CI always runs it). Pass --fast to stop after
# stage 2. Exits non-zero on the first failing stage.
set -euo pipefail

cd "$(dirname "$0")/.."
FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1
JOBS="$(nproc 2>/dev/null || echo 2)"

echo "==> [1/4] lint.py"
python3 tools/lint.py

echo "==> [2/4] -Werror build + tests"
cmake -B build-check -S . -DPIVOTSCALE_WERROR=ON >/dev/null
cmake --build build-check -j"${JOBS}"
ctest --test-dir build-check --output-on-failure -j"${JOBS}"

echo "==> [2/4] OMP_NUM_THREADS=2 shard (multi-worker executor teams)"
OMP_NUM_THREADS=2 ctest --test-dir build-check --output-on-failure \
  -R 'exec|pivot|driver_crosscheck|race|telemetry'

echo "==> [2/4] micro_exec scheduler smoke"
./build-check/bench/micro_exec --benchmark_min_time=0.01

if [[ "${FAST}" == "1" ]]; then
  echo "==> --fast: skipping clang-tidy and TSan stages"
  exit 0
fi

echo "==> [3/4] clang-tidy"
if command -v clang-tidy >/dev/null 2>&1; then
  # The -Werror tree exports compile_commands.json (always on).
  git ls-files 'src/*.cc' | xargs -r clang-tidy -p build-check --quiet
else
  echo "    clang-tidy not installed; skipped (CI runs it — see"
  echo "    .github/workflows/analysis.yml)"
fi

echo "==> [4/4] TSan build + race/net/service shards"
cmake -B build-check-tsan -S . -DPIVOTSCALE_TSAN=ON >/dev/null
cmake --build build-check-tsan -j"${JOBS}"
ctest --test-dir build-check-tsan -R 'race|net|service|check' \
  --output-on-failure

echo "==> all analysis stages passed"
