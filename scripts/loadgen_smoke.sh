#!/usr/bin/env bash
# End-to-end smoke test for the TCP serving layer: start pivotscale_served
# on a loopback port, drive it with pivotscale_loadgen over concurrent
# connections, and check three properties:
#   1. correctness — every count returned over the wire is bit-identical
#      to a standalone pivotscale_cli run at the same k;
#   2. overload — with --queue-depth 1 and a cold cache, excess batches
#      are shed with "overloaded" responses instead of queueing;
#   3. drain — SIGTERM exits 0 with every in-flight response flushed.
#
# Usage: scripts/loadgen_smoke.sh [build-dir]   (default: build)
set -euo pipefail

build="${1:-build}"
cli="$build/examples/pivotscale_cli"
prep="$build/examples/pivotscale_prep"
served="$build/examples/pivotscale_served"
loadgen="$build/examples/pivotscale_loadgen"

for bin in "$cli" "$prep" "$served" "$loadgen"; do
  if [[ ! -x "$bin" ]]; then
    echo "loadgen_smoke: missing binary $bin (build the examples first)" >&2
    exit 1
  fi
done

tmp="$(mktemp -d)"
server_pid=""
cleanup() {
  [[ -n "$server_pid" ]] && kill -9 "$server_pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

# 1. Deterministic demo graph, prepped into two artifacts (the second one
#    exists so the overload phase can alternate cold cache loads).
"$cli" --save-binary "$tmp/demo.psg" > /dev/null
"$prep" --graph "$tmp/demo.psg" --out "$tmp/demo.psx" > /dev/null
"$prep" --graph "$tmp/demo.psg" --out "$tmp/demo2.psx" > /dev/null
echo "loadgen_smoke: prepped $tmp/demo.psx"

wait_for_port() {
  for _ in $(seq 1 100); do
    [[ -s "$tmp/port" ]] && return 0
    sleep 0.1
  done
  echo "loadgen_smoke: server never wrote its port file" >&2
  exit 1
}

fail=0

# ---- Phase 1: correctness under concurrency --------------------------------
"$served" --port 0 --port-file "$tmp/port" --workers 2 --queue-depth 64 \
  --telemetry-json "$tmp/served_report.json" > "$tmp/served.log" &
server_pid=$!
wait_for_port
port="$(cat "$tmp/port")"
echo "loadgen_smoke: pivotscale_served on port $port (pid $server_pid)"

"$loadgen" --port "$port" --graph "$tmp/demo.psx" --connections 8 \
  --batches 8 --batch-size 6 --ks 3,4,5,6,7,8 \
  --json "$tmp/loadgen.json" > /dev/null
echo "loadgen_smoke: loadgen finished"

# Every k's count must be consistent across the run and must match a
# fresh standalone CLI run on the same graph.
for k in 3 4 5 6 7 8; do
  ref="$("$cli" --graph "$tmp/demo.psg" --k "$k" \
        | sed -n "s/^${k}-cliques: //p")"
  entry="$(grep -o "{\"k\":${k},\"count\":\"[0-9]*\",\"consistent\":[a-z]*" \
           "$tmp/loadgen.json" || true)"
  got="$(printf '%s' "$entry" | sed -n 's/.*"count":"\([0-9]*\)".*/\1/p')"
  if [[ "$entry" != *'"consistent":true'* || -z "$got" \
        || "$got" != "$ref" ]]; then
    echo "loadgen_smoke: MISMATCH at k=$k: cli=$ref served=${got:-<none>}" >&2
    echo "  report entry: ${entry:-<missing>}" >&2
    fail=1
  else
    echo "loadgen_smoke: k=$k count=$got (matches cli, consistent)"
  fi
done
if ! grep -q '"shed":0,' "$tmp/loadgen.json"; then
  echo "loadgen_smoke: phase 1 unexpectedly shed load" >&2
  fail=1
fi

# 2. Graceful drain: SIGTERM must exit 0 after flushing.
kill -TERM "$server_pid"
if ! wait "$server_pid"; then
  echo "loadgen_smoke: served exited non-zero after SIGTERM" >&2
  fail=1
fi
server_pid=""
if ! grep -q "drained, exiting" "$tmp/served.log"; then
  echo "loadgen_smoke: served did not report a clean drain" >&2
  fail=1
fi
echo "loadgen_smoke: clean SIGTERM drain"

# ---- Phase 3: overload sheds rather than queues ----------------------------
# One worker, queue depth 1, and a 1-byte cache: alternating two artifacts
# forces a cold load + counting run per batch, so the pipelined stream
# from 8 connections must overflow the queue and shed.
rm -f "$tmp/port"
"$served" --port 0 --port-file "$tmp/port" --workers 1 --queue-depth 1 \
  --cache-bytes 1 > "$tmp/served_overload.log" &
server_pid=$!
wait_for_port
port="$(cat "$tmp/port")"

"$loadgen" --port "$port" --graph "$tmp/demo.psx,$tmp/demo2.psx" \
  --connections 8 --batches 12 --batch-size 4 --ks 8 \
  --json "$tmp/overload.json" > /dev/null
shed="$(grep -o '"shed":[0-9]*' "$tmp/overload.json" | cut -d: -f2)"
errors="$(grep -o '"errors":[0-9]*' "$tmp/overload.json" | cut -d: -f2)"
if [[ -z "$shed" || "$shed" -eq 0 ]]; then
  echo "loadgen_smoke: expected shed responses past --queue-depth, got" \
       "shed=${shed:-<none>}" >&2
  fail=1
else
  echo "loadgen_smoke: overload shed $shed batches' requests (errors=$errors)"
fi
if [[ -z "$errors" || "$errors" -ne 0 ]]; then
  echo "loadgen_smoke: overload phase produced hard errors" >&2
  fail=1
fi

kill -TERM "$server_pid"
if ! wait "$server_pid"; then
  echo "loadgen_smoke: overload server exited non-zero after SIGTERM" >&2
  fail=1
fi
server_pid=""

if [[ "$fail" -ne 0 ]]; then
  echo "loadgen_smoke: FAILED" >&2
  exit 1
fi
echo "loadgen_smoke: OK (counts match, overload sheds, drain is clean)"
