#!/usr/bin/env bash
# End-to-end smoke test for the query-service subsystem: generate a graph,
# preprocess it into a .psx artifact, answer a batch of mixed-k NDJSON
# queries through pivotscale_serve, and diff every returned count against a
# standalone pivotscale_cli run on the same graph. Also asserts the served
# batch ran zero pipeline phases (no heuristic/ordering/directionalize in
# the serve telemetry) and exactly one counting run.
#
# Usage: scripts/serve_smoke.sh [build-dir]   (default: build)
set -euo pipefail

build="${1:-build}"
cli="$build/examples/pivotscale_cli"
prep="$build/examples/pivotscale_prep"
serve="$build/examples/pivotscale_serve"

for bin in "$cli" "$prep" "$serve"; do
  if [[ ! -x "$bin" ]]; then
    echo "serve_smoke: missing binary $bin (build the examples first)" >&2
    exit 1
  fi
done

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# 1. Deterministic demo graph (the CLI's bare-run generator), saved as .psg.
"$cli" --save-binary "$tmp/demo.psg" > /dev/null
echo "serve_smoke: generated $tmp/demo.psg"

# 2. Preprocess it into a .psx artifact.
"$prep" --graph "$tmp/demo.psg" --out "$tmp/demo.psx" > /dev/null
echo "serve_smoke: prepped $tmp/demo.psx"

# 3. One batch of mixed-k queries, with repeats, ids = k for correlation.
ks="3 4 5 6 7 8"
batch="$tmp/batch.ndjson"
: > "$batch"
for k in $ks $ks; do
  printf '{"id":%d,"graph":"%s","k":%d}\n' "$k" "$tmp/demo.psx" "$k" \
    >> "$batch"
done
"$serve" --batch "$batch" --telemetry-json "$tmp/serve_report.json" \
  > "$tmp/responses.ndjson"

# 4. Every response must be ok, and every count must match a fresh
#    standalone pipeline run at that k.
fail=0
for k in $ks; do
  ref="$("$cli" --graph "$tmp/demo.psg" --k "$k" \
        | sed -n "s/^${k}-cliques: //p")"
  line="$(grep "\"id\":${k}," "$tmp/responses.ndjson" | head -n 1)"
  got="$(printf '%s' "$line" | sed -n 's/.*"count":"\([0-9]*\)".*/\1/p')"
  if [[ "$line" != *'"ok":true'* || -z "$got" || "$got" != "$ref" ]]; then
    echo "serve_smoke: MISMATCH at k=$k: cli=$ref serve=${got:-<none>}" >&2
    echo "  response line: ${line:-<missing>}" >&2
    fail=1
  else
    echo "serve_smoke: k=$k count=$got (matches cli)"
  fi
done

lines="$(wc -l < "$tmp/responses.ndjson")"
if [[ "$lines" -ne 12 ]]; then
  echo "serve_smoke: expected 12 response lines, got $lines" >&2
  fail=1
fi

# 5. The served batch must not have touched any pipeline phase: the serve
#    telemetry has service.*/count.* records but no heuristic, ordering,
#    or directionalize entries — and exactly one counting run covered all
#    twelve queries.
report="$tmp/serve_report.json"
for phase in heuristic ordering directionalize; do
  if grep -q "$phase" "$report"; then
    echo "serve_smoke: serve telemetry unexpectedly mentions '$phase'" >&2
    fail=1
  fi
done
if ! grep -q '"service.count_runs":1\b' "$report"; then
  echo "serve_smoke: expected exactly one counting run; report says:" >&2
  grep -o '"service\.[a-z_]*":[0-9]*' "$report" >&2 || true
  fail=1
fi

if [[ "$fail" -ne 0 ]]; then
  echo "serve_smoke: FAILED" >&2
  exit 1
fi
echo "serve_smoke: OK (one counting run answered all 12 queries)"
