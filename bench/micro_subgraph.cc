// Microbenchmarks (google-benchmark): first-level subgraph construction and
// full per-root counting for the three structures. These isolate the access
// costs the paper discusses — dense's direct indexing, sparse's per-access
// hash lookup (~1.2x), and remap's pay-hash-once design.
#include <benchmark/benchmark.h>

#include "graph/builder.h"
#include "graph/dag.h"
#include "graph/generators.h"
#include "order/core_order.h"
#include "pivot/pivoter.h"
#include "pivot/subgraph_dense.h"
#include "pivot/subgraph_remap.h"
#include "pivot/subgraph_sparse.h"
#include "util/binomial.h"

namespace {

using namespace pivotscale;

const Graph& BenchDag() {
  static const Graph dag = [] {
    EdgeList edges = Rmat(13, 10.0, 7);
    PlantCliques(&edges, 4096, 16, 8, 20, 8);
    const Graph g = BuildGraph(std::move(edges));
    return Directionalize(g, CoreOrdering(g).ranks);
  }();
  return dag;
}

template <typename SG>
void BM_SubgraphBuild(benchmark::State& state) {
  const Graph& dag = BenchDag();
  SG sg;
  sg.Attach(dag);
  NodeId v = 0;
  for (auto _ : state) {
    sg.Build(v);
    benchmark::DoNotOptimize(sg.Vertices().size());
    v = (v + 1) % dag.NumNodes();
  }
}
BENCHMARK(BM_SubgraphBuild<DenseSubgraph>);
BENCHMARK(BM_SubgraphBuild<SparseSubgraph>);
BENCHMARK(BM_SubgraphBuild<RemapSubgraph>);

template <typename SG>
void BM_ProcessRoot(benchmark::State& state) {
  const Graph& dag = BenchDag();
  const std::uint32_t bound =
      static_cast<std::uint32_t>(dag.MaxDegree()) + 1;
  static const BinomialTable binom(bound + 1);
  PivotCounter<SG, NoStats> counter(dag, CountMode::kSingleK, 8,
                                    /*per_vertex=*/false, bound, &binom);
  NodeId v = 0;
  for (auto _ : state) {
    counter.ProcessRoot(v);
    benchmark::DoNotOptimize(counter.total());
    v = (v + 1) % dag.NumNodes();
  }
}
BENCHMARK(BM_ProcessRoot<DenseSubgraph>);
BENCHMARK(BM_ProcessRoot<SparseSubgraph>);
BENCHMARK(BM_ProcessRoot<RemapSubgraph>);

}  // namespace
