// Microbenchmarks (google-benchmark): ordering kernels on a mid-size
// power-law graph. Shows the cost ladder the paper exploits: degree <<
// centrality < k-core < approx-core(-0.5) < exact core peel (sequential).
#include <benchmark/benchmark.h>

#include "graph/builder.h"
#include "graph/generators.h"
#include "order/approx_core_order.h"
#include "order/centrality_order.h"
#include "order/core_order.h"
#include "order/degree_order.h"
#include "order/heuristic.h"
#include "order/kcore_order.h"

namespace {

using namespace pivotscale;

const Graph& BenchGraph() {
  static const Graph g = BuildGraph(Rmat(14, 12.0, 11));
  return g;
}

void BM_DegreeOrdering(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(DegreeOrdering(BenchGraph()).ranks.size());
}
BENCHMARK(BM_DegreeOrdering);

void BM_CoreOrdering(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(CoreOrdering(BenchGraph()).ranks.size());
}
BENCHMARK(BM_CoreOrdering);

void BM_ApproxCoreOrdering(benchmark::State& state) {
  const double eps = state.range(0) / 10.0;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        ApproxCoreOrdering(BenchGraph(), eps).ranks.size());
}
BENCHMARK(BM_ApproxCoreOrdering)->Arg(-5)->Arg(1)->Arg(500000);

void BM_KCoreOrdering(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(KCoreOrdering(BenchGraph()).ranks.size());
}
BENCHMARK(BM_KCoreOrdering);

void BM_CentralityOrdering(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(
        CentralityOrdering(BenchGraph(), 3).ranks.size());
}
BENCHMARK(BM_CentralityOrdering);

void BM_Heuristic(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(SelectOrdering(BenchGraph()).a);
}
BENCHMARK(BM_Heuristic);

}  // namespace
