// Figure 11: parallel scalability of PivotScale's three subgraph structures
// for counting 6- and 12-cliques, at 1..64 threads.
//
// Single-core substitution (DESIGN.md): the real counter records a per-root
// work trace; the scaling simulator replays it under dynamic chunked
// scheduling with the measured per-thread structure footprint driving the
// memory-contention model. The modeled LLC defaults to 12 MB (--cache-mb):
// the analog graphs are ~100x smaller than the paper's, so the paper's
// 256 MB LLC is scaled with them to preserve the footprint:cache ratios
// that produce its findings. Expected shape: near-linear scaling
// everywhere, except the dense structure plateauing at >=32 threads on
// graphs whose |V|-sized per-thread indices spill the modeled LLC. The
// busy-time CoV column checks the paper's load-balance claim (CoV ~ 0.03).
//
// --json <path> additionally re-runs each series for real (whole-machine
// executor, default split threshold) and writes one JSON document pairing
// the simulated speedup curves with the measured scheduler stats:
// exec_splits (long-tail roots the driver split) and the realized team's
// busy-time CoV. docs/parallelism.md explains the fields.
#include <iostream>

#include "bench_common.h"
#include "graph/dag.h"
#include "order/core_order.h"
#include "pivot/count.h"
#include "sim/mem_model.h"
#include "sim/scaling_sim.h"
#include "util/ascii_chart.h"
#include "util/atomic_file.h"
#include "util/json_writer.h"
#include "util/table.h"

using namespace pivotscale;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const auto suite = bench::LoadSuite(args);
  const auto ks = args.GetIntList("ks", {6, 12});
  const auto thread_counts = args.GetIntList("threads", {1, 2, 4, 8, 16, 32, 64});
  const auto cache_mb = args.GetInt("cache-mb", 12);

  TelemetryRegistry telemetry;
  TelemetryRegistry* telemetry_ptr =
      args.Has("telemetry-json") ? &telemetry : nullptr;
  const std::string json_path = args.GetString("json", "");

  JsonWriter json;
  if (!json_path.empty()) {
    json.BeginObject();
    json.Key("schema");
    json.Value("pivotscale.fig11");
    json.Key("version");
    json.Value(std::uint64_t{1});
    json.Key("cache_mb");
    json.Value(cache_mb);
    json.Key("threads");
    json.BeginArray();
    for (std::int64_t t : thread_counts) json.Value(t);
    json.EndArray();
    json.Key("series");
    json.BeginArray();
  }
  for (const Dataset& d : suite) {
    const Graph dag = Directionalize(d.graph, CoreOrdering(d.graph).ranks);
    for (std::int64_t k64 : ks) {
      const auto k = static_cast<std::uint32_t>(k64);
      std::vector<std::string> header = {"structure"};
      for (std::int64_t t : thread_counts)
        header.push_back("T=" + std::to_string(t));
      header.push_back("CoV@64");
      TablePrinter table("Figure 11 series: " + d.name +
                             " k=" + std::to_string(k) +
                             " (self-relative speedup, simulated)",
                         header);

      std::vector<ChartSeries> chart_series;
      for (auto kind : {SubgraphKind::kDense, SubgraphKind::kSparse,
                        SubgraphKind::kRemap}) {
        CountOptions options;
        options.k = k;
        options.structure = kind;
        options.collect_work_trace = true;
        options.num_threads = 1;
        options.telemetry = telemetry_ptr;
        const CountResult result = CountCliques(dag, options);

        ScalingSimConfig config;
        config.cache_capacity_bytes =
            static_cast<std::size_t>(cache_mb) << 20;
        config.per_thread_footprint_bytes = result.workspace_bytes;
        std::vector<std::string> row = {SubgraphKindName(kind)};
        ChartSeries series{SubgraphKindName(kind), {}};
        double cov64 = 0;
        for (std::int64_t t : thread_counts) {
          config.num_threads = static_cast<int>(t);
          const double speedup = SimulateSpeedup(result.work_trace, config);
          series.values.push_back(speedup);
          row.push_back(TablePrinter::Cell(speedup, 1));
          if (t == 64)
            cov64 = SimulateScaling(result.work_trace, config).busy_cov;
        }
        if (!json_path.empty()) {
          // Real run (no trace, whole-machine budget, default threshold):
          // the simulated curves say how the trace *should* scale; these
          // fields say what the scheduler actually did to it.
          TelemetryRegistry measured;
          CountOptions measured_options;
          measured_options.k = k;
          measured_options.structure = kind;
          measured_options.telemetry = &measured;
          CountCliques(dag, measured_options);
          json.BeginObject();
          json.Key("dataset");
          json.Value(d.name);
          json.Key("k");
          json.Value(std::uint64_t{k});
          json.Key("structure");
          json.Value(SubgraphKindName(kind));
          json.Key("speedup");
          json.BeginArray();
          for (const double s : series.values) json.Value(s);
          json.EndArray();
          json.Key("sim_cov64");
          json.Value(cov64);
          json.Key("exec_splits");
          json.Value(measured.Counter("exec.splits"));
          json.Key("measured_team");
          json.Value(measured.Gauge("exec.team"));
          json.Key("measured_busy_cov");
          json.Value(measured.Gauge("exec.busy_cov"));
          json.Key("measured_seconds");
          json.Value(measured.SpanSeconds("exec.region_wall"));
          json.EndObject();
        }
        chart_series.push_back(std::move(series));
        row.push_back(TablePrinter::Cell(cov64, 3));
        table.AddRow(std::move(row));
      }
      table.Print();
      std::vector<std::string> xs;
      for (std::int64_t t : thread_counts) xs.push_back(std::to_string(t));
      ChartOptions chart_options;
      chart_options.y_label = "speedup";
      std::cout << RenderChart(xs, chart_series, chart_options) << "\n";
    }
  }
  if (!json_path.empty()) {
    json.EndArray();
    json.EndObject();
    WriteFileAtomic(json_path, json.str() + '\n');
    std::cout << "wrote " << json_path << "\n";
  }
  bench::EmitTelemetryIfRequested(args, telemetry);
  return 0;
}
