// Shared plumbing for the bench harness binaries.
//
// Every bench binary reproduces one paper table or figure on the synthetic
// dataset suite. Common flags:
//   --scale S        dataset scale factor (default 1.0; see datasets.h)
//   --datasets a,b   comma-separated subset of suite names
//   --k K            target clique size where applicable
//   --telemetry-json P  write run telemetry as one JSON document to P
// All binaries run with no arguments in bounded time.
#ifndef PIVOTSCALE_BENCH_BENCH_COMMON_H_
#define PIVOTSCALE_BENCH_BENCH_COMMON_H_

#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "graph/dag.h"
#include "graph/datasets.h"
#include "order/approx_core_order.h"
#include "order/heuristic.h"
#include "order/kcore_order.h"
#include "order/ordering.h"
#include "pivot/count.h"
#include "sim/scaling_sim.h"
#include "util/cli.h"
#include "util/telemetry.h"
#include "util/timer.h"
#include "util/uint128.h"

namespace pivotscale {
namespace bench {

// Parses --scale / --datasets and materializes the requested suite.
inline std::vector<Dataset> LoadSuite(const ArgParser& args,
                                      double default_scale = 1.0) {
  const double scale = args.GetDouble("scale", default_scale);
  std::vector<std::string> names;
  if (args.Has("datasets")) {
    const std::string list = args.GetString("datasets", "");
    std::stringstream ss(list);
    std::string token;
    while (std::getline(ss, token, ','))
      if (!token.empty()) names.push_back(token);
  } else {
    names = DatasetNames();
  }
  std::vector<Dataset> suite;
  suite.reserve(names.size());
  for (const std::string& name : names)
    suite.push_back(MakeDataset(name, scale));
  return suite;
}

// Heuristic thresholds for the synthetic suite. The decision *rule* is the
// paper's (Section III-E); the numeric thresholds are recalibrated for the
// analog suite exactly as the paper calibrated them for the SNAP suite:
// the |V| > 1M gate scales to the analog sizes, and the a-ratio /
// common-fraction cutoffs shift because scaled-down RMAT hubs are
// intrinsically more assortative than their SNAP namesakes (see
// EXPERIMENTS.md, Table IV).
inline HeuristicConfig SuiteHeuristicConfig() {
  HeuristicConfig config;
  config.min_nodes = 15'000;
  config.a_ratio_threshold = 0.05;
  config.common_fraction_threshold = 0.30;
  return config;
}

// The ordering sweep used by Figures 5-8: core is the normalization
// baseline; the rest are this work's alternatives plus degree.
struct NamedSpec {
  std::string label;
  OrderingSpec spec;
};

inline std::vector<NamedSpec> OrderingSweep() {
  return {
      {"core", {OrderingKind::kCore}},
      {"approx(-0.5)", {OrderingKind::kApproxCore, -0.5}},
      {"approx(0.1)", {OrderingKind::kApproxCore, 0.1}},
      {"approx(50000)", {OrderingKind::kApproxCore, 50000}},
      {"kcore", {OrderingKind::kKCore}},
      {"centrality", {OrderingKind::kCentrality, 0, 3}},
      {"degree", {OrderingKind::kDegree}},
  };
}

// One ordering evaluated end-to-end on one graph: measured single-core
// phase times plus modeled 64-thread components, used by the Figure 6/7/8
// benches (the paper's numbers are 64-thread; on one core the phase
// balance shifts — see EXPERIMENTS.md).
struct OrderingRun {
  Ordering ordering;
  double order_seconds = 0;    // measured, single core
  int rounds = 1;              // parallel rounds; -1 = inherently serial
  double order_seconds64 = 0;  // modeled at 64 threads
  EdgeId max_out_degree = 0;
  double count_seconds = 0;    // measured, single core
  double count_seconds64 = 0;  // work-trace makespan at 64 threads
  double Total1() const { return order_seconds + count_seconds; }
  double Total64() const { return order_seconds64 + count_seconds64; }
};

// Per-round barrier latency charged by the 64-thread ordering model.
inline constexpr double kOrderingBarrierSeconds = 5e-6;

// Computes the ordering, directionalizes, and runs a traced single-thread
// count; fills both the measured and the modeled-64 components. The
// ordering model: the exact core peel stays sequential; every other
// ordering's parallel passes divide by 64 plus one barrier per round.
// When `telemetry` is non-null, per-stage spans are recorded under the
// run's label ("<label>.ordering" / "<label>.counting") and op counters
// accumulate across runs, so a whole sweep lands in one run report.
inline OrderingRun EvaluateOrdering(const Graph& g, const NamedSpec& named,
                                    std::uint32_t k,
                                    TelemetryRegistry* telemetry = nullptr) {
  OrderingRun run;
  Timer order_timer;
  run.ordering = ComputeOrdering(g, named.spec, telemetry);
  run.order_seconds = order_timer.Seconds();

  switch (named.spec.kind) {
    case OrderingKind::kCore:
      run.rounds = -1;
      break;
    case OrderingKind::kDegree:
      run.rounds = 1;
      break;
    case OrderingKind::kCentrality:
      run.rounds = named.spec.iterations;
      break;
    case OrderingKind::kApproxCore:
      run.rounds =
          ApproxCoreOrderingWithStats(g, named.spec.epsilon).rounds;
      break;
    case OrderingKind::kKCore: {
      int rounds = 0;
      CoreDecomposition(g, &rounds);
      run.rounds = rounds;
      break;
    }
  }
  run.order_seconds64 =
      run.rounds < 0 ? run.order_seconds
                     : run.order_seconds / 64 +
                           run.rounds * kOrderingBarrierSeconds;

  const Graph dag = Directionalize(g, run.ordering.ranks, telemetry);
  run.max_out_degree = MaxOutDegree(dag);
  CountOptions options;
  options.k = k;
  options.collect_work_trace = true;
  options.num_threads = 1;
  options.telemetry = telemetry;
  Timer count_timer;
  const CountResult result = CountCliques(dag, options);
  run.count_seconds = count_timer.Seconds();

  if (telemetry != nullptr) {
    telemetry->RecordSpan(named.label + ".ordering", run.order_seconds);
    telemetry->RecordSpan(named.label + ".counting", run.count_seconds);
    telemetry->SetGauge(named.label + ".max_out_degree",
                        static_cast<double>(run.max_out_degree));
  }

  ScalingSimConfig sim;
  sim.num_threads = 64;
  sim.per_thread_footprint_bytes = result.workspace_bytes;
  run.count_seconds64 =
      SimulateScaling(result.work_trace, sim).makespan_seconds;
  return run;
}

// Writes the registry as a run-report JSON document when the binary was
// invoked with --telemetry-json=<path>, so every bench emits
// machine-readable telemetry alongside its table. Returns true if written.
inline bool EmitTelemetryIfRequested(const ArgParser& args,
                                     const TelemetryRegistry& registry) {
  if (!args.Has("telemetry-json")) return false;
  const std::string path = args.GetString("telemetry-json", "");
  WriteRunReport(path, registry);
  std::cout << "telemetry written to " << path << "\n";
  return true;
}

// Formats a count or a time cell, using the paper's ">budget" marker style.
inline std::string TimeCell(double seconds, bool timed_out,
                            double budget_seconds) {
  if (timed_out) {
    std::ostringstream os;
    os << "> " << budget_seconds << "s";
    return os.str();
  }
  std::ostringstream os;
  os.precision(3);
  os << std::fixed << seconds;
  return os.str();
}

}  // namespace bench
}  // namespace pivotscale

#endif  // PIVOTSCALE_BENCH_BENCH_COMMON_H_
