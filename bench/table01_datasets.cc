// Table I: the input-graph suite — |V|, |E|, average degree, and the size
// of the largest clique (k_max), computed exactly with the all-k counting
// mode. Also reports per-graph generation time so suite costs are visible.
#include <iostream>

#include "bench_common.h"
#include "graph/dag.h"
#include "order/core_order.h"
#include "pivot/count.h"
#include "util/table.h"
#include "util/timer.h"

using namespace pivotscale;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);

  TablePrinter table("Table I: dataset suite (synthetic analogs)",
                     {"graph", "analog of", "|V|", "|E|", "avg deg",
                      "k_max", "gen+count (s)"});

  const double scale = args.GetDouble("scale", 1.0);
  for (const std::string& name : DatasetNames()) {
    if (args.Has("datasets") &&
        args.GetString("datasets", "").find(name) == std::string::npos)
      continue;
    Timer timer;
    const Dataset d = MakeDataset(name, scale);

    // k_max: largest s with a nonzero s-clique count (all-k pivoting).
    const Graph dag = Directionalize(d.graph, CoreOrdering(d.graph).ranks);
    CountOptions options;
    options.mode = CountMode::kAllK;
    const CountResult result = CountCliques(dag, options);
    std::size_t kmax = 0;
    for (std::size_t s = 1; s < result.per_size.size(); ++s)
      if (result.per_size[s] != BigCount{}) kmax = s;

    table.AddRow({d.name, d.paper_analog,
                  TablePrinter::Cell(std::uint64_t{d.graph.NumNodes()}),
                  TablePrinter::Cell(d.graph.NumUndirectedEdges()),
                  TablePrinter::Cell(d.graph.AverageDegree(), 1),
                  TablePrinter::Cell(std::uint64_t{kmax}),
                  TablePrinter::Cell(timer.Seconds(), 2)});
  }
  table.Print();
  return 0;
}
