// Figure 10: total execution time versus target clique size k using (a)
// only the core approximation, (b) only the degree ordering, and (c) the
// heuristic-selected ordering. The paper's findings: the best ordering
// stops changing once k >= 8, pivoting time is nearly flat in k, and the
// heuristic tracks the better of the two (0.99-1.43x speedup over
// approx-only, geomean 1.10x).
#include <iostream>

#include "bench_common.h"
#include "pivot/pivotscale.h"
#include "util/stats.h"
#include "util/table.h"

using namespace pivotscale;

namespace {

double RunTotal(const Graph& g, std::uint32_t k,
                std::optional<OrderingSpec> forced,
                const HeuristicConfig& config) {
  PivotScaleOptions options;
  options.k = k;
  options.heuristic = config;
  options.forced_ordering = forced;
  return CountKCliques(g, options).total_seconds;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const auto suite = bench::LoadSuite(args);
  const auto ks = args.GetIntList("ks", {4, 8, 12});
  const HeuristicConfig config = bench::SuiteHeuristicConfig();

  std::vector<double> heuristic_speedups;
  for (const Dataset& d : suite) {
    TablePrinter table("Figure 10 series: " + d.name + " (total seconds)",
                       {"k", "approx-core(-0.5)", "degree", "heuristic",
                        "heuristic speedup vs approx"});
    for (std::int64_t k64 : ks) {
      const auto k = static_cast<std::uint32_t>(k64);
      const double approx = RunTotal(
          d.graph, k, OrderingSpec{OrderingKind::kApproxCore, -0.5}, config);
      const double degree = RunTotal(
          d.graph, k, OrderingSpec{OrderingKind::kDegree}, config);
      const double heuristic = RunTotal(d.graph, k, std::nullopt, config);
      heuristic_speedups.push_back(approx / heuristic);
      table.AddRow({TablePrinter::Cell(k64), TablePrinter::Cell(approx, 3),
                    TablePrinter::Cell(degree, 3),
                    TablePrinter::Cell(heuristic, 3),
                    TablePrinter::Cell(approx / heuristic, 2)});
    }
    table.Print();
    std::cout << "\n";
  }
  std::cout << "heuristic speedup over approx-only geomean: "
            << TablePrinter::Cell(GeoMean(heuristic_speedups), 2)
            << "x  (paper: 1.10x over 0.99-1.43x)\n";
  return 0;
}
