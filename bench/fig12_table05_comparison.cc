// Figure 12 + Table V: total execution time for counting k-cliques
// (k = 6..13) with each algorithm on each graph (LiveJournal handled
// separately, as in the paper):
//   Pivoter      — naive-parallel baseline (sequential core ordering +
//                  dense structure + static schedule)
//   Arb-Count    — enumeration baseline (time grows steeply with k; runs
//                  over the budget are reported as "> Bs" and larger k for
//                  that graph are skipped, like the paper's "> 2h")
//   GPU-Pivot    — bit-matrix rebuild-per-level model (the paper stops
//                  reporting GPU numbers at k = 11; we run all k)
//   PivotScale   — this work, heuristic-selected ordering + remap structure
//
// Measured columns are single-core wall times. The @64sim columns replay
// the same runs' work traces through the scaling simulator (sequential
// ordering + static schedule + dense footprint for Pivoter; parallel
// ordering + dynamic schedule + remap footprint for PivotScale),
// reproducing the paper's 64-thread relationship. Expected shape:
// enumeration wins tiny k, pivoting flat in k, PivotScale the fastest
// pivoting implementation at scale, crossover near k = 8.
#include <iostream>

#include "baselines/enumeration.h"
#include "baselines/gpu_pivot_model.h"
#include "bench_common.h"
#include "graph/dag.h"
#include "order/core_order.h"
#include "pivot/count.h"
#include "pivot/pivotscale.h"
#include "sim/scaling_sim.h"
#include "util/ascii_chart.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

using namespace pivotscale;

namespace {

constexpr int kSimThreads = 64;
// The @64sim columns use the same scaled-LLC machine model as Figure 11
// (12 MB; see docs/simulation.md): the analogs are ~100x smaller than the
// paper's graphs, so the dense structure's footprint is judged against a
// proportionally scaled cache.
constexpr std::size_t kScaledLlcBytes = std::size_t{12} << 20;

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  std::vector<Dataset> suite = bench::LoadSuite(args);
  // LiveJournal gets its own deep-dive bench (fig13), mirroring the paper.
  if (!args.Has("datasets")) {
    std::erase_if(suite, [](const Dataset& d) {
      return d.name == "livejournal-like";
    });
  }
  const auto ks = args.GetIntList("ks", {6, 7, 8, 9, 10, 11, 12, 13});
  const double budget = args.GetDouble("budget", 5.0);
  const HeuristicConfig config = bench::SuiteHeuristicConfig();

  std::vector<double> sim_speedups;  // PivotScale@64 vs Pivoter@64
  for (const Dataset& d : suite) {
    TablePrinter table("Table V / Figure 12 series: " + d.name +
                           " (seconds; enumeration budget " +
                           TablePrinter::Cell(budget, 0) + "s)",
                       {"k", "Pivoter", "Arb-Count", "GPU-Pivot(model)",
                        "PivotScale", "Pivoter@64sim", "PivotScale@64sim",
                        "k-cliques"});

    // The DAG-based baselines share one core ordering per graph.
    Timer core_timer;
    const Ordering core = CoreOrdering(d.graph);
    const double core_order_seconds = core_timer.Seconds();
    const Graph core_dag = Directionalize(d.graph, core.ranks);

    std::vector<std::string> xs;
    std::vector<ChartSeries> chart = {{"Pivoter", {}},
                                      {"Arb-Count", {}},
                                      {"GPU-Pivot", {}},
                                      {"PivotScale", {}}};
    bool enum_dead = false;
    for (std::int64_t k64 : ks) {
      const auto k = static_cast<std::uint32_t>(k64);

      // Naive Pivoter: sequential core ordering + dense counting; the same
      // traced run feeds the static-schedule 64-thread simulation.
      CountOptions dense_options;
      dense_options.k = k;
      dense_options.structure = SubgraphKind::kDense;
      dense_options.collect_work_trace = true;
      dense_options.num_threads = 1;
      Timer naive_timer;
      const CountResult naive = CountCliques(core_dag, dense_options);
      const double naive_seconds = core_order_seconds + naive_timer.Seconds();
      ScalingSimConfig naive_sim;
      naive_sim.num_threads = kSimThreads;
      naive_sim.static_schedule = true;
      naive_sim.cache_capacity_bytes = kScaledLlcBytes;
      naive_sim.per_thread_footprint_bytes = naive.workspace_bytes;
      const double naive_sim64 =
          core_order_seconds +
          SimulateScaling(naive.work_trace, naive_sim).makespan_seconds;

      std::string enum_cell;
      double enum_seconds_chart = budget;  // timed-out cells plot at budget
      if (enum_dead) {
        enum_cell = "> " + TablePrinter::Cell(budget, 0) + "s";
      } else {
        EnumerationOptions enum_options;
        enum_options.k = k;
        enum_options.time_budget_seconds = budget;
        Timer enum_timer;
        const EnumerationResult er =
            CountCliquesEnumeration(core_dag, enum_options);
        enum_dead = er.timed_out;
        if (!er.timed_out)
          enum_seconds_chart = core_order_seconds + enum_timer.Seconds();
        enum_cell = bench::TimeCell(core_order_seconds + enum_timer.Seconds(),
                                    er.timed_out, budget);
      }

      Timer gpu_timer;
      CountCliquesGpuPivotModel(core_dag, k);
      const double gpu_seconds = core_order_seconds + gpu_timer.Seconds();

      // PivotScale: one traced run gives both the measured total and the
      // dynamic-schedule 64-thread simulation.
      PivotScaleOptions ps_options;
      ps_options.k = k;
      ps_options.heuristic = config;
      ps_options.count.collect_work_trace = true;
      ps_options.count.num_threads = 1;
      const PivotScaleResult ps = CountKCliques(d.graph, ps_options);
      ScalingSimConfig ps_sim;
      ps_sim.num_threads = kSimThreads;
      ps_sim.cache_capacity_bytes = kScaledLlcBytes;
      ps_sim.per_thread_footprint_bytes = ps.count.workspace_bytes;
      const double ps_sim64 =
          ps.heuristic_seconds +
          (ps.ordering_seconds + ps.directionalize_seconds) / kSimThreads +
          SimulateScaling(ps.count.work_trace, ps_sim).makespan_seconds;
      if (ps_sim64 > 0) sim_speedups.push_back(naive_sim64 / ps_sim64);

      xs.push_back(std::to_string(k64));
      chart[0].values.push_back(naive_seconds);
      chart[1].values.push_back(enum_seconds_chart);
      chart[2].values.push_back(gpu_seconds);
      chart[3].values.push_back(ps.total_seconds);
      table.AddRow({TablePrinter::Cell(k64),
                    TablePrinter::Cell(naive_seconds, 3), enum_cell,
                    TablePrinter::Cell(gpu_seconds, 3),
                    TablePrinter::Cell(ps.total_seconds, 3),
                    TablePrinter::Cell(naive_sim64, 4),
                    TablePrinter::Cell(ps_sim64, 4), ps.total.ToString()});
    }
    table.Print();
    ChartOptions chart_options;
    chart_options.log_y = true;
    chart_options.y_label =
        "seconds (log; Arb-Count clipped at the budget)";
    std::cout << RenderChart(xs, chart, chart_options) << "\n";
  }
  if (!sim_speedups.empty())
    std::cout << "PivotScale@64sim speedup over Pivoter@64sim geomean: "
              << TablePrinter::Cell(GeoMean(sim_speedups), 2)
              << "x  (paper: 47.05x over 25.66-110.58x)\n";
  return 0;
}
