// Figure 6: ordering-time speedup over the (sequential) core ordering.
//
// The paper measures this at 64 threads, where the parallel orderings'
// round-based structure pays off. On one core the approximation does
// strictly more passes than the exact peel, so this bench reports both:
// the measured single-core speedup, and a modeled 64-thread speedup
// (parallel work / 64 + a per-round barrier cost; the exact core peel
// stays sequential). Round counts per ordering are printed alongside
// (paper: 160-6033 rounds for eps = -0.5, 8-15 for eps = 0.1).
#include <iostream>

#include "bench_common.h"
#include "order/approx_core_order.h"
#include "order/kcore_order.h"
#include "util/table.h"
#include "util/timer.h"

using namespace pivotscale;

namespace {

// Barrier/sync cost charged per parallel round in the 64-thread model
// (typical OpenMP barrier latency at this core count).
constexpr double kBarrierSeconds = 5e-6;

// Number of synchronized parallel rounds an ordering executes; -1 means
// inherently sequential (the exact core peel).
int RoundsFor(const Graph& g, const bench::NamedSpec& named) {
  switch (named.spec.kind) {
    case OrderingKind::kCore:
      return -1;
    case OrderingKind::kDegree:
      return 1;
    case OrderingKind::kCentrality:
      return named.spec.iterations;
    case OrderingKind::kApproxCore:
      return ApproxCoreOrderingWithStats(g, named.spec.epsilon).rounds;
    case OrderingKind::kKCore: {
      int rounds = 0;
      CoreDecomposition(g, &rounds);
      return rounds;
    }
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const auto suite = bench::LoadSuite(args);
  const auto sweep = bench::OrderingSweep();
  const int trials = static_cast<int>(args.GetInt("trials", 3));

  std::vector<std::string> header = {"graph"};
  for (const auto& named : sweep) header.push_back(named.label);
  for (const auto& named : sweep)
    if (named.label != "core") header.push_back(named.label + "@64");
  header.push_back("rounds eps=-0.5");
  TablePrinter table(
      "Figure 6: ordering-time speedup over core (measured 1-core and "
      "modeled 64-thread; higher is better)",
      header);

  for (const Dataset& d : suite) {
    std::vector<std::string> row = {d.name};
    double core_seconds = 0;
    std::vector<double> serial_seconds;
    std::vector<int> rounds;
    for (const auto& named : sweep) {
      double best = 1e30;
      for (int t = 0; t < trials; ++t) {
        Timer timer;
        ComputeOrdering(d.graph, named.spec);
        best = std::min(best, timer.Seconds());
      }
      if (named.label == "core") core_seconds = best;
      serial_seconds.push_back(best);
      rounds.push_back(RoundsFor(d.graph, named));
      row.push_back(
          TablePrinter::Cell(best > 0 ? core_seconds / best : 0.0, 2));
    }
    int approx_low_rounds = 0;
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      if (sweep[i].label == "core") continue;
      // Modeled 64-thread time: the parallel passes scale; each round
      // costs one barrier. The exact core peel stays at core_seconds.
      const double at64 =
          serial_seconds[i] / 64 + rounds[i] * kBarrierSeconds;
      row.push_back(
          TablePrinter::Cell(at64 > 0 ? core_seconds / at64 : 0.0, 1));
      if (sweep[i].label == "approx(-0.5)") approx_low_rounds = rounds[i];
    }
    row.push_back(TablePrinter::Cell(std::int64_t{approx_low_rounds}));
    table.AddRow(std::move(row));
  }
  table.Print();
  return 0;
}
