// Extensions beyond the paper's tables, exercised end-to-end:
//  * the hybrid counter (Section VI-H's suggested enumeration/pivoting
//    switch) against both pure strategies across k,
//  * the stratified-sampling approximate counter (Section VII's problem
//    class) — accuracy and speedup vs the exact count,
//  * the maximal-clique enumerator (the Section II-B machinery as a
//    first-class feature).
#include <iostream>

#include "approx/approx_count.h"
#include "baselines/enumeration.h"
#include "bench_common.h"
#include "graph/dag.h"
#include "order/core_order.h"
#include "pivot/hybrid.h"
#include "pivot/maximal.h"
#include "pivot/pivotscale.h"
#include "util/table.h"
#include "util/timer.h"

using namespace pivotscale;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  std::vector<Dataset> suite;
  if (args.Has("datasets")) {
    suite = bench::LoadSuite(args);
  } else {
    for (const char* name : {"dblp-like", "skitter-like", "orkut-like"})
      suite.push_back(MakeDataset(name, args.GetDouble("scale", 1.0)));
  }
  const HeuristicConfig heuristic = bench::SuiteHeuristicConfig();

  // --- hybrid -------------------------------------------------------------
  for (const Dataset& d : suite) {
    TablePrinter table("Hybrid counter vs pure strategies: " + d.name +
                           " (seconds)",
                       {"k", "enumeration", "pivotscale", "hybrid",
                        "hybrid strategy"});
    const Ordering core = CoreOrdering(d.graph);
    const Graph dag = Directionalize(d.graph, core.ranks);
    for (std::int64_t k64 : args.GetIntList("ks", {3, 5, 8, 11})) {
      const auto k = static_cast<std::uint32_t>(k64);
      EnumerationOptions enum_options;
      enum_options.k = k;
      enum_options.time_budget_seconds = args.GetDouble("budget", 10.0);
      Timer te;
      const EnumerationResult er = CountCliquesEnumeration(dag, enum_options);
      const double enum_seconds = te.Seconds();

      PivotScaleOptions ps_options;
      ps_options.k = k;
      ps_options.heuristic = heuristic;
      Timer tp;
      const PivotScaleResult ps = CountKCliques(d.graph, ps_options);
      const double ps_seconds = tp.Seconds();

      HybridConfig hybrid;
      hybrid.heuristic = heuristic;
      const HybridResult hy = CountKCliquesHybrid(d.graph, k, hybrid);
      if (!er.timed_out && hy.total != er.total) {
        std::cerr << "HYBRID MISMATCH on " << d.name << " k=" << k << "\n";
        return 1;
      }

      table.AddRow({TablePrinter::Cell(k64),
                    bench::TimeCell(enum_seconds, er.timed_out,
                                    enum_options.time_budget_seconds),
                    TablePrinter::Cell(ps_seconds, 3),
                    TablePrinter::Cell(hy.seconds, 3), hy.strategy});
    }
    table.Print();
    std::cout << "\n";
  }

  // --- approximate counting ----------------------------------------------
  TablePrinter approx("Stratified-sampling approximation (k=8)",
                      {"graph", "exact", "estimate", "rel. error",
                       "reported SE", "exact (s)", "approx (s)",
                       "speedup"});
  for (const Dataset& d : suite) {
    const Graph dag = Directionalize(d.graph, CoreOrdering(d.graph).ranks);
    CountOptions exact_options;
    exact_options.k = 8;
    Timer tx;
    const BigCount exact = CountCliques(dag, exact_options).total;
    const double exact_seconds = tx.Seconds();

    ApproxCountConfig config;
    config.sample_fraction = args.GetDouble("sample-fraction", 0.05);
    const ApproxCountResult est = ApproxCountKCliques(dag, 8, config);
    const double rel_err =
        exact.AsDouble() > 0
            ? std::abs(est.estimate_double - exact.AsDouble()) /
                  exact.AsDouble()
            : 0;
    approx.AddRow({d.name, exact.ToString(), est.estimate.ToString(),
                   TablePrinter::Cell(rel_err, 4),
                   TablePrinter::Cell(est.relative_std_error, 4),
                   TablePrinter::Cell(exact_seconds, 3),
                   TablePrinter::Cell(est.seconds, 3),
                   TablePrinter::Cell(exact_seconds / est.seconds, 1)});
  }
  approx.Print();
  std::cout << "\n";

  // --- maximal cliques -----------------------------------------------------
  TablePrinter maximal("Maximal clique enumeration",
                       {"graph", "maximal cliques", "largest (omega)",
                        "seconds"});
  for (const Dataset& d : suite) {
    const MaximalCliqueStats stats = CountMaximalCliques(d.graph);
    maximal.AddRow({d.name, stats.total.ToString(),
                    TablePrinter::Cell(std::uint64_t{stats.largest}),
                    TablePrinter::Cell(stats.seconds, 3)});
  }
  maximal.Print();
  return 0;
}
