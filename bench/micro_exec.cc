// Microbenchmarks (google-benchmark): the execution layer itself.
// Measures what the scheduler adds and costs — chunk-bound construction
// in both modes, self-scheduling overhead at different granularities,
// reduction throughput, the thread-budget lease path, and the counting
// driver across split thresholds (never / default / every root).
#include <benchmark/benchmark.h>

#include <cstdint>

#include "exec/executor.h"
#include "exec/thread_budget.h"
#include "graph/builder.h"
#include "graph/dag.h"
#include "graph/generators.h"
#include "order/core_order.h"
#include "pivot/count.h"

namespace {

using namespace pivotscale;

void BM_BuildChunkBoundsUniform(benchmark::State& state) {
  ExecOptions options;
  options.chunks_per_worker = 8;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        exec_detail::BuildChunkBounds(1 << 16, 8, options).size());
}
BENCHMARK(BM_BuildChunkBoundsUniform);

void BM_BuildChunkBoundsCostWeighted(benchmark::State& state) {
  ExecOptions options;
  options.chunks_per_worker = 8;
  // Power-law-ish skew: a few heavy items, a long cheap tail.
  options.cost = [](std::size_t i) {
    return i % 997 == 0 ? 10'000.0 : 1.0;
  };
  for (auto _ : state)
    benchmark::DoNotOptimize(
        exec_detail::BuildChunkBounds(1 << 16, 8, options).size());
}
BENCHMARK(BM_BuildChunkBoundsCostWeighted);

void BM_ThreadBudgetAcquireRelease(benchmark::State& state) {
  for (auto _ : state) {
    ThreadLease lease = ThreadBudget::Global().Acquire(0);
    benchmark::DoNotOptimize(lease.threads());
  }
}
BENCHMARK(BM_ThreadBudgetAcquireRelease);

// Region launch + teardown overhead against a trivial body, across
// self-scheduling granularities (arg = chunks_per_worker).
void BM_ParallelForOverhead(benchmark::State& state) {
  ExecOptions options;
  options.chunks_per_worker = static_cast<int>(state.range(0));
  for (auto _ : state) {
    std::uint64_t sink = 0;
    ParallelFor(1 << 14, options, [&sink](std::size_t i) {
      benchmark::DoNotOptimize(sink += i);
    });
  }
}
BENCHMARK(BM_ParallelForOverhead)->Arg(1)->Arg(8)->Arg(64);

void BM_ParallelReduceSum(benchmark::State& state) {
  ExecOptions options;
  for (auto _ : state) {
    const std::uint64_t total = ParallelReduce(
        std::size_t{1} << 18, options, std::uint64_t{0},
        [](std::uint64_t& acc, std::size_t i) { acc += i; },
        [](std::uint64_t& into, std::uint64_t from) { into += from; });
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_ParallelReduceSum);

const Graph& BenchDag() {
  static const Graph dag = [] {
    EdgeList edges = Rmat(12, 10.0, 23);
    PlantCliques(&edges, 4096, 6, 6, 9, 24);
    const Graph g = BuildGraph(std::move(edges));
    return Directionalize(g, CoreOrdering(g).ranks);
  }();
  return dag;
}

// The counting driver across the splitting spectrum:
// arg 0 = kNeverSplit (pure vertex-parallel), 1 = default threshold
// (split only the long tail), 2 = split every root with out-edges.
void BM_CountCliquesSplitThreshold(benchmark::State& state) {
  CountOptions options;
  options.k = 6;
  options.structure = SubgraphKind::kRemap;
  switch (state.range(0)) {
    case 0: options.split_threshold = kNeverSplit; break;
    case 1: options.split_threshold = kDefaultSplitThreshold; break;
    default: options.split_threshold = 0; break;
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(
        CountCliques(BenchDag(), options).total.value());
}
BENCHMARK(BM_CountCliquesSplitThreshold)->Arg(0)->Arg(1)->Arg(2);

}  // namespace
