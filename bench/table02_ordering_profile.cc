// Table II: counting-phase profile of the degree ordering normalized to the
// core ordering.
//
// Hardware-counter substitution (DESIGN.md): instruction count -> recursion
// edge operations, function calls -> recursive call count, LLC MPKI -> miss
// rate of a set-associative LRU cache simulator replaying modeled subgraph
// accesses, IPC -> edge-ops per second. The paper's relationship to verify:
// degree ordering executes MORE operations but with FEWER cache misses.
#include <iostream>

#include "bench_common.h"
#include "graph/dag.h"
#include "order/core_order.h"
#include "order/degree_order.h"
#include "pivot/count.h"
#include "pivot/pivoter.h"
#include "pivot/subgraph_remap.h"
#include "sim/cache_sim.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

using namespace pivotscale;

namespace {

struct Profile {
  OpCounters ops;
  double miss_per_kilo = 0;  // cache-sim misses per 1000 modeled accesses
  double ops_per_second = 0;
};

// Counts with op stats for throughput + replays a root sample through the
// cache simulator for the locality proxy.
Profile ProfileCounting(const Graph& dag, std::uint32_t k,
                        NodeId sample_roots) {
  Profile profile;

  CountOptions options;
  options.k = k;
  options.collect_op_stats = true;
  Timer timer;
  const CountResult result = CountCliques(dag, options);
  profile.ops = result.ops;
  const double seconds = timer.Seconds();
  profile.ops_per_second =
      seconds > 0 ? static_cast<double>(result.ops.edge_ops) / seconds : 0;

  // Cache replay on a root sample: a per-core LLC slice (4 MiB, 16-way).
  CacheSim cache(std::size_t{4} << 20, 16, 64);
  const BinomialTable binom(
      static_cast<std::uint32_t>(dag.MaxDegree()) + 2);
  PivotCounter<RemapSubgraph, TraceStats<CacheSim>> counter(
      dag, CountMode::kSingleK, k, /*per_vertex=*/false,
      static_cast<std::uint32_t>(dag.MaxDegree()) + 1, &binom);
  counter.stats().sink = &cache;
  const NodeId n = std::min(dag.NumNodes(), sample_roots);
  for (NodeId v = 0; v < n; ++v) counter.ProcessRoot(v);
  profile.miss_per_kilo = cache.MissesPerKiloAccess();
  return profile;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const auto suite = bench::LoadSuite(args);
  const auto k = static_cast<std::uint32_t>(args.GetInt("k", 8));
  const auto sample =
      static_cast<NodeId>(args.GetInt("sample-roots", 4000));

  TablePrinter table(
      "Table II: degree-ordering counting profile normalized to core "
      "ordering (k=" +
          std::to_string(k) + ")",
      {"graph", "norm edge-ops", "norm calls", "norm miss/kacc",
       "norm ops/s"});

  std::vector<double> norm_ops, norm_calls, norm_miss, norm_ips;
  for (const Dataset& d : suite) {
    const Graph core_dag =
        Directionalize(d.graph, CoreOrdering(d.graph).ranks);
    const Graph degree_dag =
        Directionalize(d.graph, DegreeOrdering(d.graph).ranks);
    const Profile core = ProfileCounting(core_dag, k, sample);
    const Profile degree = ProfileCounting(degree_dag, k, sample);

    const double r_ops = static_cast<double>(degree.ops.edge_ops) /
                         static_cast<double>(core.ops.edge_ops);
    const double r_calls = static_cast<double>(degree.ops.calls) /
                           static_cast<double>(core.ops.calls);
    const double r_miss =
        core.miss_per_kilo > 0 ? degree.miss_per_kilo / core.miss_per_kilo
                               : 1.0;
    const double r_ips =
        core.ops_per_second > 0 ? degree.ops_per_second / core.ops_per_second
                                : 1.0;
    norm_ops.push_back(r_ops);
    norm_calls.push_back(r_calls);
    norm_miss.push_back(r_miss);
    norm_ips.push_back(r_ips);
    table.AddRow({d.name, TablePrinter::Cell(r_ops, 2),
                  TablePrinter::Cell(r_calls, 2),
                  TablePrinter::Cell(r_miss, 2),
                  TablePrinter::Cell(r_ips, 2)});
  }
  table.AddRow({"geometric mean", TablePrinter::Cell(GeoMean(norm_ops), 2),
                TablePrinter::Cell(GeoMean(norm_calls), 2),
                TablePrinter::Cell(GeoMean(norm_miss), 2),
                TablePrinter::Cell(GeoMean(norm_ips), 2)});
  table.Print();
  return 0;
}
