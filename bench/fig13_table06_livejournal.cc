// Figure 13 + Table VI: the LiveJournal deep dive. On this clique-rich
// graph execution time climbs with k for both pivoting implementations
// (unlike every other graph), the GPU-Pivot model climbs faster, and
// PivotScale wins at every k. Table VI additionally reports the exact
// k-clique counts — on the real LiveJournal this work was the first to
// report k > 10. Following the paper, the GPU-Pivot comparison stops at
// k = 8 (GPU-Pivot reports no LiveJournal numbers beyond that); the
// PivotScale@64sim column replays the work trace through the scaling
// simulator (the paper's 64-thread configuration).
#include <iostream>

#include "baselines/gpu_pivot_model.h"
#include "bench_common.h"
#include "graph/dag.h"
#include "order/approx_core_order.h"
#include "order/core_order.h"
#include "pivot/count.h"
#include "pivot/pivotscale.h"
#include "sim/scaling_sim.h"
#include "util/ascii_chart.h"
#include "util/table.h"
#include "util/timer.h"

using namespace pivotscale;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const double scale = args.GetDouble("scale", 1.0);
  const auto ks = args.GetIntList("ks", {6, 7, 8, 9, 10, 11});
  const std::int64_t gpu_max_k = args.GetInt("gpu-max-k", 8);
  const Dataset d = MakeDataset("livejournal-like", scale);
  const HeuristicConfig config = bench::SuiteHeuristicConfig();

  TablePrinter table(
      "Table VI / Figure 13: livejournal-like deep dive (total seconds)",
      {"k", "k-cliques", "PivotScale", "PivotScale@64sim",
       "GPU-Pivot(model)", "PS growth vs prev k"});

  // Shared DAG for the trace-driven simulation and the GPU model.
  const Graph dag = Directionalize(d.graph, CoreOrdering(d.graph).ranks);

  std::vector<std::string> xs;
  ChartSeries ps_series{"PivotScale", {}}, gpu_series{"GPU-Pivot(model)", {}};
  double prev_ps = 0;
  for (std::int64_t k64 : ks) {
    const auto k = static_cast<std::uint32_t>(k64);

    PivotScaleOptions ps_options;
    ps_options.k = k;
    ps_options.heuristic = config;
    ps_options.count.collect_work_trace = true;
    const PivotScaleResult ps = CountKCliques(d.graph, ps_options);

    ScalingSimConfig sim;
    sim.num_threads = 64;
    sim.cache_capacity_bytes = std::size_t{12} << 20;  // scaled LLC (fig11)
    sim.per_thread_footprint_bytes = ps.count.workspace_bytes;
    const double ps_sim64 =
        ps.heuristic_seconds + ps.ordering_seconds / 64 +
        SimulateScaling(ps.count.work_trace, sim).makespan_seconds;

    std::string gpu_cell = "-";
    xs.push_back(std::to_string(k64));
    ps_series.values.push_back(ps.total_seconds);
    if (k64 <= gpu_max_k) {
      Timer gpu_timer;
      CountCliquesGpuPivotModel(dag, k);
      const double gpu_seconds = gpu_timer.Seconds();
      gpu_series.values.push_back(gpu_seconds);
      gpu_cell = TablePrinter::Cell(gpu_seconds, 3);
    }

    table.AddRow({TablePrinter::Cell(k64), ps.total.ToString(),
                  TablePrinter::Cell(ps.total_seconds, 3),
                  TablePrinter::Cell(ps_sim64, 3), gpu_cell,
                  prev_ps > 0
                      ? TablePrinter::Cell(ps.total_seconds / prev_ps, 2)
                      : "-"});
    prev_ps = ps.total_seconds;
  }
  table.Print();
  ChartOptions chart_options;
  chart_options.y_label = "seconds";
  std::cout << RenderChart(xs, {ps_series, gpu_series}, chart_options);
  return 0;
}
