// Section VI-D memory study: per-thread workspace of each subgraph
// structure (measured exactly), the modeled 64-thread aggregate, the
// compression ratio versus dense, and the cache-simulator locality proxy.
// The paper reports 6.6-40x memory reduction (geomean 17.4x) and 1.2-77x
// fewer cache misses for the compact structures.
#include <iostream>

#include "bench_common.h"
#include "graph/dag.h"
#include "order/core_order.h"
#include "pivot/count.h"
#include "pivot/pivoter.h"
#include "pivot/subgraph_dense.h"
#include "pivot/subgraph_remap.h"
#include "pivot/subgraph_sparse.h"
#include "sim/cache_sim.h"
#include "sim/mem_model.h"
#include "util/mem.h"
#include "util/stats.h"
#include "util/table.h"

using namespace pivotscale;

namespace {

// Measured single-thread workspace after a full counting run.
std::size_t MeasureWorkspace(const Graph& dag, std::uint32_t k,
                             SubgraphKind kind) {
  CountOptions options;
  options.k = k;
  options.structure = kind;
  options.num_threads = 1;
  return CountCliques(dag, options).workspace_bytes;
}

// Cache-replay miss rate over a root sample for one structure.
template <typename SG>
double ReplayMissRate(const Graph& dag, std::uint32_t k, NodeId sample) {
  CacheSim cache(std::size_t{4} << 20, 16, 64);
  const BinomialTable binom(
      static_cast<std::uint32_t>(dag.MaxDegree()) + 2);
  PivotCounter<SG, TraceStats<CacheSim>> counter(
      dag, CountMode::kSingleK, k, /*per_vertex=*/false,
      static_cast<std::uint32_t>(dag.MaxDegree()) + 1, &binom);
  counter.stats().sink = &cache;
  const NodeId n = std::min(dag.NumNodes(), sample);
  for (NodeId v = 0; v < n; ++v) counter.ProcessRoot(v);
  return cache.MissesPerKiloAccess();
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const auto suite = bench::LoadSuite(args);
  const auto k = static_cast<std::uint32_t>(args.GetInt("k", 8));
  const auto sample = static_cast<NodeId>(args.GetInt("sample-roots", 3000));
  const int threads = static_cast<int>(args.GetInt("threads", 64));

  TablePrinter table(
      "Section VI-D: subgraph-structure memory and locality (k=" +
          std::to_string(k) + ", modeled at " + std::to_string(threads) +
          " threads)",
      {"graph", "dense/thr", "sparse/thr", "remap/thr", "dense agg",
       "remap agg", "mem ratio", "dense m/ka", "sparse m/ka",
       "remap m/ka"});

  std::vector<double> mem_ratios, miss_ratios;
  for (const Dataset& d : suite) {
    const Graph dag = Directionalize(d.graph, CoreOrdering(d.graph).ranks);
    const std::size_t dense_b =
        MeasureWorkspace(dag, k, SubgraphKind::kDense);
    const std::size_t sparse_b =
        MeasureWorkspace(dag, k, SubgraphKind::kSparse);
    const std::size_t remap_b =
        MeasureWorkspace(dag, k, SubgraphKind::kRemap);
    const std::size_t dense_agg = AggregateWorkspaceBytes(
        SubgraphKind::kDense, dag.NumNodes(), dag.MaxDegree(), threads,
        dense_b);
    const std::size_t remap_agg = AggregateWorkspaceBytes(
        SubgraphKind::kRemap, dag.NumNodes(), dag.MaxDegree(), threads,
        remap_b);
    const double ratio = static_cast<double>(dense_b) /
                         static_cast<double>(std::max<std::size_t>(
                             1, std::max(sparse_b, remap_b)));
    mem_ratios.push_back(ratio);

    const double dense_miss = ReplayMissRate<DenseSubgraph>(dag, k, sample);
    const double sparse_miss =
        ReplayMissRate<SparseSubgraph>(dag, k, sample);
    const double remap_miss = ReplayMissRate<RemapSubgraph>(dag, k, sample);
    if (remap_miss > 0) miss_ratios.push_back(dense_miss / remap_miss);

    table.AddRow({d.name, HumanBytes(dense_b), HumanBytes(sparse_b),
                  HumanBytes(remap_b), HumanBytes(dense_agg),
                  HumanBytes(remap_agg), TablePrinter::Cell(ratio, 1),
                  TablePrinter::Cell(dense_miss, 2),
                  TablePrinter::Cell(sparse_miss, 2),
                  TablePrinter::Cell(remap_miss, 2)});
  }
  table.Print();
  std::cout << "memory compression geomean: "
            << TablePrinter::Cell(GeoMean(mem_ratios), 2)
            << "x  (paper: 17.39x over 6.63-40.24x)\n";
  if (!miss_ratios.empty())
    std::cout << "cache-miss reduction geomean (dense/remap): "
              << TablePrinter::Cell(GeoMean(miss_ratios), 2)
              << "x  (paper: 9.98x over 1.24-77x)\n";
  std::cout << "process peak RSS: " << HumanBytes(PeakRssBytes()) << "\n";
  return 0;
}
