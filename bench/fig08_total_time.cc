// Figure 8: total execution time (ordering + directionalize + counting)
// speedup over the core ordering for counting 8-cliques.
//
// The headline comparison is at the paper's 64-thread operating point
// (modeled: parallel ordering passes / 64 + per-round barriers, counting
// as work-trace makespan); the measured single-core totals are printed
// alongside. Paper takeaway: where core ordering wins the counting phase,
// approx(-0.5) wins overall (same counting, much faster ordering); degree
// wins the DBLP/Baidu/Friendster class.
#include <iostream>

#include "bench_common.h"
#include "util/table.h"

using namespace pivotscale;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const auto suite = bench::LoadSuite(args);
  const auto sweep = bench::OrderingSweep();
  const auto k = static_cast<std::uint32_t>(args.GetInt("k", 8));

  std::vector<std::string> header = {"graph"};
  for (const auto& named : sweep) header.push_back(named.label + "@64");
  for (const auto& named : sweep) header.push_back(named.label + "@1");
  header.push_back("best@64");
  TablePrinter table("Figure 8: total-time speedup over core (k=" +
                         std::to_string(k) + ", higher is better)",
                     header);

  for (const Dataset& d : suite) {
    std::vector<std::string> row = {d.name};
    std::vector<bench::OrderingRun> runs;
    for (const auto& named : sweep)
      runs.push_back(bench::EvaluateOrdering(d.graph, named, k));
    const double core_64 = runs[0].Total64();
    const double core_1 = runs[0].Total1();

    double best_speedup = 0;
    std::string best_label;
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const double speedup =
          runs[i].Total64() > 0 ? core_64 / runs[i].Total64() : 0.0;
      if (speedup > best_speedup) {
        best_speedup = speedup;
        best_label = sweep[i].label;
      }
      row.push_back(TablePrinter::Cell(speedup, 2));
    }
    for (const auto& run : runs)
      row.push_back(TablePrinter::Cell(
          run.Total1() > 0 ? core_1 / run.Total1() : 0.0, 2));
    row.push_back(best_label);
    table.AddRow(std::move(row));
  }
  table.Print();
  return 0;
}
