// Ablation study of PivotScale's design choices (Sections IV & V):
//
//  1. Early termination (Section V-A): counting with the pruning rules
//     disabled — same counts, how much more work?
//  2. All-k-up-to-k mode (Section V-A): the paper claims every clique size
//     up through k costs "only a modest amount of additional work" over
//     single-k; measure the overhead.
//  3. Scheduling (Section IV): the paper sweeps chunk sizes and scheduler
//     types and finds load balance is a minor factor; replay the work
//     trace under static and dynamic scheduling with several chunk sizes.
#include <iostream>

#include "bench_common.h"
#include "graph/dag.h"
#include "order/core_order.h"
#include "pivot/count.h"
#include "sim/scaling_sim.h"
#include "util/table.h"
#include "util/timer.h"

using namespace pivotscale;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  // Default to a representative subset to keep the bare run bounded.
  if (!args.Has("datasets")) {
    TablePrinter note("Ablations (defaults: 3 representative graphs; use "
                      "--datasets for more)",
                      {"section"});
    note.AddRow({"1: early termination  2: all-k overhead  3: scheduling"});
    note.Print();
  }
  const auto suite = [&] {
    if (args.Has("datasets")) return bench::LoadSuite(args);
    std::vector<Dataset> s;
    for (const char* name :
         {"dblp-like", "skitter-like", "livejournal-like"})
      s.push_back(MakeDataset(name, args.GetDouble("scale", 1.0)));
    return s;
  }();
  const auto k = static_cast<std::uint32_t>(args.GetInt("k", 8));

  // --- 1 & 2: recursion-mode ablations -----------------------------------
  TablePrinter modes("Ablation: early termination and all-k overhead (k=" +
                         std::to_string(k) + ", seconds / edge-ops ratio)",
                     {"graph", "single-k (s)", "no-early-term (s)",
                      "slowdown", "ops ratio", "all-up-to-k (s)",
                      "overhead vs single-k"});
  for (const Dataset& d : suite) {
    const Graph dag = Directionalize(d.graph, CoreOrdering(d.graph).ranks);

    CountOptions base;
    base.k = k;
    base.collect_op_stats = true;
    Timer t1;
    const CountResult with_term = CountCliques(dag, base);
    const double base_seconds = t1.Seconds();

    CountOptions no_term = base;
    no_term.early_termination = false;
    Timer t2;
    const CountResult without_term = CountCliques(dag, no_term);
    const double no_term_seconds = t2.Seconds();
    if (with_term.total != without_term.total) {
      std::cerr << "ABLATION MISMATCH on " << d.name << "\n";
      return 1;
    }

    CountOptions upto = base;
    upto.mode = CountMode::kAllUpToK;
    Timer t3;
    CountCliques(dag, upto);
    const double upto_seconds = t3.Seconds();

    modes.AddRow(
        {d.name, TablePrinter::Cell(base_seconds, 3),
         TablePrinter::Cell(no_term_seconds, 3),
         TablePrinter::Cell(no_term_seconds / base_seconds, 2),
         TablePrinter::Cell(static_cast<double>(without_term.ops.edge_ops) /
                                static_cast<double>(with_term.ops.edge_ops),
                            2),
         TablePrinter::Cell(upto_seconds, 3),
         TablePrinter::Cell(upto_seconds / base_seconds, 2)});
  }
  modes.Print();
  std::cout << "\n";

  // --- work decomposition: vertex-parallel vs edge-parallel --------------
  TablePrinter decomp(
      "Ablation: work decomposition (k=" + std::to_string(k) +
          ", measured seconds + per-item balance)",
      {"graph", "vertex-parallel (s)", "edge-parallel (s)",
       "edge/vertex ratio"});
  for (const Dataset& d : suite) {
    const Graph dag = Directionalize(d.graph, CoreOrdering(d.graph).ranks);
    CountOptions options;
    options.k = k;
    Timer tv;
    const CountResult vertex = CountCliques(dag, options);
    const double vertex_seconds = tv.Seconds();
    Timer te;
    const CountResult edge = CountCliquesEdgeParallel(dag, options);
    const double edge_seconds = te.Seconds();
    if (vertex.total != edge.total) {
      std::cerr << "DECOMPOSITION MISMATCH on " << d.name << "\n";
      return 1;
    }
    decomp.AddRow({d.name, TablePrinter::Cell(vertex_seconds, 3),
                   TablePrinter::Cell(edge_seconds, 3),
                   TablePrinter::Cell(edge_seconds / vertex_seconds, 2)});
  }
  decomp.Print();
  std::cout << "\n";

  // --- 3: scheduling ablation (simulated 64 threads) ---------------------
  TablePrinter sched(
      "Ablation: scheduling policy, simulated speedup at 64 threads",
      {"graph", "static", "dynamic c=1", "dynamic c=16", "dynamic c=64",
       "dynamic c=256"});
  for (const Dataset& d : suite) {
    const Graph dag = Directionalize(d.graph, CoreOrdering(d.graph).ranks);
    CountOptions options;
    options.k = k;
    options.collect_work_trace = true;
    options.num_threads = 1;
    const CountResult result = CountCliques(dag, options);

    std::vector<std::string> row = {d.name};
    ScalingSimConfig config;
    config.num_threads = 64;
    config.static_schedule = true;
    row.push_back(TablePrinter::Cell(
        SimulateSpeedup(result.work_trace, config), 1));
    config.static_schedule = false;
    for (int chunk : {1, 16, 64, 256}) {
      config.chunk_size = chunk;
      row.push_back(TablePrinter::Cell(
          SimulateSpeedup(result.work_trace, config), 1));
    }
    sched.AddRow(std::move(row));
  }
  sched.Print();
  return 0;
}
