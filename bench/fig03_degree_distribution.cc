// Figure 3: out-degree distributions of the DAG after directionalizing
// with the core ordering vs the degree ordering (the paper plots Skitter).
//
// Both DAGs have the same average degree (|E| edges each), but the degree
// ordering concentrates edges in higher-degree vertices — a higher maximum
// out-degree and a fatter tail — which is the locality mechanism behind
// Table II. Buckets are powers of two.
#include <iostream>

#include "analysis/analysis.h"
#include "bench_common.h"
#include "graph/dag.h"
#include "order/core_order.h"
#include "order/degree_order.h"
#include "util/table.h"

using namespace pivotscale;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  // Default to the Skitter analog like the paper's figure; --datasets
  // extends to the full suite.
  std::vector<Dataset> suite;
  if (args.Has("datasets")) {
    suite = bench::LoadSuite(args);
  } else {
    suite.push_back(
        MakeDataset("skitter-like", args.GetDouble("scale", 1.0)));
  }

  for (const Dataset& d : suite) {
    const Graph core_dag =
        Directionalize(d.graph, CoreOrdering(d.graph).ranks);
    const Graph degree_dag =
        Directionalize(d.graph, DegreeOrdering(d.graph).ranks);
    const auto core_hist = Log2Histogram(DegreeSequence(core_dag));
    const auto degree_hist = Log2Histogram(DegreeSequence(degree_dag));

    TablePrinter table(
        "Figure 3: DAG out-degree distribution, " + d.name +
            " (core max " + std::to_string(MaxOutDegree(core_dag)) +
            ", degree max " + std::to_string(MaxOutDegree(degree_dag)) +
            ")",
        {"out-degree bucket", "core ordering", "degree ordering"});
    const std::size_t buckets =
        std::max(core_hist.size(), degree_hist.size());
    for (std::size_t b = 0; b < buckets; ++b) {
      const std::uint64_t lo = b == 0 ? 0 : (std::uint64_t{1} << b);
      const std::uint64_t hi = (std::uint64_t{1} << (b + 1)) - 1;
      std::string bucket = "[";
      bucket += std::to_string(lo);
      bucket += ", ";
      bucket += std::to_string(hi);
      bucket += "]";
      table.AddRow({std::move(bucket),
                    TablePrinter::Cell(
                        b < core_hist.size() ? core_hist[b] : 0),
                    TablePrinter::Cell(
                        b < degree_hist.size() ? degree_hist[b] : 0)});
    }
    table.Print();
    std::cout << "\n";
  }
  return 0;
}
