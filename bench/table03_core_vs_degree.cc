// Table III: sequential core ordering vs parallel degree ordering for
// counting 8-cliques — ordering time, counting time, total time, and
// ordering quality (max out-degree) per graph, fastest total flagged.
#include <iostream>

#include "bench_common.h"
#include "graph/dag.h"
#include "order/core_order.h"
#include "order/degree_order.h"
#include "pivot/count.h"
#include "util/table.h"
#include "util/timer.h"

using namespace pivotscale;

namespace {

struct PhaseRow {
  double ordering_seconds = 0;
  double counting_seconds = 0;
  double total_seconds = 0;
  EdgeId max_out_degree = 0;
};

PhaseRow RunWith(const Graph& g, const Ordering& ordering, std::uint32_t k,
                 double ordering_seconds) {
  PhaseRow row;
  row.ordering_seconds = ordering_seconds;
  Timer timer;
  const Graph dag = Directionalize(g, ordering.ranks);
  row.max_out_degree = MaxOutDegree(dag);
  CountOptions options;
  options.k = k;
  row.counting_seconds = timer.Seconds();  // directionalize charged here
  Timer count_timer;
  CountCliques(dag, options);
  row.counting_seconds += count_timer.Seconds();
  row.total_seconds = row.ordering_seconds + row.counting_seconds;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const auto suite = bench::LoadSuite(args);
  const auto k = static_cast<std::uint32_t>(args.GetInt("k", 8));

  TablePrinter table(
      "Table III: core vs degree ordering (k=" + std::to_string(k) + ")",
      {"graph", "core ord (s)", "core cnt (s)", "core total (s)",
       "core maxout", "deg ord (s)", "deg cnt (s)", "deg total (s)",
       "deg maxout", "winner"});

  for (const Dataset& d : suite) {
    Timer t1;
    const Ordering core = CoreOrdering(d.graph);
    const double core_order_s = t1.Seconds();
    const PhaseRow core_row = RunWith(d.graph, core, k, core_order_s);

    Timer t2;
    const Ordering degree = DegreeOrdering(d.graph);
    const double degree_order_s = t2.Seconds();
    const PhaseRow deg_row = RunWith(d.graph, degree, k, degree_order_s);

    table.AddRow(
        {d.name, TablePrinter::Cell(core_row.ordering_seconds, 3),
         TablePrinter::Cell(core_row.counting_seconds, 3),
         TablePrinter::Cell(core_row.total_seconds, 3),
         TablePrinter::Cell(std::uint64_t{core_row.max_out_degree}),
         TablePrinter::Cell(deg_row.ordering_seconds, 3),
         TablePrinter::Cell(deg_row.counting_seconds, 3),
         TablePrinter::Cell(deg_row.total_seconds, 3),
         TablePrinter::Cell(std::uint64_t{deg_row.max_out_degree}),
         core_row.total_seconds <= deg_row.total_seconds ? "core"
                                                         : "degree"});
  }
  table.Print();
  return 0;
}
