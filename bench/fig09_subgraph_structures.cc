// Figure 9: counting performance of the three subgraph structures
// normalized to dense (higher is better). The paper's result: remap >=
// dense >= sparse in speed, with remap and sparse using far less memory
// (see bench/memory_study for the memory side).
#include <iostream>

#include "bench_common.h"
#include "graph/dag.h"
#include "order/core_order.h"
#include "pivot/count.h"
#include "util/table.h"
#include "util/timer.h"

using namespace pivotscale;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const auto suite = bench::LoadSuite(args);
  const auto k = static_cast<std::uint32_t>(args.GetInt("k", 8));

  TablePrinter table(
      "Figure 9: counting throughput normalized to dense (k=" +
          std::to_string(k) + ", higher is better)",
      {"graph", "dense", "sparse", "remap", "dense (s)", "sparse (s)",
       "remap (s)"});

  for (const Dataset& d : suite) {
    const Graph dag = Directionalize(d.graph, CoreOrdering(d.graph).ranks);
    double seconds[3] = {0, 0, 0};
    const SubgraphKind kinds[3] = {SubgraphKind::kDense,
                                   SubgraphKind::kSparse,
                                   SubgraphKind::kRemap};
    for (int i = 0; i < 3; ++i) {
      CountOptions options;
      options.k = k;
      options.structure = kinds[i];
      Timer timer;
      CountCliques(dag, options);
      seconds[i] = timer.Seconds();
    }
    table.AddRow({d.name, TablePrinter::Cell(1.0, 2),
                  TablePrinter::Cell(seconds[0] / seconds[1], 2),
                  TablePrinter::Cell(seconds[0] / seconds[2], 2),
                  TablePrinter::Cell(seconds[0], 3),
                  TablePrinter::Cell(seconds[1], 3),
                  TablePrinter::Cell(seconds[2], 3)});
  }
  table.Print();
  return 0;
}
