// Figure 1: frequency distribution of k-cliques per graph.
//
// One all-k counting run per graph prints the full clique-size spectrum —
// the paper's observation is that counts rise to a peak near k_max/2
// (a clique of size n contains C(n, k) k-cliques, maximized at k ~ n/2)
// before falling, so large cliques can be *more* numerous than small ones.
#include <iostream>

#include "bench_common.h"
#include "graph/dag.h"
#include "order/core_order.h"
#include "pivot/count.h"
#include "util/ascii_chart.h"
#include "util/table.h"

using namespace pivotscale;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const auto suite = bench::LoadSuite(args);

  for (const Dataset& d : suite) {
    const Graph dag = Directionalize(d.graph, CoreOrdering(d.graph).ranks);
    CountOptions options;
    options.mode = CountMode::kAllK;
    const CountResult result = CountCliques(dag, options);

    std::size_t kmax = 0;
    std::size_t kpeak = 0;
    for (std::size_t s = 1; s < result.per_size.size(); ++s) {
      if (result.per_size[s] != BigCount{}) kmax = s;
      if (result.per_size[s] > result.per_size[kpeak]) kpeak = s;
    }

    TablePrinter table(
        "Figure 1 series: " + d.name + " (k_max=" + std::to_string(kmax) +
            ", peak at k=" + std::to_string(kpeak) + ")",
        {"k", "k-cliques"});
    ChartSeries series{d.name, {}};
    std::vector<std::string> xs;
    for (std::size_t s = 2; s <= kmax; ++s) {
      table.AddRow({TablePrinter::Cell(std::uint64_t{s}),
                    result.per_size[s].ToString()});
      if (kmax <= 30 || s % 2 == 0) {  // keep the chart x-axis readable
        xs.push_back(std::to_string(s));
        series.values.push_back(result.per_size[s].AsDouble());
      }
    }
    table.Print();
    ChartOptions chart_options;
    chart_options.log_y = true;
    chart_options.y_label = "k-cliques (log)";
    chart_options.width = 72;
    std::cout << RenderChart(xs, {series}, chart_options) << "\n";
  }
  return 0;
}
