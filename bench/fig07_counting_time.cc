// Figure 7: counting-time speedup over the core ordering for counting
// 8-cliques under each alternative ordering.
//
// Two views per ordering: the measured single-core speedup, and the
// 64-thread speedup from replaying each run's work trace through the
// scaling simulator (the paper's operating point — at one core the degree
// ordering's locality advantage is amplified because there is no shared
// LLC contention; see EXPERIMENTS.md). Paper shape: core and approx(-0.5)
// lead on clique-rich graphs; degree matches or wins on DBLP/Baidu/
// Friendster-class graphs.
#include <iostream>

#include "bench_common.h"
#include "util/table.h"

using namespace pivotscale;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const auto suite = bench::LoadSuite(args);
  const auto sweep = bench::OrderingSweep();
  const auto k = static_cast<std::uint32_t>(args.GetInt("k", 8));

  std::vector<std::string> header = {"graph"};
  for (const auto& named : sweep) header.push_back(named.label);
  for (const auto& named : sweep)
    if (named.label != "core") header.push_back(named.label + "@64");
  TablePrinter table("Figure 7: counting-time speedup over core (k=" +
                         std::to_string(k) + ", higher is better)",
                     header);

  TelemetryRegistry telemetry;
  TelemetryRegistry* telemetry_ptr =
      args.Has("telemetry-json") ? &telemetry : nullptr;
  for (const Dataset& d : suite) {
    std::vector<std::string> row = {d.name};
    std::vector<bench::OrderingRun> runs;
    for (const auto& named : sweep)
      runs.push_back(
          bench::EvaluateOrdering(d.graph, named, k, telemetry_ptr));
    const double core_1 = runs[0].count_seconds;
    const double core_64 = runs[0].count_seconds64;
    for (const auto& run : runs)
      row.push_back(TablePrinter::Cell(
          run.count_seconds > 0 ? core_1 / run.count_seconds : 0.0, 2));
    for (std::size_t i = 1; i < runs.size(); ++i)
      row.push_back(TablePrinter::Cell(
          runs[i].count_seconds64 > 0 ? core_64 / runs[i].count_seconds64
                                      : 0.0,
          2));
    table.AddRow(std::move(row));
  }
  table.Print();
  bench::EmitTelemetryIfRequested(args, telemetry);
  return 0;
}
