// Table IV: order-selecting heuristic inputs, measurements, and decisions,
// validated against the measured best ordering (approx-core eps=-0.5 vs
// degree, total time for k=8). The paper's heuristic picks correctly on all
// eight graphs; the "agrees" column reports the same check here.
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "graph/dag.h"
#include "order/approx_core_order.h"
#include "order/degree_order.h"
#include "pivot/count.h"
#include "sim/scaling_sim.h"
#include "util/table.h"
#include "util/timer.h"

using namespace pivotscale;

namespace {

// Simulated 64-thread total for one forced ordering: parallel orderings
// are modeled at linear scaling, counting is the work-trace makespan. The
// "measured best" must be judged in the paper's 64-thread regime — on one
// real core the ordering phase is a far larger share of the total than it
// ever is at scale, which would bias the comparison toward degree.
double SimTotal64(const Graph& g, const Ordering& ordering,
                  double ordering_seconds, bool ordering_parallel,
                  std::uint32_t k) {
  const Graph dag = Directionalize(g, ordering.ranks);
  CountOptions options;
  options.k = k;
  options.collect_work_trace = true;
  options.num_threads = 1;
  const CountResult result = CountCliques(dag, options);
  ScalingSimConfig sim;
  sim.num_threads = 64;
  sim.per_thread_footprint_bytes = result.workspace_bytes;
  return (ordering_parallel ? ordering_seconds / 64 : ordering_seconds) +
         SimulateScaling(result.work_trace, sim).makespan_seconds;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const auto suite = bench::LoadSuite(args);
  const auto k = static_cast<std::uint32_t>(args.GetInt("k", 8));
  const HeuristicConfig config = bench::SuiteHeuristicConfig();

  TablePrinter table(
      "Table IV: heuristic probes and decisions (k=" + std::to_string(k) +
          ", size gate |V| > " + std::to_string(config.min_nodes) + ")",
      {"graph", "a", "|V|", "a/|V|", "common frac", "heur time (s)",
       "decision", "measured best", "agrees"});

  int correct = 0, total = 0;
  for (const Dataset& d : suite) {
    const HeuristicDecision decision = SelectOrdering(d.graph, config);

    Timer ta;
    const Ordering approx = ApproxCoreOrdering(d.graph, config.epsilon);
    const double approx_total =
        SimTotal64(d.graph, approx, ta.Seconds(), true, k);
    Timer td;
    const Ordering degree = DegreeOrdering(d.graph);
    const double degree_total =
        SimTotal64(d.graph, degree, td.Seconds(), true, k);

    // A graph where the two orderings produce (near-)identical DAG quality
    // has no real tradeoff to decide; within 15% the measurement is noise
    // and either choice is correct.
    const bool tie =
        std::abs(approx_total - degree_total) <
        0.15 * std::max(approx_total, degree_total);
    const bool best_is_core = approx_total < degree_total;
    const bool agrees = tie || best_is_core == decision.use_core_approx;
    ++total;
    if (agrees) ++correct;

    table.AddRow(
        {d.name, TablePrinter::Cell(std::uint64_t{decision.a}),
         TablePrinter::Cell(std::uint64_t{d.graph.NumNodes()}),
         TablePrinter::Cell(decision.a_ratio, 4),
         TablePrinter::Cell(decision.common_fraction, 2),
         TablePrinter::Cell(decision.seconds, 4),
         decision.use_core_approx ? "core-approx" : "degree",
         tie ? "tie" : (best_is_core ? "core-approx" : "degree"),
         agrees ? "yes" : "NO"});
  }
  table.Print();
  std::cout << "heuristic agreement: " << correct << "/" << total << "\n";
  return 0;
}
