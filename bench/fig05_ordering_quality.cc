// Figure 5: ordering quality — maximum out-degree of each ordering's DAG,
// normalized to the core ordering. A value of 1.00 means the ordering
// matches the optimal (degeneracy) bound; the paper's finding is that the
// core approximation with eps = -0.5 sits at ~1.00 while eps = 50000
// degenerates to the degree ordering's quality.
#include <iostream>

#include "bench_common.h"
#include "graph/dag.h"
#include "util/table.h"

using namespace pivotscale;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const auto suite = bench::LoadSuite(args);
  const auto sweep = bench::OrderingSweep();

  std::vector<std::string> header = {"graph"};
  for (const auto& named : sweep) header.push_back(named.label);
  TablePrinter table(
      "Figure 5: normalized max out-degree (core = 1.00, lower is better)",
      header);

  for (const Dataset& d : suite) {
    std::vector<std::string> row = {d.name};
    EdgeId core_quality = 0;
    for (const auto& named : sweep) {
      const Ordering ordering = ComputeOrdering(d.graph, named.spec);
      const EdgeId quality =
          MaxOutDegree(Directionalize(d.graph, ordering.ranks));
      if (named.label == "core") core_quality = quality;
      row.push_back(TablePrinter::Cell(
          core_quality > 0 ? static_cast<double>(quality) /
                                 static_cast<double>(core_quality)
                           : 0.0,
          2));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  return 0;
}
