// Query-service tests: a batch of mixed-k queries against a preloaded
// .psx artifact must skip the heuristic/ordering/directionalize phases
// entirely (no such telemetry spans), answer every same-graph k-query from
// one kAllUpToK counting run, and return counts bit-identical to
// standalone CountKCliques runs — plus LRU eviction, cross-batch
// memoization, concurrent batches, and the NDJSON protocol.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "graph/builder.h"
#include "graph/generators.h"
#include "pivot/pivotscale.h"
#include "service/protocol.h"
#include "service/query_engine.h"
#include "store/artifact.h"
#include "util/json_writer.h"
#include "util/telemetry.h"

namespace pivotscale {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(::testing::TempDir() + "/" + name) {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

Graph CliqueRichGraph(std::uint64_t seed) {
  EdgeList edges = Rmat(9, 6.0, seed);
  PlantCliques(&edges, 512, 6, 5, 9, seed + 1);
  return BuildGraph(std::move(edges));
}

// Ground truth from the standalone pipeline, bit-identical by contract.
BigCount Standalone(const Graph& g, std::uint32_t k) {
  return CountKCliquesSimple(g, k);
}

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = CliqueRichGraph(11);
    artifact_file_ = std::make_unique<TempFile>("service_a.psx");
    WriteArtifact(artifact_file_->path(), BuildArtifact(graph_));
  }

  Graph graph_;
  std::unique_ptr<TempFile> artifact_file_;
};

// ------------------------------------------------- the acceptance batch

TEST_F(ServiceTest, MixedKBatchOneCountRunNoPipelinePhases) {
  TelemetryRegistry telemetry;
  QueryEngineOptions options;
  options.telemetry = &telemetry;
  QueryEngine engine(options);
  engine.Preload(artifact_file_->path());

  // 16 mixed-k queries, all against the preloaded artifact.
  std::vector<ServiceQuery> batch;
  const std::uint32_t ks[16] = {3, 8, 5, 4, 6, 3, 7, 5,
                                9, 4, 8, 6, 3, 7, 9, 5};
  for (std::uint32_t k : ks)
    batch.push_back({artifact_file_->path(), k});

  const std::vector<ServiceResult> results = engine.RunBatch(batch);
  ASSERT_EQ(results.size(), 16u);

  std::map<std::uint32_t, BigCount> expected;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ASSERT_TRUE(results[i].ok) << results[i].error;
    EXPECT_TRUE(results[i].artifact_cache_hit);
    const std::uint32_t k = ks[i];
    if (expected.count(k) == 0) expected[k] = Standalone(graph_, k);
    EXPECT_EQ(results[i].total, expected[k]) << "k=" << k;
  }

  // The preprocessed phases never ran: serving goes straight to counting.
  EXPECT_FALSE(telemetry.HasSpan("heuristic"));
  EXPECT_FALSE(telemetry.HasSpan("ordering"));
  EXPECT_FALSE(telemetry.HasSpan("directionalize"));
  EXPECT_TRUE(telemetry.HasSpan("service.count"));

  // One kAllUpToK run answered all 16 k-queries.
  EXPECT_EQ(telemetry.Counter("service.count_runs"), 1u);
  EXPECT_EQ(telemetry.Counter("service.queries"), 16u);
  EXPECT_EQ(telemetry.Counter("service.errors"), 0u);
}

TEST_F(ServiceTest, SecondBatchIsAllMemoHits) {
  TelemetryRegistry telemetry;
  QueryEngineOptions options;
  options.telemetry = &telemetry;
  QueryEngine engine(options);

  std::vector<ServiceQuery> batch;
  for (std::uint32_t k : {4u, 6u, 8u})
    batch.push_back({artifact_file_->path(), k});
  const auto first = engine.RunBatch(batch);
  for (const auto& r : first) EXPECT_FALSE(r.memo_hit);
  const auto second = engine.RunBatch(batch);
  for (std::size_t i = 0; i < second.size(); ++i) {
    EXPECT_TRUE(second[i].memo_hit);
    EXPECT_EQ(second[i].total, first[i].total);
  }
  EXPECT_EQ(telemetry.Counter("service.count_runs"), 1u);
  EXPECT_EQ(telemetry.Counter("service.memo_hits"), 3u);

  // A larger k than covered forces exactly one more run.
  ServiceQuery bigger{artifact_file_->path(), 10};
  const auto third = engine.RunQuery(bigger);
  EXPECT_TRUE(third.ok);
  EXPECT_FALSE(third.memo_hit);
  EXPECT_EQ(third.total, Standalone(graph_, 10));
  EXPECT_EQ(telemetry.Counter("service.count_runs"), 2u);
}

TEST_F(ServiceTest, AllKAndPerVertexQueries) {
  QueryEngine engine;

  ServiceQuery all_k{artifact_file_->path(), 5};
  all_k.all_k = true;
  const ServiceResult r = engine.RunQuery(all_k);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.total, Standalone(graph_, 5));

  PivotScaleOptions pipeline;
  pipeline.all_k = true;
  const PivotScaleResult direct = CountKCliques(graph_, pipeline);
  ASSERT_GE(r.per_size.size(), 4u);
  for (std::size_t s = 1; s < r.per_size.size(); ++s)
    EXPECT_EQ(r.per_size[s], direct.count.per_size[s]) << "size " << s;
  // Sizes beyond the response are zero in the direct run too.
  for (std::size_t s = r.per_size.size();
       s < direct.count.per_size.size(); ++s)
    EXPECT_EQ(direct.count.per_size[s], BigCount{}) << "size " << s;

  // Per-vertex: top list must match a standalone per-vertex run.
  ServiceQuery pv{artifact_file_->path(), 5};
  pv.per_vertex = true;
  pv.top = 5;
  const ServiceResult pr = engine.RunQuery(pv);
  ASSERT_TRUE(pr.ok) << pr.error;
  EXPECT_EQ(pr.total, Standalone(graph_, 5));
  ASSERT_EQ(pr.top_vertices.size(), 5u);

  PivotScaleOptions pv_pipeline;
  pv_pipeline.k = 5;
  pv_pipeline.count.per_vertex = true;
  const auto& direct_pv = CountKCliques(graph_, pv_pipeline).count.per_vertex;
  for (std::size_t t = 0; t < pr.top_vertices.size(); ++t) {
    EXPECT_EQ(pr.top_vertices[t].count,
              direct_pv[pr.top_vertices[t].vertex]);
    if (t > 0) {
      EXPECT_GE(pr.top_vertices[t - 1].count, pr.top_vertices[t].count);
    }
  }
}

TEST_F(ServiceTest, ConcurrentMixedKBatchesStayCorrect) {
  // A second artifact so batches contend on the cache map too.
  const Graph graph_b = CliqueRichGraph(23);
  TempFile file_b("service_b.psx");
  WriteArtifact(file_b.path(), BuildArtifact(graph_b));

  std::map<std::uint32_t, BigCount> expected_a, expected_b;
  for (std::uint32_t k = 3; k <= 8; ++k) {
    expected_a[k] = Standalone(graph_, k);
    expected_b[k] = Standalone(graph_b, k);
  }

  QueryEngine engine;
  std::vector<std::thread> threads;
  std::vector<std::string> failures(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      std::vector<ServiceQuery> batch;
      for (std::uint32_t k = 3; k <= 8; ++k) {
        batch.push_back({artifact_file_->path(), k});
        batch.push_back({file_b.path(), k});
      }
      const auto results = engine.RunBatch(batch);
      for (std::size_t i = 0; i < results.size(); ++i) {
        const std::uint32_t k = batch[i].k;
        const bool is_a = batch[i].graph == artifact_file_->path();
        const BigCount want = is_a ? expected_a[k] : expected_b[k];
        if (!results[i].ok || results[i].total != want) {
          failures[t] =
              "thread " + std::to_string(t) + " graph " +
              (is_a ? "a" : "b") + " k=" + std::to_string(k) +
              (results[i].ok ? std::string(" wrong count")
                             : " failed: " + results[i].error);
          return;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (const std::string& failure : failures) EXPECT_EQ(failure, "");
}

TEST_F(ServiceTest, LruEvictionRespectsByteBudget) {
  const Graph graph_b = CliqueRichGraph(31);
  TempFile file_b("service_evict.psx");
  WriteArtifact(file_b.path(), BuildArtifact(graph_b));

  TelemetryRegistry telemetry;
  QueryEngineOptions options;
  // Budget fits one artifact but not two.
  options.cache_byte_budget = BuildArtifact(graph_).HeapBytes() * 3 / 2;
  options.telemetry = &telemetry;
  QueryEngine engine(options);

  EXPECT_EQ(engine.RunQuery({artifact_file_->path(), 4}).total,
            Standalone(graph_, 4));
  EXPECT_EQ(engine.CachedArtifacts(), 1u);
  EXPECT_EQ(engine.RunQuery({file_b.path(), 4}).total,
            Standalone(graph_b, 4));
  EXPECT_EQ(engine.CachedArtifacts(), 1u);  // the first was evicted
  EXPECT_GE(telemetry.Counter("service.evictions"), 1u);
  EXPECT_LE(engine.CachedBytes(), options.cache_byte_budget);

  // The evicted artifact still serves (reload path) — and correctly.
  const ServiceResult again = engine.RunQuery({artifact_file_->path(), 5});
  ASSERT_TRUE(again.ok);
  EXPECT_FALSE(again.artifact_cache_hit);
  EXPECT_EQ(again.total, Standalone(graph_, 5));
}

TEST_F(ServiceTest, PerQueryErrorsDoNotPoisonTheBatch) {
  QueryEngine engine;
  std::vector<ServiceQuery> batch;
  batch.push_back({artifact_file_->path(), 4});
  batch.push_back({::testing::TempDir() + "/missing.psx", 4});
  ServiceQuery bad_k{artifact_file_->path(), 0};
  batch.push_back(bad_k);
  const auto results = engine.RunBatch(batch);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok);
  EXPECT_EQ(results[0].total, Standalone(graph_, 4));
  EXPECT_FALSE(results[1].ok);
  EXPECT_NE(results[1].error.find("cannot open"), std::string::npos);
  EXPECT_FALSE(results[2].ok);
  EXPECT_NE(results[2].error.find("k must be >= 1"), std::string::npos);
}

// --------------------------------------------------------------- protocol

TEST(Protocol, ParsesFullRequest) {
  const ProtocolRequest req = ParseRequest(
      "{\"id\": 7, \"graph\": \"g.psx\", \"k\": 6, \"per_vertex\": true, "
      "\"top\": 3, \"structure\": \"sparse\"}");
  EXPECT_EQ(req.id, 7);
  EXPECT_EQ(req.query.graph, "g.psx");
  EXPECT_EQ(req.query.k, 6u);
  EXPECT_TRUE(req.query.per_vertex);
  EXPECT_EQ(req.query.top, 3u);
  EXPECT_EQ(req.query.structure, SubgraphKind::kSparse);
  EXPECT_FALSE(req.query.all_k);
}

TEST(Protocol, RejectsUnknownKeysAndBadValues) {
  EXPECT_THROW(ParseRequest("{\"graph\": \"g.psx\", \"per_vertx\": true}"),
               std::runtime_error);
  EXPECT_THROW(ParseRequest("{\"k\": 5}"), std::runtime_error);
  EXPECT_THROW(ParseRequest("{\"graph\": \"g.psx\", \"k\": 0}"),
               std::runtime_error);
  EXPECT_THROW(ParseRequest("{\"graph\": \"g.psx\", \"k\": 2.5}"),
               std::runtime_error);
  EXPECT_THROW(ParseRequest("{\"graph\": \"g.psx\", \"structure\": "
                            "\"compressed\"}"),
               std::runtime_error);
  EXPECT_THROW(ParseRequest("not json"), std::runtime_error);
}

TEST(Protocol, ResponseRoundTripsThroughTheJsonParser) {
  ServiceResult result;
  result.ok = true;
  result.k = 8;
  result.total = BigCount{12345};
  result.artifact_cache_hit = true;
  result.memo_hit = false;
  result.seconds = 0.25;
  result.top_vertices.push_back({17, BigCount{99}});
  const std::string line = SerializeResponse(3, result);
  const JsonValue doc = ParseJson(line);
  ASSERT_TRUE(doc.IsObject());
  EXPECT_EQ(doc.Find("id")->number, 3);
  EXPECT_TRUE(doc.Find("ok")->bool_value);
  EXPECT_EQ(doc.Find("count")->string_value, "12345");
  EXPECT_TRUE(doc.Find("cache_hit")->bool_value);
  const JsonValue* top = doc.Find("top_vertices");
  ASSERT_NE(top, nullptr);
  ASSERT_EQ(top->array.size(), 1u);
  EXPECT_EQ(top->array[0].Find("vertex")->number, 17);
  EXPECT_EQ(top->array[0].Find("count")->string_value, "99");

  ServiceResult failed;
  failed.error = "artifact missing";
  const JsonValue err = ParseJson(SerializeResponse(-1, failed));
  EXPECT_FALSE(err.Find("ok")->bool_value);
  EXPECT_EQ(err.Find("error")->string_value, "artifact missing");
}

}  // namespace
}  // namespace pivotscale
