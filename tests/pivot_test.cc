// Correctness tests for the pivot counting core: every subgraph structure
// and counting mode is cross-validated against brute force on reference
// graphs and randomized property sweeps.
#include <gtest/gtest.h>

#include <tuple>

#include "graph/builder.h"
#include "graph/dag.h"
#include "graph/generators.h"
#include "order/core_order.h"
#include "pivot/count.h"
#include "pivot/pivotscale.h"
#include "test_helpers.h"
#include "util/binomial.h"

namespace pivotscale {
namespace {

using testing_helpers::BruteForceCount;
using testing_helpers::BruteForcePerVertex;
using testing_helpers::MakeDag;

BigCount Count(const Graph& g, std::uint32_t k, SubgraphKind structure,
               OrderingKind order = OrderingKind::kCore) {
  const Graph dag = MakeDag(g, order);
  CountOptions options;
  options.k = k;
  options.structure = structure;
  return CountCliques(dag, options).total;
}

// ---------------------------------------------------------------- closed forms

TEST(Pivoter, CompleteGraphAllStructures) {
  const Graph g = BuildGraph(CompleteGraph(10));
  for (auto structure : {SubgraphKind::kDense, SubgraphKind::kSparse,
                         SubgraphKind::kRemap}) {
    for (std::uint32_t k = 1; k <= 10; ++k) {
      EXPECT_EQ(Count(g, k, structure).value(), BinomialChoose(10, k))
          << SubgraphKindName(structure) << " k=" << k;
    }
  }
}

TEST(Pivoter, PathAndCycleHaveNoTriangles) {
  const Graph path = BuildGraph(PathGraph(20));
  const Graph cycle = BuildGraph(CycleGraph(20));
  EXPECT_EQ(Count(path, 3, SubgraphKind::kRemap).value(),
            static_cast<uint128>(0));
  EXPECT_EQ(Count(cycle, 3, SubgraphKind::kRemap).value(),
            static_cast<uint128>(0));
  EXPECT_EQ(Count(path, 2, SubgraphKind::kRemap).value(),
            static_cast<uint128>(19));
}

TEST(Pivoter, StarGraphEdgesOnly) {
  const Graph g = BuildGraph(StarGraph(12));
  EXPECT_EQ(Count(g, 2, SubgraphKind::kRemap).value(),
            static_cast<uint128>(11));
  EXPECT_EQ(Count(g, 3, SubgraphKind::kRemap).value(),
            static_cast<uint128>(0));
}

TEST(Pivoter, TuranClosedForm) {
  // T(12, 4) with balanced parts of 3: k-cliques pick k parts, one vertex
  // each: C(4, k) * 3^k.
  const Graph g = BuildGraph(TuranGraph(12, 4));
  for (std::uint32_t k = 1; k <= 5; ++k) {
    uint128 expected = BinomialChoose(4, k);
    for (std::uint32_t i = 0; i < k; ++i) expected *= 3;
    EXPECT_EQ(Count(g, k, SubgraphKind::kRemap).value(), expected) << k;
  }
}

TEST(Pivoter, CompleteBipartiteNoTriangles) {
  const Graph g = BuildGraph(CompleteBipartite(5, 7));
  EXPECT_EQ(Count(g, 2, SubgraphKind::kRemap).value(),
            static_cast<uint128>(35));
  EXPECT_EQ(Count(g, 3, SubgraphKind::kRemap).value(),
            static_cast<uint128>(0));
}

TEST(Pivoter, KEqualsOneCountsVertices) {
  const Graph g = BuildGraph(Rmat(7, 4.0, 3));
  EXPECT_EQ(Count(g, 1, SubgraphKind::kRemap).value(),
            static_cast<uint128>(g.NumNodes()));
}

TEST(Pivoter, KEqualsTwoCountsEdges) {
  const Graph g = BuildGraph(Rmat(7, 4.0, 5));
  EXPECT_EQ(Count(g, 2, SubgraphKind::kRemap).value(),
            static_cast<uint128>(g.NumUndirectedEdges()));
}

TEST(Pivoter, EmptyAndTinyGraphs) {
  const Graph empty = BuildGraph({});
  const Graph lone = BuildUndirected({}, 1);
  CountOptions options;
  options.k = 3;
  EXPECT_EQ(CountCliques(Directionalize(empty, std::vector<NodeId>{}),
                         options)
                .total.value(),
            static_cast<uint128>(0));
  EXPECT_EQ(
      CountCliques(Directionalize(lone, std::vector<NodeId>{0}), options)
          .total.value(),
      static_cast<uint128>(0));
}

// ---------------------------------------------------------------- property sweep

// (n, edge probability, seed, k)
using SweepParam = std::tuple<int, double, int, int>;

class PivoterSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(PivoterSweep, MatchesBruteForceOnAllStructuresAndOrderings) {
  const auto [n, p, seed, k] = GetParam();
  const Graph g = BuildGraph(
      ErdosRenyi(static_cast<NodeId>(n), p, static_cast<std::uint64_t>(seed)));
  if (g.NumNodes() == 0) GTEST_SKIP() << "degenerate empty instance";
  const std::uint64_t expected =
      BruteForceCount(g, static_cast<std::uint32_t>(k));

  for (auto order : {OrderingKind::kDegree, OrderingKind::kCore,
                     OrderingKind::kKCore}) {
    for (auto structure : {SubgraphKind::kDense, SubgraphKind::kSparse,
                           SubgraphKind::kRemap}) {
      EXPECT_EQ(
          Count(g, static_cast<std::uint32_t>(k), structure, order).value(),
          static_cast<uint128>(expected))
          << "structure=" << SubgraphKindName(structure)
          << " n=" << n << " p=" << p << " seed=" << seed << " k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, PivoterSweep,
    ::testing::Combine(::testing::Values(8, 14, 22, 30),
                       ::testing::Values(0.2, 0.45, 0.7),
                       ::testing::Values(1, 2, 3),
                       ::testing::Values(2, 3, 4, 5, 6)));

// ---------------------------------------------------------------- all-k mode

TEST(PivoterAllK, PerSizeMatchesSingleKCounts) {
  const Graph g = BuildGraph(ErdosRenyi(40, 0.4, 99));
  const Graph dag = MakeDag(g, OrderingKind::kCore);
  CountOptions all;
  all.mode = CountMode::kAllK;
  all.k = 3;
  const CountResult all_result = CountCliques(dag, all);
  for (std::uint32_t k = 1; k <= 8; ++k) {
    CountOptions single;
    single.k = k;
    EXPECT_EQ(all_result.per_size[k], CountCliques(dag, single).total) << k;
  }
}

TEST(PivoterAllK, CompleteGraphPerSize) {
  const Graph g = BuildGraph(CompleteGraph(12));
  const Graph dag = MakeDag(g, OrderingKind::kCore);
  CountOptions options;
  options.mode = CountMode::kAllK;
  const CountResult result = CountCliques(dag, options);
  for (std::uint32_t s = 1; s <= 12; ++s)
    EXPECT_EQ(result.per_size[s], BigCount(BinomialChoose(12, s))) << s;
  // No cliques beyond n.
  for (std::size_t s = 13; s < result.per_size.size(); ++s)
    EXPECT_EQ(result.per_size[s], BigCount{}) << s;
}

TEST(PivoterAllK, LargestNonzeroSizeIsMaxClique) {
  // One planted 9-clique in noise: k_max must be exactly 9.
  EdgeList edges = GnM(60, 40, 7);
  PlantCliques(&edges, 60, 1, 9, 9, 8);
  const Graph g = BuildGraph(std::move(edges));
  const Graph dag = MakeDag(g, OrderingKind::kCore);
  CountOptions options;
  options.mode = CountMode::kAllK;
  const CountResult result = CountCliques(dag, options);
  std::size_t kmax = 0;
  for (std::size_t s = 1; s < result.per_size.size(); ++s)
    if (result.per_size[s] != BigCount{}) kmax = s;
  EXPECT_EQ(kmax, 9u);
}

TEST(PivoterAllK, TotalIsPerSizeAtK) {
  const Graph g = BuildGraph(ErdosRenyi(30, 0.5, 17));
  const Graph dag = MakeDag(g, OrderingKind::kDegree);
  CountOptions options;
  options.mode = CountMode::kAllK;
  options.k = 4;
  const CountResult result = CountCliques(dag, options);
  EXPECT_EQ(result.total, result.per_size[4]);
}

// ---------------------------------------------------------------- per-vertex

TEST(PivoterPerVertex, SumsToKTimesTotal) {
  const Graph g = BuildGraph(ErdosRenyi(35, 0.4, 21));
  const Graph dag = MakeDag(g, OrderingKind::kCore);
  CountOptions options;
  options.k = 4;
  options.per_vertex = true;
  const CountResult result = CountCliques(dag, options);
  BigCount sum{};
  for (const BigCount& c : result.per_vertex) sum += c;
  EXPECT_EQ(sum, result.total * BigCount(4));
}

TEST(PivoterPerVertex, MatchesBruteForce) {
  const Graph g = BuildGraph(ErdosRenyi(25, 0.5, 29));
  const auto expected = BruteForcePerVertex(g, 4);
  for (auto structure : {SubgraphKind::kDense, SubgraphKind::kSparse,
                         SubgraphKind::kRemap}) {
    const Graph dag = MakeDag(g, OrderingKind::kCore);
    CountOptions options;
    options.k = 4;
    options.per_vertex = true;
    options.structure = structure;
    const CountResult result = CountCliques(dag, options);
    ASSERT_EQ(result.per_vertex.size(), expected.size());
    for (NodeId v = 0; v < g.NumNodes(); ++v)
      EXPECT_EQ(result.per_vertex[v].value(),
                static_cast<uint128>(expected[v]))
          << "structure=" << SubgraphKindName(structure) << " v=" << v;
  }
}

TEST(PivoterPerVertex, CompleteGraphUniform) {
  const Graph g = BuildGraph(CompleteGraph(8));
  const Graph dag = MakeDag(g, OrderingKind::kDegree);
  CountOptions options;
  options.k = 3;
  options.per_vertex = true;
  const CountResult result = CountCliques(dag, options);
  // Each vertex of K_8 is in C(7, 2) = 21 triangles.
  for (NodeId v = 0; v < 8; ++v)
    EXPECT_EQ(result.per_vertex[v].value(), static_cast<uint128>(21));
}

// ---------------------------------------------------------------- big counts

TEST(Pivoter, PlantedCliqueCountsExplode) {
  // A 40-clique alone: C(40, 20) ~ 1.4e11 20-cliques, exact.
  const Graph g = BuildGraph(CompleteGraph(40));
  EXPECT_EQ(Count(g, 20, SubgraphKind::kRemap).value(),
            BinomialChoose(40, 20));
}

TEST(Pivoter, SaturationOnAstronomicalCounts) {
  // K_140 has C(140, 70) ~ 9e40 70-cliques > 2^128-1: must saturate, not
  // wrap.
  const Graph g = BuildGraph(CompleteGraph(140));
  const BigCount count = Count(g, 70, SubgraphKind::kRemap);
  EXPECT_TRUE(count.saturated());
}

// ---------------------------------------------------------------- option validation

TEST(CountOptionsValidation, RejectsUndirectedInput) {
  const Graph g = BuildGraph(CompleteGraph(4));
  CountOptions options;
  EXPECT_THROW(CountCliques(g, options), std::invalid_argument);
}

TEST(CountOptionsValidation, RejectsPerVertexAllK) {
  const Graph g = BuildGraph(CompleteGraph(4));
  const Graph dag = MakeDag(g, OrderingKind::kDegree);
  CountOptions options;
  options.per_vertex = true;
  options.mode = CountMode::kAllK;
  EXPECT_THROW(CountCliques(dag, options), std::invalid_argument);
}

TEST(CountOptionsValidation, RejectsZeroK) {
  const Graph g = BuildGraph(CompleteGraph(4));
  const Graph dag = MakeDag(g, OrderingKind::kDegree);
  CountOptions options;
  options.k = 0;
  EXPECT_THROW(CountCliques(dag, options), std::invalid_argument);
}

// ---------------------------------------------------------------- instrumentation

TEST(PivoterStats, OpStatsPopulated) {
  const Graph g = BuildGraph(ErdosRenyi(60, 0.3, 33));
  const Graph dag = MakeDag(g, OrderingKind::kCore);
  CountOptions options;
  options.k = 4;
  options.collect_op_stats = true;
  const CountResult result = CountCliques(dag, options);
  EXPECT_GT(result.ops.calls, 0u);
  EXPECT_GT(result.ops.edge_ops, 0u);
  EXPECT_GT(result.ops.induces, 0u);
  // Counts must be identical with and without instrumentation.
  CountOptions plain;
  plain.k = 4;
  EXPECT_EQ(result.total, CountCliques(dag, plain).total);
}

TEST(PivoterStats, WorkTraceCoversAllRootsAndMatchesTotals) {
  const Graph g = BuildGraph(ErdosRenyi(50, 0.3, 37));
  const Graph dag = MakeDag(g, OrderingKind::kCore);
  CountOptions options;
  options.k = 4;
  options.collect_work_trace = true;
  const CountResult result = CountCliques(dag, options);
  ASSERT_EQ(result.work_trace.roots.size(), dag.NumNodes());
  EXPECT_EQ(result.work_trace.TotalEdgeOps(), result.ops.edge_ops);
  // Every root appears exactly once.
  std::vector<bool> seen(dag.NumNodes(), false);
  for (const RootWork& w : result.work_trace.roots) {
    EXPECT_FALSE(seen[w.root]);
    seen[w.root] = true;
  }
}

TEST(PivoterStats, DegreeOrderingDoesMoreWorkThanCore) {
  // The Table II relationship: counting under a degree ordering never does
  // less algorithmic work than under the core ordering (on a graph where
  // the orderings actually differ).
  EdgeList edges = Rmat(9, 8.0, 41);
  PlantCliques(&edges, 256, 5, 6, 12, 42);
  const Graph g = BuildGraph(std::move(edges));
  CountOptions options;
  options.k = 6;
  options.collect_op_stats = true;
  const CountResult core =
      CountCliques(MakeDag(g, OrderingKind::kCore), options);
  const CountResult degree =
      CountCliques(MakeDag(g, OrderingKind::kDegree), options);
  EXPECT_EQ(core.total, degree.total);
  EXPECT_GE(degree.ops.edge_ops * 105 / 100, core.ops.edge_ops);
}

TEST(PivoterStats, WorkspaceDenseLargerThanRemap) {
  const Graph g = BuildGraph(Rmat(12, 6.0, 43));
  const Graph dag = MakeDag(g, OrderingKind::kCore);
  CountOptions dense, remap;
  dense.structure = SubgraphKind::kDense;
  remap.structure = SubgraphKind::kRemap;
  const auto dense_bytes = CountCliques(dag, dense).workspace_bytes;
  const auto remap_bytes = CountCliques(dag, remap).workspace_bytes;
  EXPECT_GT(dense_bytes, 4 * remap_bytes);
}

// ---------------------------------------------------------------- pipeline

TEST(Pipeline, MatchesDirectCount) {
  const Graph g = BuildGraph(ErdosRenyi(80, 0.2, 51));
  PivotScaleOptions options;
  options.k = 4;
  options.heuristic.min_nodes = 10;
  const PivotScaleResult result = CountKCliques(g, options);
  EXPECT_EQ(result.total,
            Count(g, 4, SubgraphKind::kRemap, OrderingKind::kCore));
  EXPECT_GT(result.total_seconds, 0.0);
  EXPECT_FALSE(result.ordering_name.empty());
}

TEST(Pipeline, ForcedOrderingsAllAgree) {
  EdgeList edges = GnM(120, 600, 53);
  PlantCliques(&edges, 120, 3, 5, 9, 54);
  const Graph g = BuildGraph(std::move(edges));
  BigCount reference{};
  bool first = true;
  for (auto kind :
       {OrderingKind::kDegree, OrderingKind::kCore, OrderingKind::kApproxCore,
        OrderingKind::kKCore, OrderingKind::kCentrality}) {
    PivotScaleOptions options;
    options.k = 5;
    options.forced_ordering = OrderingSpec{kind, -0.5, 3};
    const PivotScaleResult result = CountKCliques(g, options);
    if (first) {
      reference = result.total;
      first = false;
    } else {
      EXPECT_EQ(result.total, reference) << OrderingSpecName({kind});
    }
  }
}

TEST(Pipeline, AllKMode) {
  const Graph g = BuildGraph(CompleteGraph(9));
  PivotScaleOptions options;
  options.k = 4;
  options.all_k = true;
  const PivotScaleResult result = CountKCliques(g, options);
  EXPECT_EQ(result.total.value(), BinomialChoose(9, 4));
  EXPECT_EQ(result.count.per_size[2].value(), BinomialChoose(9, 2));
}

TEST(Pipeline, RejectsDagInput) {
  const Graph g = BuildGraph(CompleteGraph(4));
  const Graph dag = MakeDag(g, OrderingKind::kDegree);
  EXPECT_THROW(CountKCliques(dag, {}), std::invalid_argument);
}

TEST(Pipeline, SimpleWrapper) {
  const Graph g = BuildGraph(CompleteGraph(7));
  EXPECT_EQ(CountKCliquesSimple(g, 3).value(), BinomialChoose(7, 3));
}

}  // namespace
}  // namespace pivotscale
