// util/check.h tests: CHECK aborts with a file:line diagnostic and the
// operand echo, DCHECK is compiled out under NDEBUG (the default Release
// configuration), and the real invariants the layer guards — corrupt CSR
// offsets and out-of-range DAG neighbors — die fast instead of corrupting
// counts downstream.
#include "util/check.h"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <vector>

#include "graph/dag.h"
#include "graph/graph.h"

namespace pivotscale {
namespace {

TEST(CheckTest, PassingChecksAreSilent) {
  CHECK(true);
  CHECK(1 + 1 == 2) << "never printed";
  CHECK_EQ(4, 4);
  CHECK_NE(4, 5);
  CHECK_LT(4, 5);
  CHECK_LE(5, 5);
  CHECK_GT(5, 4);
  CHECK_GE(5, 5);
}

TEST(CheckTest, MixedSignComparisonsAreValueCorrect) {
  // Plain `-1 < 1u` is false under integer promotion; the CHECK layer must
  // compare values, not bit patterns (std::cmp_*).
  CHECK_LT(-1, 1u);
  CHECK_GT(1u, -1);
  CHECK_GE(std::uint64_t{0}, -5);
  CHECK_NE(std::uint32_t{0xFFFFFFFFu}, -1);
}

TEST(CheckDeathTest, FailureReportsFileLineAndMessage) {
  // The diagnostic must carry file:line (clickable, greppable) plus the
  // failed condition and any streamed context.
  EXPECT_DEATH(CHECK(2 + 2 == 5) << "math context " << 42,
               "check_test\\.cc:[0-9]+: CHECK failed: "
               "2 \\+ 2 == 5 math context 42");
}

TEST(CheckDeathTest, ComparisonEchoesBothOperands) {
  const int lhs = 4;
  const int rhs = 5;
  EXPECT_DEATH(CHECK_EQ(lhs, rhs), "CHECK failed: lhs == rhs \\(4 vs\\. 5\\)");
  EXPECT_DEATH(CHECK_GE(lhs, rhs), "CHECK failed: lhs >= rhs \\(4 vs\\. 5\\)");
}

TEST(CheckDeathTest, FailureAbortsWithSigabrt) {
  // Exit-code contract: CHECK terminates via abort(), so supervisors and
  // CI see an abnormal SIGABRT death, never a zero exit with bad counts.
  EXPECT_EXIT(CHECK(false), ::testing::KilledBySignal(SIGABRT),
              "CHECK failed: false");
}

TEST(CheckDeathTest, OperandsEvaluateExactlyOnce) {
  int evaluations = 0;
  const auto bump = [&evaluations] { return ++evaluations; };
  CHECK_GE(bump(), 1);
  EXPECT_EQ(evaluations, 1);
}

#if PIVOTSCALE_DCHECK_ENABLED

TEST(DcheckDeathTest, EnabledDchecksAreFatal) {
  EXPECT_DEATH(DCHECK(false), "CHECK failed: false");
  EXPECT_DEATH(DCHECK_LT(5, 4), "CHECK failed: 5 < 4");
}

#else  // NDEBUG without PIVOTSCALE_DCHECK_ALWAYS_ON

TEST(DcheckTest, CompiledOutDchecksNeverEvaluateOperands) {
  // Release hot loops pay nothing: the operand expression must not run.
  int evaluations = 0;
  const auto bump = [&evaluations] { return ++evaluations; };
  DCHECK(bump() > 0);
  DCHECK_EQ(bump(), 1);
  DCHECK_LT(bump(), 0);  // would fail if evaluated
  EXPECT_EQ(evaluations, 0);
}

TEST(DcheckTest, CompiledOutDchecksSwallowStreamedMessages) {
  int evaluations = 0;
  const auto bump = [&evaluations] { return ++evaluations; };
  DCHECK(false) << "never formatted " << bump();
  EXPECT_EQ(evaluations, 0);
}

#endif  // PIVOTSCALE_DCHECK_ENABLED

// ------------------------------------------------- guarded real invariants

// Death tests that re-enter OpenMP regions must re-exec instead of fork:
// a forked child of a process that already spawned a team can wedge inside
// libgomp before reaching the expected abort.
class SeededCorruptionDeathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
};

TEST_F(SeededCorruptionDeathTest, CorruptOffsetsDieFastInGraphCtor) {
  // Decreasing offsets — the "corrupt .psx offset" shape — seeded directly
  // past the file readers' validation, as if an in-memory producer broke
  // the CSR contract. The Graph constructor must refuse to hand this to
  // the counting kernels.
  std::vector<EdgeId> offsets = {0, 2, 1};
  std::vector<NodeId> neighbors = {1};
  EXPECT_DEATH(Graph(std::move(offsets), std::move(neighbors),
                     /*undirected=*/true),
               "graph\\.cc:[0-9]+: CHECK failed:.*corrupt CSR offsets");
}

TEST_F(SeededCorruptionDeathTest, OutOfRangeDagNeighborDiesInDirectionalize) {
  // Vertex 1's adjacency claims neighbor 7 in a 3-vertex graph. Without
  // the CHECK, Directionalize would index ranks[7] out of bounds and
  // silently mis-direct edges — corrupted counts, no diagnostic.
  std::vector<EdgeId> offsets = {0, 1, 2, 2};
  std::vector<NodeId> neighbors = {1, 7};
  const Graph g(std::move(offsets), std::move(neighbors),
                /*undirected=*/true);
  const std::vector<NodeId> ranks = {0, 1, 2};
  EXPECT_DEATH(Directionalize(g, ranks),
               "dag\\.cc:[0-9]+: CHECK failed:.*outside the graph");
}

}  // namespace
}  // namespace pivotscale
