// Unit tests for the utility substrate: RNG, 128-bit saturating counters,
// binomial tables, byte maps, sparse sets, prefix sums, CLI parsing, stats.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/binomial.h"
#include "util/bytemap.h"
#include "util/cli.h"
#include "util/prefix_sum.h"
#include "util/rng.h"
#include "util/sparse_set.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/uint128.h"

namespace pivotscale {
namespace {

// ---------------------------------------------------------------- rng

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.Next() == b.Next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.Below(bound), bound);
  }
}

TEST(Rng, BelowCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.Below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, BetweenInclusive) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const std::int64_t v = rng.Between(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(19);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(23);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i)
    if (rng.Chance(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(SplitMix64, MixIsStateless) {
  EXPECT_EQ(SplitMix64::Mix(42), SplitMix64::Mix(42));
  EXPECT_NE(SplitMix64::Mix(42), SplitMix64::Mix(43));
}

// ---------------------------------------------------------------- uint128

TEST(Uint128, ToStringSmall) {
  EXPECT_EQ(ToString(static_cast<uint128>(0)), "0");
  EXPECT_EQ(ToString(static_cast<uint128>(7)), "7");
  EXPECT_EQ(ToString(static_cast<uint128>(1234567890)), "1234567890");
}

TEST(Uint128, ToStringLarge) {
  // 2^64 = 18446744073709551616
  const uint128 v = static_cast<uint128>(1) << 64;
  EXPECT_EQ(ToString(v), "18446744073709551616");
}

TEST(Uint128, ToStringMax) {
  EXPECT_EQ(ToString(kUint128Max),
            "340282366920938463463374607431768211455");
}

TEST(Uint128, ParseRoundTrip) {
  for (const char* s :
       {"0", "1", "999", "18446744073709551616",
        "340282366920938463463374607431768211455"}) {
    uint128 v = 0;
    ASSERT_TRUE(ParseUint128(s, &v));
    EXPECT_EQ(ToString(v), s);
  }
}

TEST(Uint128, ParseRejectsGarbage) {
  uint128 v = 0;
  EXPECT_FALSE(ParseUint128("", &v));
  EXPECT_FALSE(ParseUint128("12a", &v));
  EXPECT_FALSE(ParseUint128("-1", &v));
}

TEST(Uint128, SatAddSaturates) {
  EXPECT_EQ(SatAdd(kUint128Max, 1), kUint128Max);
  EXPECT_EQ(SatAdd(kUint128Max - 1, 1), kUint128Max);
  EXPECT_EQ(SatAdd(kUint128Max, kUint128Max), kUint128Max);
  EXPECT_EQ(SatAdd(5, 7), static_cast<uint128>(12));
}

TEST(Uint128, SatMulSaturates) {
  const uint128 half = static_cast<uint128>(1) << 127;
  EXPECT_EQ(SatMul(half, 2), kUint128Max);
  EXPECT_EQ(SatMul(half, 1), half);
  EXPECT_EQ(SatMul(0, kUint128Max), static_cast<uint128>(0));
  EXPECT_EQ(SatMul(3, 4), static_cast<uint128>(12));
}

TEST(BigCount, ArithmeticAndComparison) {
  BigCount a(10), b(3);
  EXPECT_EQ((a + b).ToString(), "13");
  EXPECT_EQ((a * b).ToString(), "30");
  EXPECT_TRUE(b < a);
  EXPECT_TRUE(a >= b);
  EXPECT_TRUE(a != b);
  EXPECT_FALSE(a.saturated());
  EXPECT_TRUE(BigCount(kUint128Max).saturated());
}

TEST(BigCount, AsDoubleExactForSmall) {
  EXPECT_DOUBLE_EQ(BigCount(1000000).AsDouble(), 1e6);
}

// ---------------------------------------------------------------- binomial

TEST(Binomial, TableSmallValues) {
  BinomialTable t(10);
  EXPECT_EQ(t.Choose(0, 0), static_cast<uint128>(1));
  EXPECT_EQ(t.Choose(5, 2), static_cast<uint128>(10));
  EXPECT_EQ(t.Choose(10, 5), static_cast<uint128>(252));
  EXPECT_EQ(t.Choose(10, 0), static_cast<uint128>(1));
  EXPECT_EQ(t.Choose(10, 10), static_cast<uint128>(1));
}

TEST(Binomial, ChooseKGreaterThanNIsZero) {
  BinomialTable t(5);
  EXPECT_EQ(t.Choose(3, 4), static_cast<uint128>(0));
  EXPECT_EQ(BinomialChoose(3, 4), static_cast<uint128>(0));
}

TEST(Binomial, TableMatchesDirectComputation) {
  BinomialTable t(40);
  for (std::uint32_t n = 0; n <= 40; ++n)
    for (std::uint32_t k = 0; k <= n; ++k)
      EXPECT_EQ(t.Choose(n, k), BinomialChoose(n, k)) << n << " " << k;
}

TEST(Binomial, PaperExample24Choose12) {
  // "a 24-clique contains over 2.7 million 12-cliques" (Section I).
  EXPECT_EQ(ToString(BinomialChoose(24, 12)), "2704156");
}

TEST(Binomial, LargeValuesStay128Bit) {
  // C(120, 60) ~ 9.6e34 fits in 128 bits.
  BinomialTable t(120);
  EXPECT_NE(t.Choose(120, 60), kUint128Max);
  EXPECT_EQ(t.Choose(120, 60), BinomialChoose(120, 60));
}

TEST(Binomial, SaturatesInsteadOfWrapping) {
  // C(140, 70) ~ 9.4e40 exceeds 2^128-1 ~ 3.4e38.
  BinomialTable t(140);
  EXPECT_EQ(t.Choose(140, 70), kUint128Max);
}

TEST(Binomial, EnsureRowsGrows) {
  BinomialTable t(4);
  t.EnsureRows(12);
  EXPECT_EQ(t.Choose(12, 6), static_cast<uint128>(924));
}

TEST(Binomial, PascalIdentity) {
  BinomialTable t(30);
  for (std::uint32_t n = 2; n <= 30; ++n)
    for (std::uint32_t k = 1; k < n; ++k)
      EXPECT_EQ(t.Choose(n, k),
                SatAdd(t.Choose(n - 1, k - 1), t.Choose(n - 1, k)));
}

// ---------------------------------------------------------------- bytemap

TEST(ByteMap, SetTestUnset) {
  ByteMap m(16);
  EXPECT_FALSE(m.Test(3));
  m.Set(3);
  EXPECT_TRUE(m.Test(3));
  m.Unset(3);
  EXPECT_FALSE(m.Test(3));
}

TEST(ByteMap, ClearIds) {
  ByteMap m(8);
  std::vector<std::uint32_t> ids = {1, 4, 6};
  for (auto id : ids) m.Set(id);
  m.ClearIds(ids);
  for (std::uint32_t i = 0; i < 8; ++i) EXPECT_FALSE(m.Test(i));
}

TEST(ByteMap, EnsureCapacityPreserves) {
  ByteMap m(4);
  m.Set(2);
  m.EnsureCapacity(100);
  EXPECT_TRUE(m.Test(2));
  EXPECT_FALSE(m.Test(99));
  EXPECT_GE(m.capacity(), 100u);
}

// ---------------------------------------------------------------- sparse set

TEST(SparseSet, InsertEraseContains) {
  SparseSet s(10);
  EXPECT_TRUE(s.Insert(4));
  EXPECT_FALSE(s.Insert(4));  // duplicate
  EXPECT_TRUE(s.Contains(4));
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.Erase(4));
  EXPECT_FALSE(s.Erase(4));
  EXPECT_FALSE(s.Contains(4));
  EXPECT_TRUE(s.empty());
}

TEST(SparseSet, SwapEraseKeepsOthers) {
  SparseSet s(10);
  for (std::uint32_t v : {1u, 3u, 5u, 7u}) s.Insert(v);
  s.Erase(3);
  EXPECT_TRUE(s.Contains(1));
  EXPECT_TRUE(s.Contains(5));
  EXPECT_TRUE(s.Contains(7));
  EXPECT_FALSE(s.Contains(3));
  EXPECT_EQ(s.size(), 3u);
}

TEST(SparseSet, ClearIsCheapAndComplete) {
  SparseSet s(100);
  for (std::uint32_t v = 0; v < 100; ++v) s.Insert(v);
  s.Clear();
  EXPECT_TRUE(s.empty());
  for (std::uint32_t v = 0; v < 100; ++v) EXPECT_FALSE(s.Contains(v));
  // Reusable after clear.
  EXPECT_TRUE(s.Insert(42));
  EXPECT_TRUE(s.Contains(42));
}

TEST(SparseSet, StaleSparseEntriesDoNotFalsePositive) {
  SparseSet s(10);
  s.Insert(5);
  s.Erase(5);
  s.Insert(2);  // occupies dense slot 0, which 5's sparse entry points to
  EXPECT_FALSE(s.Contains(5));
}

// ---------------------------------------------------------------- prefix sum

TEST(PrefixSum, ExclusiveScanBasic) {
  std::vector<std::uint64_t> in = {3, 1, 4, 1, 5};
  std::vector<std::uint64_t> out;
  const std::uint64_t total = ParallelPrefixSum(in, &out);
  EXPECT_EQ(total, 14u);
  EXPECT_EQ(out, (std::vector<std::uint64_t>{0, 3, 4, 8, 9}));
}

TEST(PrefixSum, EmptyInput) {
  std::vector<std::uint64_t> in, out;
  EXPECT_EQ(ParallelPrefixSum(in, &out), 0u);
  EXPECT_TRUE(out.empty());
}

TEST(PrefixSum, InPlaceAliasing) {
  std::vector<std::uint64_t> v = {2, 2, 2, 2};
  EXPECT_EQ(ParallelPrefixSum(v, &v), 8u);
  EXPECT_EQ(v, (std::vector<std::uint64_t>{0, 2, 4, 6}));
}

TEST(PrefixSum, LargeRandomMatchesSequential) {
  Rng rng(5);
  std::vector<std::uint64_t> in(10000);
  for (auto& x : in) x = rng.Below(100);
  std::vector<std::uint64_t> expected(in.size());
  std::uint64_t run = 0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    expected[i] = run;
    run += in[i];
  }
  std::vector<std::uint64_t> out;
  EXPECT_EQ(ParallelPrefixSum(in, &out), run);
  EXPECT_EQ(out, expected);
}

// ---------------------------------------------------------------- cli

TEST(Cli, ParsesFlagsAndPositionals) {
  const char* argv[] = {"prog", "--k", "8", "--name=orkut", "file.el",
                        "--verbose"};
  ArgParser args(6, const_cast<char**>(argv));
  EXPECT_EQ(args.GetInt("k", 0), 8);
  EXPECT_EQ(args.GetString("name", ""), "orkut");
  EXPECT_TRUE(args.GetBool("verbose", false));
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "file.el");
}

TEST(Cli, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  ArgParser args(1, const_cast<char**>(argv));
  EXPECT_EQ(args.GetInt("k", 42), 42);
  EXPECT_EQ(args.GetDouble("eps", -0.5), -0.5);
  EXPECT_FALSE(args.Has("k"));
}

TEST(Cli, IntList) {
  const char* argv[] = {"prog", "--ks", "4,6,8"};
  ArgParser args(3, const_cast<char**>(argv));
  EXPECT_EQ(args.GetIntList("ks", {}),
            (std::vector<std::int64_t>{4, 6, 8}));
}

TEST(Cli, MalformedValuesThrow) {
  const char* argv[] = {"prog", "--k", "abc"};
  ArgParser args(3, const_cast<char**>(argv));
  EXPECT_THROW(args.GetInt("k", 0), std::exception);
}

TEST(Cli, NegativeNumberAsValue) {
  const char* argv[] = {"prog", "--eps", "-0.5"};
  ArgParser args(3, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(args.GetDouble("eps", 0), -0.5);
}

// ---------------------------------------------------------------- stats

TEST(Stats, MeanAndStdDev) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(Mean({}), 0);
  EXPECT_NEAR(StdDev({2, 4, 4, 4, 5, 5, 7, 9}), 2.0, 1e-12);
}

TEST(Stats, GeoMean) {
  EXPECT_NEAR(GeoMean({1, 8}), 2.828427, 1e-5);
  EXPECT_DOUBLE_EQ(GeoMean({5}), 5);
}

TEST(Stats, CoeffOfVariation) {
  EXPECT_DOUBLE_EQ(CoeffOfVariation({3, 3, 3}), 0);
  EXPECT_GT(CoeffOfVariation({1, 10}), 0.5);
}

// ---------------------------------------------------------------- table

TEST(Table, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512.00 B");
  EXPECT_EQ(HumanBytes(2048), "2.00 KiB");
  EXPECT_EQ(HumanBytes(std::uint64_t{3} << 20), "3.00 MiB");
}

TEST(Table, CellFormatting) {
  EXPECT_EQ(TablePrinter::Cell(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::Cell(std::int64_t{-5}), "-5");
}

}  // namespace
}  // namespace pivotscale
