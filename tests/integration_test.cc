// Integration tests across modules: the dataset suite through the full
// pipeline, agreement between all counters at suite scale, state reuse
// across roots, and timer/phase plumbing.
#include <gtest/gtest.h>

#include "baselines/enumeration.h"
#include "baselines/gpu_pivot_model.h"
#include "graph/dag.h"
#include "graph/datasets.h"
#include "pivot/count.h"
#include "pivot/pivoter.h"
#include "pivot/pivotscale.h"
#include "pivot/subgraph_remap.h"
#include "test_helpers.h"
#include "util/timer.h"

namespace pivotscale {
namespace {

using testing_helpers::MakeDag;

// ---------------------------------------------------------------- suite

class DatasetPipeline : public ::testing::TestWithParam<std::string> {};

TEST_P(DatasetPipeline, AllCountersAgreeAtSmallScale) {
  const Dataset d = MakeDataset(GetParam(), 0.05);
  const std::uint32_t k = 4;

  PivotScaleOptions ps_options;
  ps_options.k = k;
  const BigCount reference = CountKCliques(d.graph, ps_options).total;

  const Graph dag = MakeDag(d.graph, OrderingKind::kCore);
  EnumerationOptions enum_options;
  enum_options.k = k;
  enum_options.time_budget_seconds = 60;
  const EnumerationResult er = CountCliquesEnumeration(dag, enum_options);
  ASSERT_FALSE(er.timed_out);
  EXPECT_EQ(er.total, reference);
  EXPECT_EQ(CountCliquesGpuPivotModel(dag, k).total, reference);
}

TEST_P(DatasetPipeline, AllKConsistentWithSingleK) {
  const Dataset d = MakeDataset(GetParam(), 0.05);
  const Graph dag = MakeDag(d.graph, OrderingKind::kDegree);

  CountOptions all;
  all.mode = CountMode::kAllK;
  const CountResult all_result = CountCliques(dag, all);

  // Structural identities: 1-cliques = vertices, 2-cliques = edges.
  EXPECT_EQ(all_result.per_size[1].value(),
            static_cast<uint128>(dag.NumNodes()));
  EXPECT_EQ(all_result.per_size[2].value(),
            static_cast<uint128>(dag.NumDirectedEdges()));

  for (std::uint32_t k : {3u, 5u, 7u}) {
    CountOptions single;
    single.k = k;
    EXPECT_EQ(CountCliques(dag, single).total, all_result.per_size[k]) << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Suite, DatasetPipeline,
                         ::testing::ValuesIn(DatasetNames()),
                         [](const auto& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

// ---------------------------------------------------------------- reuse

TEST(CounterReuse, ReprocessingRootsDoublesCounts) {
  // The workspace must return to a reusable state after every root: running
  // the same roots twice must exactly double the total.
  const Dataset d = MakeDataset("dblp-like", 0.05);
  const Graph dag = MakeDag(d.graph, OrderingKind::kCore);
  const std::uint32_t bound =
      static_cast<std::uint32_t>(dag.MaxDegree()) + 1;
  const BinomialTable binom(bound + 1);

  PivotCounter<RemapSubgraph, NoStats> once(dag, CountMode::kSingleK, 5,
                                            false, bound, &binom);
  PivotCounter<RemapSubgraph, NoStats> twice(dag, CountMode::kSingleK, 5,
                                             false, bound, &binom);
  for (NodeId v = 0; v < dag.NumNodes(); ++v) once.ProcessRoot(v);
  for (int round = 0; round < 2; ++round)
    for (NodeId v = 0; v < dag.NumNodes(); ++v) twice.ProcessRoot(v);
  EXPECT_EQ(twice.total(), once.total() + once.total());
}

TEST(CounterReuse, InterleavedRootsMatchSequential) {
  // Processing roots in a different order must not change the total (the
  // structures carry no cross-root state).
  const Dataset d = MakeDataset("wikitalk-like", 0.05);
  const Graph dag = MakeDag(d.graph, OrderingKind::kDegree);
  const std::uint32_t bound =
      static_cast<std::uint32_t>(dag.MaxDegree()) + 1;
  const BinomialTable binom(bound + 1);

  PivotCounter<RemapSubgraph, NoStats> forward(dag, CountMode::kSingleK, 4,
                                               false, bound, &binom);
  PivotCounter<RemapSubgraph, NoStats> backward(dag, CountMode::kSingleK, 4,
                                                false, bound, &binom);
  for (NodeId v = 0; v < dag.NumNodes(); ++v) forward.ProcessRoot(v);
  for (NodeId v = dag.NumNodes(); v > 0; --v) backward.ProcessRoot(v - 1);
  EXPECT_EQ(forward.total(), backward.total());
}

TEST(CounterReuse, ThreadCountDoesNotChangeCounts) {
  const Dataset d = MakeDataset("skitter-like", 0.05);
  const Graph dag = MakeDag(d.graph, OrderingKind::kCore);
  BigCount reference{};
  for (int threads : {1, 2, 4}) {
    CountOptions options;
    options.k = 5;
    options.num_threads = threads;
    const BigCount total = CountCliques(dag, options).total;
    if (threads == 1)
      reference = total;
    else
      EXPECT_EQ(total, reference) << threads;
  }
}

// ---------------------------------------------------------------- timers

TEST(Timers, PhaseTimerAccumulates) {
  PhaseTimer pt;
  pt.Start();
  pt.Stop("a");
  pt.Stop("b");
  pt.Stop("a");
  EXPECT_EQ(pt.phases().size(), 3u);
  EXPECT_GE(pt.SecondsFor("a"), 0.0);
  EXPECT_DOUBLE_EQ(pt.SecondsFor("missing"), 0.0);
  EXPECT_NEAR(pt.TotalSeconds(),
              pt.SecondsFor("a") + pt.SecondsFor("b"), 1e-12);
}

TEST(Timers, TimerMonotone) {
  Timer t;
  const double a = t.Seconds();
  const double b = t.Seconds();
  EXPECT_GE(b, a);
  EXPECT_GE(t.Nanos(), 0u);
}

// ---------------------------------------------------------------- pipeline phases

TEST(PipelinePhases, BreakdownSumsToTotal) {
  const Dataset d = MakeDataset("dblp-like", 0.05);
  PivotScaleOptions options;
  options.k = 5;
  const PivotScaleResult r = CountKCliques(d.graph, options);
  EXPECT_NEAR(r.heuristic_seconds + r.ordering_seconds +
                  r.directionalize_seconds + r.counting_seconds,
              r.total_seconds, 1e-9);
  EXPECT_GT(r.max_out_degree, 0u);
}

}  // namespace
}  // namespace pivotscale
