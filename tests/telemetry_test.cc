// Tests for the run-telemetry subsystem: the registry, the JSON
// writer/parser pair, and the full pipeline's run report schema.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "graph/builder.h"
#include "graph/dag.h"
#include "graph/generators.h"
#include "order/heuristic.h"
#include "order/ordering.h"
#include "pivot/count.h"
#include "pivot/pivotscale.h"
#include "util/json_writer.h"
#include "util/telemetry.h"

namespace pivotscale {
namespace {

// ------------------------------------------------------------- JsonWriter

TEST(JsonWriter, BuildsNestedDocument) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name");
  w.Value("run \"1\"\n");
  w.Key("count");
  w.Value(std::uint64_t{42});
  w.Key("ratio");
  w.Value(0.5);
  w.Key("flags");
  w.BeginArray();
  w.Value(true);
  w.Null();
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\"name\":\"run \\\"1\\\"\\n\",\"count\":42,\"ratio\":0.5,"
            "\"flags\":[true,null]}");
}

TEST(JsonWriter, RejectsMalformedStructure) {
  JsonWriter w;
  w.BeginObject();
  EXPECT_THROW(w.Value(1.0), std::logic_error);   // value without Key
  EXPECT_THROW(w.EndArray(), std::logic_error);   // wrong closer
  EXPECT_THROW(w.str(), std::logic_error);        // unclosed document
}

TEST(JsonParse, RoundTripsWriterOutput) {
  JsonWriter w;
  w.BeginObject();
  w.Key("pi");
  w.Value(3.25);
  w.Key("list");
  w.BeginArray();
  w.Value(std::uint64_t{1});
  w.Value(std::uint64_t{2});
  w.EndArray();
  w.Key("s");
  w.Value("a\tb");
  w.EndObject();

  const JsonValue v = ParseJson(w.str());
  ASSERT_TRUE(v.IsObject());
  EXPECT_DOUBLE_EQ(v.Find("pi")->number, 3.25);
  ASSERT_TRUE(v.Find("list")->IsArray());
  EXPECT_EQ(v.Find("list")->array.size(), 2u);
  EXPECT_EQ(v.Find("s")->string_value, "a\tb");
}

TEST(JsonParse, RejectsGarbage) {
  EXPECT_THROW(ParseJson("{"), std::runtime_error);
  EXPECT_THROW(ParseJson("{} x"), std::runtime_error);
  EXPECT_THROW(ParseJson("{\"a\":}"), std::runtime_error);
  EXPECT_THROW(ParseJson("[1,]"), std::runtime_error);
}

// ------------------------------------------------------ TelemetryRegistry

TEST(TelemetryRegistry, CountersAccumulateGaugesOverwrite) {
  TelemetryRegistry reg;
  reg.AddCounter("ops", 3);
  reg.AddCounter("ops", 4);
  reg.SetGauge("g", 1.5);
  reg.SetGauge("g", 2.5);
  EXPECT_EQ(reg.Counter("ops"), 7u);
  EXPECT_DOUBLE_EQ(reg.Gauge("g"), 2.5);
  EXPECT_EQ(reg.Counter("missing"), 0u);
  EXPECT_DOUBLE_EQ(reg.Gauge("missing"), 0.0);
}

TEST(TelemetryRegistry, SpansKeepOrderAndSum) {
  TelemetryRegistry reg;
  reg.RecordSpan("a", 1.0);
  reg.RecordSpan("b", 2.0);
  reg.RecordSpan("a", 0.5);
  EXPECT_TRUE(reg.HasSpan("a"));
  EXPECT_FALSE(reg.HasSpan("c"));
  EXPECT_DOUBLE_EQ(reg.SpanSeconds("a"), 1.5);
  const TelemetrySnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.spans.size(), 3u);
  EXPECT_EQ(snap.spans[0].name, "a");
  EXPECT_EQ(snap.spans[1].name, "b");
  EXPECT_EQ(snap.spans[2].name, "a");
}

TEST(TelemetryRegistry, ScopedSpanRecordsAndNullIsNoop) {
  TelemetryRegistry reg;
  { TelemetryRegistry::ScopedSpan span(&reg, "scoped"); }
  EXPECT_TRUE(reg.HasSpan("scoped"));
  { TelemetryRegistry::ScopedSpan span(nullptr, "ignored"); }  // no crash
}

TEST(TelemetryRegistry, ConcurrentCountersAreExact) {
  TelemetryRegistry reg;
#pragma omp parallel for
  for (int i = 0; i < 1000; ++i) reg.AddCounter("hits", 1);
  EXPECT_EQ(reg.Counter("hits"), 1000u);
}

// ------------------------------------------------------------- RunReport

// The stable schema every consumer relies on (also documented in
// docs/api_tour.md): top-level schema/version plus the four sections.
void CheckReportSchema(const JsonValue& doc) {
  ASSERT_TRUE(doc.IsObject());
  ASSERT_NE(doc.Find("schema"), nullptr);
  EXPECT_EQ(doc.Find("schema")->string_value, "pivotscale.run_report");
  ASSERT_NE(doc.Find("version"), nullptr);
  EXPECT_DOUBLE_EQ(doc.Find("version")->number, 1.0);
  ASSERT_NE(doc.Find("counters"), nullptr);
  EXPECT_TRUE(doc.Find("counters")->IsObject());
  ASSERT_NE(doc.Find("gauges"), nullptr);
  EXPECT_TRUE(doc.Find("gauges")->IsObject());
  ASSERT_NE(doc.Find("spans"), nullptr);
  EXPECT_TRUE(doc.Find("spans")->IsArray());
  for (const JsonValue& span : doc.Find("spans")->array) {
    ASSERT_TRUE(span.IsObject());
    ASSERT_NE(span.Find("name"), nullptr);
    ASSERT_NE(span.Find("seconds"), nullptr);
    EXPECT_TRUE(span.Find("seconds")->IsNumber());
  }
  ASSERT_NE(doc.Find("series"), nullptr);
  EXPECT_TRUE(doc.Find("series")->IsObject());
}

TEST(RunReport, EmptyRegistrySerializesCleanly) {
  TelemetryRegistry reg;
  CheckReportSchema(ParseJson(RunReportJson(reg)));
}

TEST(RunReport, PipelineProducesFullSchema) {
  EdgeList edges = Rmat(9, 6.0, 7);
  PlantCliques(&edges, 512, 4, 5, 8, 11);
  const Graph g = BuildGraph(std::move(edges));

  TelemetryRegistry reg;
  PivotScaleOptions options;
  options.k = 5;
  options.telemetry = &reg;
  const PivotScaleResult result = CountKCliques(g, options);

  const JsonValue doc = ParseJson(RunReportJson(reg));
  CheckReportSchema(doc);

  // Per-phase spans (heuristic, ordering, directionalize, counting).
  for (const char* phase :
       {"heuristic", "ordering", "directionalize", "counting"})
    EXPECT_TRUE(reg.HasSpan(phase)) << phase;

  // Per-thread busy times land in a series of the actual team size.
  const JsonValue* busy =
      doc.Find("series")->Find("count.thread_busy_seconds");
  ASSERT_NE(busy, nullptr);
  ASSERT_TRUE(busy->IsArray());
  EXPECT_EQ(busy->array.size(), result.count.thread_busy_seconds.size());
  EXPECT_GE(busy->array.size(), 1u);

  // Op counters come from the OpCountStats policy (telemetry implies it).
  const JsonValue* counters = doc.Find("counters");
  ASSERT_NE(counters->Find("count.recursion_calls"), nullptr);
  EXPECT_GT(counters->Find("count.recursion_calls")->number, 0);
  ASSERT_NE(counters->Find("count.edge_ops"), nullptr);
  ASSERT_NE(counters->Find("count.roots"), nullptr);
  EXPECT_DOUBLE_EQ(counters->Find("count.roots")->number,
                   static_cast<double>(g.NumNodes()));
  ASSERT_NE(counters->Find("count.chunks"), nullptr);
  EXPECT_GT(counters->Find("count.chunks")->number, 0);

  // Stage gauges: heuristic probes, ordering rounds, directionalize
  // quality.
  const JsonValue* gauges = doc.Find("gauges");
  for (const char* name :
       {"heuristic.max_degree", "heuristic.a_ratio", "ordering.rounds",
        "directionalize.max_out_degree", "count.threads",
        "count.workspace_bytes"})
    ASSERT_NE(gauges->Find(name), nullptr) << name;
  EXPECT_DOUBLE_EQ(gauges->Find("directionalize.max_out_degree")->number,
                   static_cast<double>(result.max_out_degree));
}

TEST(RunReport, EdgeParallelDriverRecords) {
  const Graph g = BuildGraph(CompleteGraph(20));
  const Ordering ord = ComputeOrdering(g, {OrderingKind::kDegree});
  const Graph dag = Directionalize(g, ord.ranks);

  TelemetryRegistry reg;
  CountOptions options;
  options.k = 4;
  options.telemetry = &reg;
  const CountResult result = CountCliquesEdgeParallel(dag, options);
  EXPECT_EQ(result.total.value(), static_cast<uint128>(4845));  // C(20,4)

  EXPECT_EQ(reg.Counter("count.edge_owners"), 20u);
  EXPECT_GT(reg.Counter("count.recursion_calls"), 0u);
  EXPECT_EQ(reg.Series("count.thread_busy_seconds").size(),
            result.thread_busy_seconds.size());
}

TEST(RunReport, WriteAndImbalanceSummary) {
  TelemetryRegistry reg;
  reg.SetSeries("count.thread_busy_seconds", {1.0, 0.5, 0.25});
  reg.AddCounter("count.roots", 10);

  const std::string summary = LoadImbalanceSummary(reg);
  EXPECT_NE(summary.find("count.thread_busy_seconds"), std::string::npos);
  EXPECT_NE(summary.find("CoV"), std::string::npos);
  EXPECT_NE(summary.find("3 threads"), std::string::npos);

  const std::string path =
      ::testing::TempDir() + "/telemetry_test_report.json";
  WriteRunReport(path, reg);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  CheckReportSchema(ParseJson(buffer.str()));
  std::remove(path.c_str());
}

TEST(RunReport, StableOutputForIdenticalRegistries) {
  const auto fill = [](TelemetryRegistry& reg) {
    reg.AddCounter("b", 2);
    reg.AddCounter("a", 1);
    reg.SetGauge("z", 0.125);
    reg.RecordSpan("phase", 0.5);
    reg.SetSeries("s", {1.0, 2.0});
  };
  TelemetryRegistry r1, r2;
  fill(r1);
  fill(r2);
  EXPECT_EQ(RunReportJson(r1), RunReportJson(r2));
}

}  // namespace
}  // namespace pivotscale
