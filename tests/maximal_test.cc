// Tests for maximal clique enumeration, validated against closed forms and
// a brute-force maximality check on random graphs.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>

#include "graph/builder.h"
#include "graph/generators.h"
#include "pivot/maximal.h"

namespace pivotscale {
namespace {

// Brute force: every subset of <= n vertices checked for clique-ness and
// maximality. Usable up to ~18 vertices.
std::set<std::set<NodeId>> BruteForceMaximalCliques(const Graph& g) {
  const NodeId n = g.NumNodes();
  std::vector<std::set<NodeId>> cliques;
  for (std::uint32_t mask = 1; mask < (1u << n); ++mask) {
    std::vector<NodeId> members;
    for (NodeId v = 0; v < n; ++v)
      if (mask & (1u << v)) members.push_back(v);
    bool is_clique = true;
    for (std::size_t i = 0; i < members.size() && is_clique; ++i)
      for (std::size_t j = i + 1; j < members.size(); ++j)
        if (!g.HasEdge(members[i], members[j])) {
          is_clique = false;
          break;
        }
    if (is_clique) cliques.emplace_back(members.begin(), members.end());
  }
  std::set<std::set<NodeId>> maximal;
  for (const auto& c : cliques) {
    bool extendable = false;
    for (const auto& d : cliques)
      if (d.size() > c.size() &&
          std::includes(d.begin(), d.end(), c.begin(), c.end())) {
        extendable = true;
        break;
      }
    if (!extendable) maximal.insert(c);
  }
  return maximal;
}

TEST(MaximalCliques, CompleteGraphHasOne) {
  const Graph g = BuildGraph(CompleteGraph(8));
  const MaximalCliqueStats stats = CountMaximalCliques(g);
  EXPECT_EQ(stats.total.value(), static_cast<uint128>(1));
  EXPECT_EQ(stats.largest, 8u);
  EXPECT_EQ(stats.by_size[8].value(), static_cast<uint128>(1));
}

TEST(MaximalCliques, PathHasEdges) {
  const Graph g = BuildGraph(PathGraph(20));
  const MaximalCliqueStats stats = CountMaximalCliques(g);
  EXPECT_EQ(stats.total.value(), static_cast<uint128>(19));
  EXPECT_EQ(stats.largest, 2u);
}

TEST(MaximalCliques, CycleHasEdges) {
  const Graph g = BuildGraph(CycleGraph(9));
  EXPECT_EQ(CountMaximalCliques(g).total.value(), static_cast<uint128>(9));
}

TEST(MaximalCliques, TuranTransversals) {
  // T(9, 3) with parts of 3: maximal cliques are the 3*3*3 transversals.
  const Graph g = BuildGraph(TuranGraph(9, 3));
  const MaximalCliqueStats stats = CountMaximalCliques(g);
  EXPECT_EQ(stats.total.value(), static_cast<uint128>(27));
  EXPECT_EQ(stats.largest, 3u);
}

TEST(MaximalCliques, MoonMoserBound) {
  // K_{3,3,3,3} (complement of 4 disjoint triangles) has 3^4 = 81 maximal
  // cliques — the Moon-Moser extremal family.
  const Graph g = BuildGraph(TuranGraph(12, 4));
  EXPECT_EQ(CountMaximalCliques(g).total.value(),
            static_cast<uint128>(81));
}

TEST(MaximalCliques, IsolatedVerticesAreMaximal) {
  const Graph g = BuildUndirected({{0, 1}}, 4);
  const MaximalCliqueStats stats = CountMaximalCliques(g);
  // {0,1} plus two isolated 1-cliques.
  EXPECT_EQ(stats.total.value(), static_cast<uint128>(3));
  EXPECT_EQ(stats.by_size[1].value(), static_cast<uint128>(2));
}

using SweepParam = std::tuple<int, double, int>;
class MaximalSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(MaximalSweep, MatchesBruteForce) {
  const auto [n, p, seed] = GetParam();
  const Graph g = BuildGraph(
      ErdosRenyi(static_cast<NodeId>(n), p, static_cast<std::uint64_t>(seed)));
  const Graph full = BuildUndirected(
      [&] {
        EdgeList edges;
        for (NodeId u = 0; u < g.NumNodes(); ++u)
          for (NodeId v : g.Neighbors(u))
            if (u < v) edges.emplace_back(u, v);
        return edges;
      }(),
      static_cast<NodeId>(n));
  const auto expected = BruteForceMaximalCliques(full);

  // Counting agrees...
  const MaximalCliqueStats stats = CountMaximalCliques(full);
  EXPECT_EQ(stats.total.value(), static_cast<uint128>(expected.size()));

  // ...and listing produces exactly the expected set, each clique once.
  std::set<std::set<NodeId>> listed;
  ForEachMaximalClique(full, [&](std::span<const NodeId> clique) {
    std::set<NodeId> members(clique.begin(), clique.end());
    EXPECT_EQ(members.size(), clique.size()) << "duplicate member";
    EXPECT_TRUE(listed.insert(members).second) << "clique listed twice";
  });
  EXPECT_EQ(listed, expected);
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, MaximalSweep,
    ::testing::Combine(::testing::Values(8, 12, 16),
                       ::testing::Values(0.25, 0.5, 0.75),
                       ::testing::Values(1, 2, 3)));

TEST(MaximalCliques, BySizeSumsToTotal) {
  EdgeList edges = GnM(60, 300, 5);
  PlantCliques(&edges, 60, 2, 6, 9, 6);
  const Graph g = BuildGraph(std::move(edges));
  const MaximalCliqueStats stats = CountMaximalCliques(g);
  BigCount sum{};
  for (const BigCount& c : stats.by_size) sum += c;
  EXPECT_EQ(sum, stats.total);
}

TEST(CliqueNumberFn, MatchesPlantedClique) {
  EdgeList edges = GnM(200, 600, 7);
  PlantCliques(&edges, 200, 1, 12, 12, 8);
  const Graph g = BuildGraph(std::move(edges));
  EXPECT_EQ(CliqueNumber(g), 12u);
}

}  // namespace
}  // namespace pivotscale
