// Cross-validation of the two counting drivers, plus regression tests for
// the pipeline mode clobber and the per-thread busy-time sizing fix.
//
// CountCliques (vertex-parallel) and CountCliquesEdgeParallel decompose
// the same recursion differently; comparing them on random graphs for
// every k, structure, and per-vertex attribution keeps them from drifting.
#include <gtest/gtest.h>

#include <omp.h>

#include <algorithm>

#include "graph/builder.h"
#include "graph/generators.h"
#include "pivot/count.h"
#include "pivot/pivotscale.h"
#include "test_helpers.h"
#include "util/binomial.h"

namespace pivotscale {
namespace {

using testing_helpers::BruteForceCount;
using testing_helpers::MakeDag;

// ------------------------------------------------- driver cross-validation

struct CrossParam {
  NodeId n;
  double p;
  std::uint64_t seed;
};

class DriverCrosscheck : public ::testing::TestWithParam<CrossParam> {};

TEST_P(DriverCrosscheck, EdgeParallelMatchesVertexParallelAllStructures) {
  const auto [n, p, seed] = GetParam();
  const Graph g = BuildGraph(ErdosRenyi(n, p, seed));
  const Graph dag = MakeDag(g, OrderingKind::kCore);

  for (std::uint32_t k = 1; k <= 6; ++k) {
    CountOptions options;
    options.k = k;
    const CountResult edge = CountCliquesEdgeParallel(dag, options);
    const std::uint64_t truth = BruteForceCount(g, k);
    EXPECT_EQ(edge.total.value(), static_cast<uint128>(truth))
        << "edge-parallel k=" << k;
    for (auto kind : {SubgraphKind::kDense, SubgraphKind::kSparse,
                      SubgraphKind::kRemap}) {
      options.structure = kind;
      const CountResult vertex = CountCliques(dag, options);
      EXPECT_EQ(vertex.total, edge.total)
          << "k=" << k << " structure=" << SubgraphKindName(kind);
    }
  }
}

TEST_P(DriverCrosscheck, PerVertexCountsAgree) {
  const auto [n, p, seed] = GetParam();
  const Graph g = BuildGraph(ErdosRenyi(n, p, seed + 1000));
  const Graph dag = MakeDag(g, OrderingKind::kDegree);

  for (std::uint32_t k = 1; k <= 6; ++k) {
    CountOptions options;
    options.k = k;
    options.per_vertex = true;
    const CountResult edge = CountCliquesEdgeParallel(dag, options);
    ASSERT_EQ(edge.per_vertex.size(), g.NumNodes());
    for (auto kind : {SubgraphKind::kDense, SubgraphKind::kSparse,
                      SubgraphKind::kRemap}) {
      options.structure = kind;
      const CountResult vertex = CountCliques(dag, options);
      ASSERT_EQ(vertex.per_vertex.size(), g.NumNodes());
      for (NodeId v = 0; v < g.NumNodes(); ++v)
        EXPECT_EQ(vertex.per_vertex[v], edge.per_vertex[v])
            << "k=" << k << " structure=" << SubgraphKindName(kind)
            << " v=" << v;
    }
  }
}

TEST_P(DriverCrosscheck, AllKPerSizeAgrees) {
  const auto [n, p, seed] = GetParam();
  const Graph g = BuildGraph(ErdosRenyi(n, p, seed + 2000));
  const Graph dag = MakeDag(g, OrderingKind::kCore);

  CountOptions options;
  options.k = 4;
  options.mode = CountMode::kAllK;
  const CountResult edge = CountCliquesEdgeParallel(dag, options);
  for (auto kind : {SubgraphKind::kDense, SubgraphKind::kSparse,
                    SubgraphKind::kRemap}) {
    options.structure = kind;
    const CountResult vertex = CountCliques(dag, options);
    const std::size_t sizes =
        std::min(vertex.per_size.size(), edge.per_size.size());
    for (std::size_t s = 1; s < sizes; ++s)
      EXPECT_EQ(vertex.per_size[s], edge.per_size[s])
          << "structure=" << SubgraphKindName(kind) << " size=" << s;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomGnp, DriverCrosscheck,
    ::testing::Values(CrossParam{40, 0.10, 1}, CrossParam{40, 0.25, 2},
                      CrossParam{60, 0.15, 3}, CrossParam{80, 0.08, 4}),
    [](const ::testing::TestParamInfo<CrossParam>& param_info) {
      std::string name = "n";
      name += std::to_string(param_info.param.n);
      name += "_seed";
      name += std::to_string(param_info.param.seed);
      return name;
    });

TEST(DriverCrosscheck, PlantedCliquesDeepK) {
  // Clique-rich input exercises the deep pivoting branches of both
  // decompositions.
  EdgeList edges = GnM(70, 300, 9);
  PlantCliques(&edges, 70, 3, 7, 9, 10);
  const Graph g = BuildGraph(std::move(edges));
  const Graph dag = MakeDag(g, OrderingKind::kCore);
  for (std::uint32_t k = 2; k <= 8; ++k) {
    CountOptions options;
    options.k = k;
    const CountResult vertex = CountCliques(dag, options);
    const CountResult edge = CountCliquesEdgeParallel(dag, options);
    EXPECT_EQ(vertex.total, edge.total) << "k=" << k;
  }
}

// -------------------------------------------- pipeline mode (regression)

TEST(PipelineMode, AllUpToKFlowsThroughPipeline) {
  // Pre-fix CountKCliques overwrote count.mode with kSingleK whenever
  // all_k was false, so kAllUpToK was unreachable and per_size stayed
  // empty of results.
  const Graph g = BuildGraph(CompleteGraph(12));
  PivotScaleOptions options;
  options.k = 5;
  options.count.mode = CountMode::kAllUpToK;
  options.forced_ordering = OrderingSpec{OrderingKind::kDegree};
  const PivotScaleResult result = CountKCliques(g, options);
  for (std::uint32_t s = 1; s <= 5; ++s)
    EXPECT_EQ(result.count.per_size[s].value(), BinomialChoose(12, s))
        << s;
  EXPECT_EQ(result.total.value(), BinomialChoose(12, 5));
}

TEST(PipelineMode, DefaultRemainsSingleK) {
  const Graph g = BuildGraph(CompleteGraph(10));
  PivotScaleOptions options;
  options.k = 3;
  options.forced_ordering = OrderingSpec{OrderingKind::kDegree};
  const PivotScaleResult result = CountKCliques(g, options);
  EXPECT_EQ(result.total.value(), BinomialChoose(10, 3));
}

TEST(PipelineMode, AllKStillForcesAllK) {
  const Graph g = BuildGraph(CompleteGraph(10));
  PivotScaleOptions options;
  options.k = 3;
  options.all_k = true;
  options.count.mode = CountMode::kSingleK;  // all_k must win
  options.forced_ordering = OrderingSpec{OrderingKind::kDegree};
  const PivotScaleResult result = CountKCliques(g, options);
  for (std::uint32_t s = 1; s <= 10; ++s)
    EXPECT_EQ(result.count.per_size[s].value(), BinomialChoose(10, s))
        << s;
}

// --------------------------------- busy-time team sizing (regression)

TEST(ThreadBusySeconds, SizedToActualTeamNotRequest) {
  // Inside an active parallel region with nesting disabled, OpenMP
  // delivers a team of 1 regardless of num_threads. Pre-fix the result
  // carried 4 slots, 3 of them phantom zeros diluting imbalance stats.
  const Graph g = BuildGraph(CompleteGraph(12));
  const Graph dag = MakeDag(g, OrderingKind::kDegree);
  CountOptions options;
  options.k = 3;
  options.num_threads = 4;

  const int prev_levels = omp_get_max_active_levels();
  omp_set_max_active_levels(1);
  CountResult vertex, edge;
#pragma omp parallel num_threads(2)
  {
#pragma omp single
    {
      vertex = CountCliques(dag, options);
      edge = CountCliquesEdgeParallel(dag, options);
    }
  }
  omp_set_max_active_levels(prev_levels);

  EXPECT_EQ(vertex.thread_busy_seconds.size(), 1u);
  EXPECT_EQ(edge.thread_busy_seconds.size(), 1u);
  EXPECT_EQ(vertex.total.value(), BinomialChoose(12, 3));
  EXPECT_EQ(edge.total.value(), BinomialChoose(12, 3));
}

TEST(ThreadBusySeconds, DeliveredTeamOutsideParallelRegion) {
  const Graph g = BuildGraph(CompleteGraph(12));
  const Graph dag = MakeDag(g, OrderingKind::kDegree);
  CountOptions options;
  options.k = 3;
  options.num_threads = 2;
  const CountResult result = CountCliques(dag, options);
  EXPECT_GE(result.thread_busy_seconds.size(), 1u);
  EXPECT_LE(result.thread_busy_seconds.size(), 2u);
}

}  // namespace
}  // namespace pivotscale
