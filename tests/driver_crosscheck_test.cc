// Cross-validation of the two counting drivers, plus regression tests for
// the pipeline mode clobber and the per-thread busy-time sizing fix.
//
// CountCliques (vertex-parallel) and CountCliquesEdgeParallel decompose
// the same recursion differently; comparing them on random graphs for
// every k, structure, and per-vertex attribution keeps them from drifting.
// The forced-split section pins the executor's long-tail splitting path:
// with split_threshold = 1 every root with out-edges becomes edge-slice
// subtasks, so the split decomposition (including the singleton fixup)
// carries the entire count and must still match brute force.
#include <gtest/gtest.h>

#include <omp.h>

#include <algorithm>

#include "graph/builder.h"
#include "graph/generators.h"
#include "pivot/count.h"
#include "pivot/pivotscale.h"
#include "test_helpers.h"
#include "util/binomial.h"
#include "util/telemetry.h"

namespace pivotscale {
namespace {

using testing_helpers::BruteForceCount;
using testing_helpers::MakeDag;

// ------------------------------------------------- driver cross-validation

struct CrossParam {
  NodeId n;
  double p;
  std::uint64_t seed;
};

class DriverCrosscheck : public ::testing::TestWithParam<CrossParam> {};

TEST_P(DriverCrosscheck, EdgeParallelMatchesVertexParallelAllStructures) {
  const auto [n, p, seed] = GetParam();
  const Graph g = BuildGraph(ErdosRenyi(n, p, seed));
  const Graph dag = MakeDag(g, OrderingKind::kCore);

  for (std::uint32_t k = 1; k <= 6; ++k) {
    CountOptions options;
    options.k = k;
    const CountResult edge = CountCliquesEdgeParallel(dag, options);
    const std::uint64_t truth = BruteForceCount(g, k);
    EXPECT_EQ(edge.total.value(), static_cast<uint128>(truth))
        << "edge-parallel k=" << k;
    for (auto kind : {SubgraphKind::kDense, SubgraphKind::kSparse,
                      SubgraphKind::kRemap}) {
      options.structure = kind;
      const CountResult vertex = CountCliques(dag, options);
      EXPECT_EQ(vertex.total, edge.total)
          << "k=" << k << " structure=" << SubgraphKindName(kind);
    }
  }
}

TEST_P(DriverCrosscheck, PerVertexCountsAgree) {
  const auto [n, p, seed] = GetParam();
  const Graph g = BuildGraph(ErdosRenyi(n, p, seed + 1000));
  const Graph dag = MakeDag(g, OrderingKind::kDegree);

  for (std::uint32_t k = 1; k <= 6; ++k) {
    CountOptions options;
    options.k = k;
    options.per_vertex = true;
    const CountResult edge = CountCliquesEdgeParallel(dag, options);
    ASSERT_EQ(edge.per_vertex.size(), g.NumNodes());
    for (auto kind : {SubgraphKind::kDense, SubgraphKind::kSparse,
                      SubgraphKind::kRemap}) {
      options.structure = kind;
      const CountResult vertex = CountCliques(dag, options);
      ASSERT_EQ(vertex.per_vertex.size(), g.NumNodes());
      for (NodeId v = 0; v < g.NumNodes(); ++v)
        EXPECT_EQ(vertex.per_vertex[v], edge.per_vertex[v])
            << "k=" << k << " structure=" << SubgraphKindName(kind)
            << " v=" << v;
    }
  }
}

TEST_P(DriverCrosscheck, AllKPerSizeAgrees) {
  const auto [n, p, seed] = GetParam();
  const Graph g = BuildGraph(ErdosRenyi(n, p, seed + 2000));
  const Graph dag = MakeDag(g, OrderingKind::kCore);

  CountOptions options;
  options.k = 4;
  options.mode = CountMode::kAllK;
  const CountResult edge = CountCliquesEdgeParallel(dag, options);
  for (auto kind : {SubgraphKind::kDense, SubgraphKind::kSparse,
                    SubgraphKind::kRemap}) {
    options.structure = kind;
    const CountResult vertex = CountCliques(dag, options);
    const std::size_t sizes =
        std::min(vertex.per_size.size(), edge.per_size.size());
    for (std::size_t s = 1; s < sizes; ++s)
      EXPECT_EQ(vertex.per_size[s], edge.per_size[s])
          << "structure=" << SubgraphKindName(kind) << " size=" << s;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomGnp, DriverCrosscheck,
    ::testing::Values(CrossParam{40, 0.10, 1}, CrossParam{40, 0.25, 2},
                      CrossParam{60, 0.15, 3}, CrossParam{80, 0.08, 4}),
    [](const ::testing::TestParamInfo<CrossParam>& param_info) {
      std::string name = "n";
      name += std::to_string(param_info.param.n);
      name += "_seed";
      name += std::to_string(param_info.param.seed);
      return name;
    });

TEST_P(DriverCrosscheck, ForcedSplitMatchesBruteForce) {
  // split_threshold = 1: the splitting path is not just exercised on the
  // heavy tail, it carries the whole count.
  const auto [n, p, seed] = GetParam();
  const Graph g = BuildGraph(ErdosRenyi(n, p, seed + 3000));
  const Graph dag = MakeDag(g, OrderingKind::kCore);
  for (std::uint32_t k = 1; k <= 6; ++k) {
    CountOptions options;
    options.k = k;
    options.structure = SubgraphKind::kRemap;
    options.split_threshold = 1;
    const CountResult split = CountCliques(dag, options);
    EXPECT_EQ(split.total.value(),
              static_cast<uint128>(BruteForceCount(g, k)))
        << "forced-split k=" << k;
  }
}

TEST_P(DriverCrosscheck, ForcedSplitPerVertexAndAllKAgreeWithUnsplit) {
  const auto [n, p, seed] = GetParam();
  const Graph g = BuildGraph(ErdosRenyi(n, p, seed + 4000));
  const Graph dag = MakeDag(g, OrderingKind::kDegree);

  CountOptions base;
  base.k = 4;
  base.structure = SubgraphKind::kRemap;
  base.per_vertex = true;
  base.split_threshold = kNeverSplit;
  const CountResult whole = CountCliques(dag, base);

  CountOptions split_options = base;
  split_options.split_threshold = 1;
  const CountResult split = CountCliques(dag, split_options);
  EXPECT_EQ(split.total, whole.total);
  ASSERT_EQ(split.per_vertex.size(), whole.per_vertex.size());
  for (NodeId v = 0; v < g.NumNodes(); ++v)
    EXPECT_EQ(split.per_vertex[v], whole.per_vertex[v]) << "v=" << v;

  CountOptions all_k = split_options;
  all_k.per_vertex = false;
  all_k.mode = CountMode::kAllK;
  CountOptions all_k_whole = all_k;
  all_k_whole.split_threshold = kNeverSplit;
  const CountResult split_all = CountCliques(dag, all_k);
  const CountResult whole_all = CountCliques(dag, all_k_whole);
  const std::size_t sizes =
      std::min(split_all.per_size.size(), whole_all.per_size.size());
  for (std::size_t s = 1; s < sizes; ++s)
    EXPECT_EQ(split_all.per_size[s], whole_all.per_size[s]) << "size=" << s;
}

TEST(ForcedSplit, NonRemapStructuresIgnoreThresholdAndStayCorrect) {
  // Dense/Sparse structures cannot run edge subtasks (no BuildPair);
  // split_threshold must be ignored, not mis-applied.
  const Graph g = BuildGraph(ErdosRenyi(50, 0.2, 7));
  const Graph dag = MakeDag(g, OrderingKind::kCore);
  const std::uint64_t truth = BruteForceCount(g, 4);
  for (auto kind : {SubgraphKind::kDense, SubgraphKind::kSparse}) {
    CountOptions options;
    options.k = 4;
    options.structure = kind;
    options.split_threshold = 1;
    const CountResult result = CountCliques(dag, options);
    EXPECT_EQ(result.total.value(), static_cast<uint128>(truth))
        << SubgraphKindName(kind);
  }
}

TEST(ForcedSplit, SplitTelemetryReportsEveryEligibleRoot) {
  const Graph g = BuildGraph(CompleteGraph(16));
  const Graph dag = MakeDag(g, OrderingKind::kDegree);
  TelemetryRegistry telemetry;
  CountOptions options;
  options.k = 4;
  options.structure = SubgraphKind::kRemap;
  options.split_threshold = 1;
  options.telemetry = &telemetry;
  const CountResult result = CountCliques(dag, options);
  EXPECT_EQ(result.total.value(), BinomialChoose(16, 4));
  // K16 under a total order: 15 roots have out-edges, the last has none.
  EXPECT_EQ(telemetry.Counter("count.splits"), 15u);
  EXPECT_EQ(telemetry.Counter("exec.splits"), 15u);
}

TEST(DriverCrosscheck, PlantedCliquesDeepK) {
  // Clique-rich input exercises the deep pivoting branches of both
  // decompositions.
  EdgeList edges = GnM(70, 300, 9);
  PlantCliques(&edges, 70, 3, 7, 9, 10);
  const Graph g = BuildGraph(std::move(edges));
  const Graph dag = MakeDag(g, OrderingKind::kCore);
  for (std::uint32_t k = 2; k <= 8; ++k) {
    CountOptions options;
    options.k = k;
    const CountResult vertex = CountCliques(dag, options);
    const CountResult edge = CountCliquesEdgeParallel(dag, options);
    EXPECT_EQ(vertex.total, edge.total) << "k=" << k;
  }
}

// -------------------------------------------- pipeline mode (regression)

TEST(PipelineMode, AllUpToKFlowsThroughPipeline) {
  // Pre-fix CountKCliques overwrote count.mode with kSingleK whenever
  // all_k was false, so kAllUpToK was unreachable and per_size stayed
  // empty of results.
  const Graph g = BuildGraph(CompleteGraph(12));
  PivotScaleOptions options;
  options.k = 5;
  options.count.mode = CountMode::kAllUpToK;
  options.forced_ordering = OrderingSpec{OrderingKind::kDegree};
  const PivotScaleResult result = CountKCliques(g, options);
  for (std::uint32_t s = 1; s <= 5; ++s)
    EXPECT_EQ(result.count.per_size[s].value(), BinomialChoose(12, s))
        << s;
  EXPECT_EQ(result.total.value(), BinomialChoose(12, 5));
}

TEST(PipelineMode, DefaultRemainsSingleK) {
  const Graph g = BuildGraph(CompleteGraph(10));
  PivotScaleOptions options;
  options.k = 3;
  options.forced_ordering = OrderingSpec{OrderingKind::kDegree};
  const PivotScaleResult result = CountKCliques(g, options);
  EXPECT_EQ(result.total.value(), BinomialChoose(10, 3));
}

TEST(PipelineMode, AllKStillForcesAllK) {
  const Graph g = BuildGraph(CompleteGraph(10));
  PivotScaleOptions options;
  options.k = 3;
  options.all_k = true;
  options.count.mode = CountMode::kSingleK;  // all_k must win
  options.forced_ordering = OrderingSpec{OrderingKind::kDegree};
  const PivotScaleResult result = CountKCliques(g, options);
  for (std::uint32_t s = 1; s <= 10; ++s)
    EXPECT_EQ(result.count.per_size[s].value(), BinomialChoose(10, s))
        << s;
}

// --------------------------------- busy-time team sizing (regression)

TEST(ThreadBusySeconds, SizedToActualTeamNotRequest) {
  // Inside an active parallel region with nesting disabled, OpenMP
  // delivers a team of 1 regardless of num_threads. Pre-fix the result
  // carried 4 slots, 3 of them phantom zeros diluting imbalance stats.
  const Graph g = BuildGraph(CompleteGraph(12));
  const Graph dag = MakeDag(g, OrderingKind::kDegree);
  CountOptions options;
  options.k = 3;
  options.num_threads = 4;

  const int prev_levels = omp_get_max_active_levels();
  omp_set_max_active_levels(1);
  CountResult vertex, edge;
#pragma omp parallel num_threads(2)
  {
#pragma omp single
    {
      vertex = CountCliques(dag, options);
      edge = CountCliquesEdgeParallel(dag, options);
    }
  }
  omp_set_max_active_levels(prev_levels);

  EXPECT_EQ(vertex.thread_busy_seconds.size(), 1u);
  EXPECT_EQ(edge.thread_busy_seconds.size(), 1u);
  EXPECT_EQ(vertex.total.value(), BinomialChoose(12, 3));
  EXPECT_EQ(edge.total.value(), BinomialChoose(12, 3));
}

TEST(ThreadBusySeconds, DeliveredTeamOutsideParallelRegion) {
  const Graph g = BuildGraph(CompleteGraph(12));
  const Graph dag = MakeDag(g, OrderingKind::kDegree);
  CountOptions options;
  options.k = 3;
  options.num_threads = 2;
  const CountResult result = CountCliques(dag, options);
  EXPECT_GE(result.thread_busy_seconds.size(), 1u);
  EXPECT_LE(result.thread_busy_seconds.size(), 2u);
}

}  // namespace
}  // namespace pivotscale
