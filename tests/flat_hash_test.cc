// Unit tests for the flat open-addressing hash map used on the counting
// hot path (sparse slot lookups, remap builds).
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "util/flat_hash.h"
#include "util/rng.h"

namespace pivotscale {
namespace {

TEST(FlatHash, InsertFind) {
  FlatHashMap m;
  m.Insert(5, 100);
  m.Insert(7, 200);
  EXPECT_EQ(m.Find(5), 100u);
  EXPECT_EQ(m.Find(7), 200u);
  EXPECT_EQ(m.Find(6), FlatHashMap::kNotFound);
  EXPECT_EQ(m.size(), 2u);
}

TEST(FlatHash, ClearForgetsEverything) {
  FlatHashMap m;
  for (std::uint32_t i = 0; i < 100; ++i) m.Insert(i, i * 10);
  m.Clear();
  EXPECT_EQ(m.size(), 0u);
  for (std::uint32_t i = 0; i < 100; ++i)
    EXPECT_EQ(m.Find(i), FlatHashMap::kNotFound) << i;
}

TEST(FlatHash, ReusableAfterClear) {
  FlatHashMap m;
  for (int round = 0; round < 50; ++round) {
    m.Clear();
    for (std::uint32_t i = 0; i < 64; ++i)
      m.Insert(i * 3 + round, i);
    for (std::uint32_t i = 0; i < 64; ++i)
      EXPECT_EQ(m.Find(i * 3 + round), i);
  }
}

TEST(FlatHash, GrowthPreservesEntries) {
  FlatHashMap m;  // starts at capacity 16; inserting 1000 forces growth
  for (std::uint32_t i = 0; i < 1000; ++i) m.Insert(i * 7 + 1, i);
  EXPECT_EQ(m.size(), 1000u);
  for (std::uint32_t i = 0; i < 1000; ++i)
    EXPECT_EQ(m.Find(i * 7 + 1), i) << i;
}

TEST(FlatHash, ReserveAvoidsLaterGrowth) {
  FlatHashMap m;
  m.Reserve(500);
  const std::size_t bytes_before = m.HeapBytes();
  for (std::uint32_t i = 0; i < 500; ++i) m.Insert(i, i);
  EXPECT_EQ(m.HeapBytes(), bytes_before);
}

TEST(FlatHash, AdversarialCollisions) {
  // Keys spaced by the table capacity collide under any masked hash;
  // linear probing must still find them all.
  FlatHashMap m;
  m.Reserve(64);
  std::vector<std::uint32_t> keys;
  for (std::uint32_t i = 0; i < 40; ++i) keys.push_back(i * 128);
  for (std::uint32_t i = 0; i < keys.size(); ++i) m.Insert(keys[i], i);
  for (std::uint32_t i = 0; i < keys.size(); ++i)
    EXPECT_EQ(m.Find(keys[i]), i);
  EXPECT_EQ(m.Find(13), FlatHashMap::kNotFound);
}

TEST(FlatHash, RandomizedAgainstStdMap) {
  Rng rng(1234);
  FlatHashMap m;
  std::map<std::uint32_t, std::uint32_t> reference;
  for (int round = 0; round < 20; ++round) {
    m.Clear();
    reference.clear();
    const int inserts = 1 + static_cast<int>(rng.Below(300));
    for (int i = 0; i < inserts; ++i) {
      const auto key = static_cast<std::uint32_t>(rng.Below(1 << 20));
      if (reference.count(key)) continue;
      const auto value = static_cast<std::uint32_t>(rng.Below(1 << 30));
      reference[key] = value;
      m.Insert(key, value);
    }
    for (const auto& [key, value] : reference)
      EXPECT_EQ(m.Find(key), value);
    for (int probe = 0; probe < 50; ++probe) {
      const auto key = static_cast<std::uint32_t>(rng.Below(1 << 20));
      const auto it = reference.find(key);
      EXPECT_EQ(m.Find(key), it == reference.end() ? FlatHashMap::kNotFound
                                                   : it->second);
    }
  }
}

}  // namespace
}  // namespace pivotscale
