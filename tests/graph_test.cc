// Tests for the graph substrate: CSR construction, invariants,
// directionalization, and file I/O.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "graph/builder.h"
#include "graph/dag.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "order/degree_order.h"

namespace pivotscale {
namespace {

Graph Triangle() { return BuildGraph({{0, 1}, {1, 2}, {0, 2}}); }

// ---------------------------------------------------------------- builder

TEST(Builder, TriangleBasics) {
  const Graph g = Triangle();
  EXPECT_EQ(g.NumNodes(), 3u);
  EXPECT_EQ(g.NumUndirectedEdges(), 3u);
  EXPECT_EQ(g.NumDirectedEdges(), 6u);
  for (NodeId u = 0; u < 3; ++u) EXPECT_EQ(g.Degree(u), 2u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));  // symmetrized
  EXPECT_TRUE(g.undirected());
}

TEST(Builder, RemovesSelfLoops) {
  const Graph g = BuildGraph({{0, 0}, {0, 1}, {1, 1}});
  EXPECT_EQ(g.NumUndirectedEdges(), 1u);
  EXPECT_FALSE(g.HasEdge(0, 0));
}

TEST(Builder, RemovesDuplicates) {
  const Graph g = BuildGraph({{0, 1}, {0, 1}, {1, 0}, {0, 1}});
  EXPECT_EQ(g.NumUndirectedEdges(), 1u);
  EXPECT_EQ(g.Degree(0), 1u);
  EXPECT_EQ(g.Degree(1), 1u);
}

TEST(Builder, AdjacencySorted) {
  const Graph g = BuildGraph({{0, 5}, {0, 2}, {0, 9}, {0, 1}});
  const auto nbrs = g.Neighbors(0);
  for (std::size_t i = 1; i < nbrs.size(); ++i)
    EXPECT_LT(nbrs[i - 1], nbrs[i]);
}

TEST(Builder, ExplicitNodeCountAddsIsolated) {
  const Graph g = BuildUndirected({{0, 1}}, 10);
  EXPECT_EQ(g.NumNodes(), 10u);
  EXPECT_EQ(g.Degree(9), 0u);
}

TEST(Builder, EndpointBeyondNodeCountThrows) {
  EXPECT_THROW(BuildUndirected({{0, 10}}, 5), std::invalid_argument);
}

TEST(Builder, EmptyGraph) {
  const Graph g = BuildGraph({});
  EXPECT_EQ(g.NumNodes(), 0u);
  EXPECT_EQ(g.NumDirectedEdges(), 0u);
  EXPECT_EQ(g.MaxDegree(), 0u);
}

TEST(Builder, OffsetsConsistent) {
  const Graph g = BuildGraph(Rmat(8, 4.0, 7));
  const auto& offsets = g.offsets();
  ASSERT_EQ(offsets.size(), g.NumNodes() + 1u);
  EXPECT_EQ(offsets.front(), 0u);
  EXPECT_EQ(offsets.back(), g.NumDirectedEdges());
  for (std::size_t i = 1; i < offsets.size(); ++i)
    EXPECT_LE(offsets[i - 1], offsets[i]);
}

TEST(Builder, SymmetryInvariant) {
  const Graph g = BuildGraph(Rmat(8, 4.0, 11));
  for (NodeId u = 0; u < g.NumNodes(); ++u)
    for (NodeId v : g.Neighbors(u)) EXPECT_TRUE(g.HasEdge(v, u));
}

TEST(Builder, AverageDegree) {
  const Graph g = Triangle();
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 1.0);  // 3 edges / 3 vertices
}

TEST(Graph, MaxDegree) {
  const Graph g = BuildGraph(StarGraph(6));
  EXPECT_EQ(g.MaxDegree(), 5u);
}

TEST(Graph, MismatchedCsrArraysThrow) {
  std::vector<EdgeId> offsets = {0, 2};
  std::vector<NodeId> neighbors = {1};
  EXPECT_THROW(Graph(std::move(offsets), std::move(neighbors), true),
               std::invalid_argument);
}

// ---------------------------------------------------------------- dag

TEST(Dag, IsPermutationAcceptsAndRejects) {
  EXPECT_TRUE(IsPermutation(std::vector<NodeId>{2, 0, 1}));
  EXPECT_FALSE(IsPermutation(std::vector<NodeId>{0, 0, 1}));
  EXPECT_FALSE(IsPermutation(std::vector<NodeId>{0, 3, 1}));
  EXPECT_TRUE(IsPermutation(std::vector<NodeId>{}));
}

TEST(Dag, EdgeCountHalved) {
  const Graph g = BuildGraph(Rmat(8, 6.0, 3));
  const Ordering order = DegreeOrdering(g);
  const Graph dag = Directionalize(g, order.ranks);
  EXPECT_EQ(dag.NumDirectedEdges(), g.NumUndirectedEdges());
  EXPECT_FALSE(dag.undirected());
}

TEST(Dag, EdgesPointLowToHighRank) {
  const Graph g = BuildGraph(Rmat(7, 6.0, 5));
  const Ordering order = DegreeOrdering(g);
  const Graph dag = Directionalize(g, order.ranks);
  for (NodeId u = 0; u < dag.NumNodes(); ++u)
    for (NodeId v : dag.Neighbors(u))
      EXPECT_LT(order.ranks[u], order.ranks[v]);
}

TEST(Dag, FigureTwoExample) {
  // The paper's Figure 2: a 7-vertex graph directionalized by degree order.
  // Vertex 0 has degree 4 (neighbors 1, 2, 3, 4 in the figure's spirit);
  // here we just verify out-degrees sum to |E| and acyclicity via ranks.
  const Graph g = BuildGraph(
      {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}, {3, 4}, {4, 5}, {5, 6}});
  const Ordering order = DegreeOrdering(g);
  const Graph dag = Directionalize(g, order.ranks);
  EdgeId total_out = 0;
  for (NodeId u = 0; u < dag.NumNodes(); ++u) total_out += dag.Degree(u);
  EXPECT_EQ(total_out, g.NumUndirectedEdges());
}

TEST(Dag, RejectsBadRanks) {
  const Graph g = Triangle();
  EXPECT_THROW(Directionalize(g, std::vector<NodeId>{0, 0, 1}),
               std::invalid_argument);
  EXPECT_THROW(Directionalize(g, std::vector<NodeId>{0, 1}),
               std::invalid_argument);
}

TEST(Dag, CompleteGraphMaxOutDegree) {
  // K_5 under any total order: out-degrees are 4,3,2,1,0.
  const Graph g = BuildGraph(CompleteGraph(5));
  const Graph dag = Directionalize(g, std::vector<NodeId>{0, 1, 2, 3, 4});
  EXPECT_EQ(MaxOutDegree(dag), 4u);
}

// ---------------------------------------------------------------- io

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "pivotscale_io_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

TEST_F(IoTest, EdgeListRoundTrip) {
  const EdgeList edges = Rmat(7, 4.0, 9);
  WriteEdgeList(Path("g.el"), edges);
  const EdgeList back = ReadEdgeList(Path("g.el"));
  EXPECT_EQ(edges, back);
}

TEST_F(IoTest, EdgeListSkipsComments) {
  {
    std::FILE* f = std::fopen(Path("c.el").c_str(), "w");
    std::fputs("# comment\n% other comment\n0 1\n\n2 3\n", f);
    std::fclose(f);
  }
  const EdgeList edges = ReadEdgeList(Path("c.el"));
  EXPECT_EQ(edges, (EdgeList{{0, 1}, {2, 3}}));
}

TEST_F(IoTest, MalformedLineThrows) {
  {
    std::FILE* f = std::fopen(Path("bad.el").c_str(), "w");
    std::fputs("0 x\n", f);
    std::fclose(f);
  }
  EXPECT_THROW(ReadEdgeList(Path("bad.el")), std::runtime_error);
}

TEST_F(IoTest, MissingFileThrows) {
  EXPECT_THROW(ReadEdgeList(Path("nope.el")), std::runtime_error);
}

TEST_F(IoTest, BinaryRoundTrip) {
  const Graph g = BuildGraph(Rmat(8, 5.0, 13));
  WriteBinaryGraph(Path("g.psg"), g);
  const Graph back = ReadBinaryGraph(Path("g.psg"));
  EXPECT_EQ(back.NumNodes(), g.NumNodes());
  EXPECT_EQ(back.NumDirectedEdges(), g.NumDirectedEdges());
  EXPECT_EQ(back.undirected(), g.undirected());
  EXPECT_EQ(back.offsets(), g.offsets());
  EXPECT_EQ(back.neighbor_array(), g.neighbor_array());
}

TEST_F(IoTest, BinaryRejectsWrongMagic) {
  {
    std::FILE* f = std::fopen(Path("bad.psg").c_str(), "w");
    std::fputs("NOPE", f);
    std::fclose(f);
  }
  EXPECT_THROW(ReadBinaryGraph(Path("bad.psg")), std::runtime_error);
}

TEST_F(IoTest, LoadGraphDispatchesOnExtension) {
  const Graph g = BuildGraph(CompleteGraph(4));
  WriteBinaryGraph(Path("g.psg"), g);
  WriteEdgeList(Path("g.el"), CompleteGraph(4));
  const Graph from_bin = LoadGraph(Path("g.psg"));
  const Graph from_text = LoadGraph(Path("g.el"));
  EXPECT_EQ(from_bin.NumUndirectedEdges(), 6u);
  EXPECT_EQ(from_text.NumUndirectedEdges(), 6u);
}

}  // namespace
}  // namespace pivotscale
