// Tests for the counting-mode extensions: kAllUpToK and the
// early-termination ablation toggle.
#include <gtest/gtest.h>

#include <tuple>

#include "graph/builder.h"
#include "graph/generators.h"
#include "pivot/count.h"
#include "test_helpers.h"
#include "util/binomial.h"

namespace pivotscale {
namespace {

using testing_helpers::BruteForceCount;
using testing_helpers::MakeDag;

// ---------------------------------------------------------------- kAllUpToK

TEST(AllUpToK, MatchesAllKPrefix) {
  EdgeList edges = GnM(80, 500, 3);
  PlantCliques(&edges, 80, 2, 8, 12, 4);
  const Graph g = BuildGraph(std::move(edges));
  const Graph dag = MakeDag(g, OrderingKind::kCore);

  CountOptions all;
  all.mode = CountMode::kAllK;
  const CountResult full = CountCliques(dag, all);

  CountOptions upto;
  upto.mode = CountMode::kAllUpToK;
  upto.k = 6;
  const CountResult capped = CountCliques(dag, upto);

  for (std::uint32_t s = 1; s <= 6; ++s)
    EXPECT_EQ(capped.per_size[s], full.per_size[s]) << s;
  EXPECT_EQ(capped.total, full.per_size[6]);
}

TEST(AllUpToK, DoesLessWorkThanAllK) {
  // The cap is a pruning rule: on a graph with cliques far beyond k, the
  // capped mode must scan fewer adjacency entries.
  const Graph g = BuildGraph(CompleteGraph(40));
  const Graph dag = MakeDag(g, OrderingKind::kDegree);
  CountOptions all;
  all.mode = CountMode::kAllK;
  all.collect_op_stats = true;
  CountOptions upto = all;
  upto.mode = CountMode::kAllUpToK;
  upto.k = 3;
  EXPECT_LE(CountCliques(dag, upto).ops.edge_ops,
            CountCliques(dag, all).ops.edge_ops);
}

TEST(AllUpToK, CompleteGraphClosedForm) {
  const Graph g = BuildGraph(CompleteGraph(15));
  const Graph dag = MakeDag(g, OrderingKind::kDegree);
  CountOptions upto;
  upto.mode = CountMode::kAllUpToK;
  upto.k = 7;
  const CountResult result = CountCliques(dag, upto);
  for (std::uint32_t s = 1; s <= 7; ++s)
    EXPECT_EQ(result.per_size[s].value(), BinomialChoose(15, s)) << s;
}

// ------------------------------------------------------ early termination

using SweepParam = std::tuple<int, double, int>;

class EarlyTermSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(EarlyTermSweep, DisablingChangesNothingButWork) {
  const auto [n, p, k] = GetParam();
  const Graph g = BuildGraph(
      ErdosRenyi(static_cast<NodeId>(n), p, /*seed=*/0xabc + n));
  if (g.NumNodes() == 0) GTEST_SKIP();
  const Graph dag = MakeDag(g, OrderingKind::kCore);

  CountOptions with_term;
  with_term.k = static_cast<std::uint32_t>(k);
  with_term.collect_op_stats = true;
  CountOptions without_term = with_term;
  without_term.early_termination = false;

  const CountResult a = CountCliques(dag, with_term);
  const CountResult b = CountCliques(dag, without_term);
  EXPECT_EQ(a.total, b.total);
  EXPECT_EQ(a.total.value(),
            static_cast<uint128>(
                BruteForceCount(g, static_cast<std::uint32_t>(k))));
  // Early termination can only reduce work.
  EXPECT_LE(a.ops.edge_ops, b.ops.edge_ops);
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, EarlyTermSweep,
                         ::testing::Combine(::testing::Values(15, 25, 35),
                                            ::testing::Values(0.3, 0.6),
                                            ::testing::Values(3, 4, 5)));

TEST(EarlyTerm, PrunesHardOnBranchyGraph) {
  // On a dense random graph the recursion branches through many required
  // vertices; with early termination a k=3 count exits each branch as soon
  // as r hits 3, skipping the deep maximal-clique exploration.
  const Graph g = BuildGraph(ErdosRenyi(80, 0.4, 99));
  const Graph dag = MakeDag(g, OrderingKind::kCore);
  CountOptions with_term;
  with_term.k = 3;
  with_term.collect_op_stats = true;
  CountOptions without_term = with_term;
  without_term.early_termination = false;
  const CountResult a = CountCliques(dag, with_term);
  const CountResult b = CountCliques(dag, without_term);
  EXPECT_EQ(a.total, b.total);
  // Termination removes a solid fraction of the calls (the subtrees below
  // every r == k point).
  EXPECT_LT(static_cast<double>(a.ops.calls),
            0.9 * static_cast<double>(b.ops.calls));
}

TEST(EarlyTerm, NoOpOnPureCliques) {
  // On K_n the recursion is a single all-pivot chain per root: r never
  // grows past 1, so early termination has nothing to prune and both
  // variants do identical work (this is why pivoting handles huge cliques
  // in linear time regardless of k).
  const Graph g = BuildGraph(CompleteGraph(40));
  const Graph dag = MakeDag(g, OrderingKind::kDegree);
  CountOptions with_term;
  with_term.k = 5;
  with_term.collect_op_stats = true;
  CountOptions without_term = with_term;
  without_term.early_termination = false;
  const auto with_calls = CountCliques(dag, with_term).ops.calls;
  const auto without_calls = CountCliques(dag, without_term).ops.calls;
  // The only prunable work is the short-root chains: a root with
  // out-degree d < k-1 cannot reach k, so its (d+1)-call chain collapses to
  // one call, saving sum_{d=1}^{k-2} d = 6 calls for k=5. The cliques'
  // own pivot chains are untouched.
  EXPECT_EQ(without_calls - with_calls, 6u);
}

}  // namespace
}  // namespace pivotscale
