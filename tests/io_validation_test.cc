// Regression tests for the input-validation fixes in graph/io.cc: text
// edge lists must reject vertex ids beyond the NodeId range (previously a
// silent truncation), and binary .psg headers must be validated before the
// CSR arrays are trusted downstream.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/io.h"

namespace pivotscale {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(::testing::TempDir() + "/" + name) {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

  void WriteText(const std::string& text) const {
    std::ofstream out(path_);
    out << text;
  }

  void WriteBytes(const std::string& bytes) const {
    std::ofstream out(path_, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

 private:
  std::string path_;
};

// --------------------------------------------------------- text edge list

TEST(ReadEdgeList, AcceptsMaxNodeId) {
  TempFile f("edge_list_max_id.el");
  const std::uint64_t max_id = std::numeric_limits<NodeId>::max();
  f.WriteText("0 " + std::to_string(max_id) + "\n");
  const EdgeList edges = ReadEdgeList(f.path());
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].second, std::numeric_limits<NodeId>::max());
}

TEST(ReadEdgeList, RejectsIdBeyondNodeIdRange) {
  // Pre-fix this silently truncated 2^32 to vertex 0 and counted cliques
  // on the wrong graph.
  TempFile f("edge_list_overflow.el");
  f.WriteText("# comment\n0 1\n1 4294967296\n");
  try {
    ReadEdgeList(f.path());
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(":3"), std::string::npos) << what;  // line number
    EXPECT_NE(what.find("4294967296"), std::string::npos) << what;
  }
}

TEST(ReadEdgeList, RejectsOverflowInFirstColumn) {
  TempFile f("edge_list_overflow_u.el");
  f.WriteText("18446744073709551615 0\n");
  EXPECT_THROW(ReadEdgeList(f.path()), std::runtime_error);
}

// --------------------------------------------------------- binary graphs

// Serializes a .psg image by hand so each header/body field can be
// corrupted independently.
std::string PsgBytes(std::uint64_t num_nodes, std::uint64_t num_entries,
                     const std::vector<std::uint64_t>& offsets,
                     const std::vector<std::uint32_t>& neighbors) {
  std::string out = "PSG1";
  out.push_back(1);  // undirected
  const auto append = [&out](const void* p, std::size_t bytes) {
    out.append(static_cast<const char*>(p), bytes);
  };
  append(&num_nodes, sizeof(num_nodes));
  append(&num_entries, sizeof(num_entries));
  append(offsets.data(), offsets.size() * sizeof(std::uint64_t));
  append(neighbors.data(), neighbors.size() * sizeof(std::uint32_t));
  return out;
}

TEST(ReadBinaryGraph, RoundTripsValidGraph) {
  const Graph g = BuildGraph(ErdosRenyi(60, 0.1, 5));
  TempFile f("roundtrip.psg");
  WriteBinaryGraph(f.path(), g);
  const Graph back = ReadBinaryGraph(f.path());
  EXPECT_EQ(back.NumNodes(), g.NumNodes());
  EXPECT_EQ(back.NumDirectedEdges(), g.NumDirectedEdges());
  EXPECT_EQ(back.offsets(), g.offsets());
  EXPECT_EQ(back.neighbor_array(), g.neighbor_array());
}

TEST(ReadBinaryGraph, RejectsDecreasingOffsets) {
  // 3 nodes, 4 entries, offsets dip at node 1 — pre-fix this produced a
  // Graph whose Degree() underflowed to ~2^64.
  TempFile f("decreasing.psg");
  f.WriteBytes(PsgBytes(3, 4, {0, 3, 1, 4}, {1, 2, 0, 0}));
  EXPECT_THROW(ReadBinaryGraph(f.path()), std::runtime_error);
}

TEST(ReadBinaryGraph, RejectsOffsetsNotCoveringEntries) {
  // offsets[num_nodes] != num_entries.
  TempFile f("short_span.psg");
  f.WriteBytes(PsgBytes(3, 4, {0, 1, 2, 3}, {1, 2, 0, 0}));
  EXPECT_THROW(ReadBinaryGraph(f.path()), std::runtime_error);
}

TEST(ReadBinaryGraph, RejectsNonzeroFirstOffset) {
  TempFile f("nonzero_first.psg");
  f.WriteBytes(PsgBytes(3, 4, {1, 2, 3, 4}, {1, 2, 0, 0}));
  EXPECT_THROW(ReadBinaryGraph(f.path()), std::runtime_error);
}

TEST(ReadBinaryGraph, RejectsOutOfRangeNeighbor) {
  // Neighbor id 7 with only 3 nodes — pre-fix this read out of bounds in
  // every downstream Degree()/Neighbors() indexed by it.
  TempFile f("bad_neighbor.psg");
  f.WriteBytes(PsgBytes(3, 4, {0, 2, 3, 4}, {1, 2, 7, 0}));
  EXPECT_THROW(ReadBinaryGraph(f.path()), std::runtime_error);
}

TEST(ReadBinaryGraph, RejectsHeaderBodySizeMismatch) {
  // Header promises 100 entries but the body holds 4: must error before
  // allocating or reading.
  std::string bytes = PsgBytes(3, 4, {0, 2, 3, 4}, {1, 2, 0, 0});
  const std::uint64_t lying_entries = 100;
  std::memcpy(bytes.data() + 4 + 1 + 8, &lying_entries,
              sizeof(lying_entries));
  TempFile f("lying_header.psg");
  f.WriteBytes(bytes);
  EXPECT_THROW(ReadBinaryGraph(f.path()), std::runtime_error);
}

TEST(ReadBinaryGraph, RejectsNodeCountBeyondNodeIdRange) {
  std::string bytes = PsgBytes(3, 4, {0, 2, 3, 4}, {1, 2, 0, 0});
  const std::uint64_t huge_nodes = std::uint64_t{1} << 33;
  std::memcpy(bytes.data() + 4 + 1, &huge_nodes, sizeof(huge_nodes));
  TempFile f("huge_nodes.psg");
  f.WriteBytes(bytes);
  EXPECT_THROW(ReadBinaryGraph(f.path()), std::runtime_error);
}

TEST(ReadBinaryGraph, StillRejectsBadMagicAndTruncation) {
  TempFile f("bad_magic.psg");
  f.WriteBytes("NOPE");
  EXPECT_THROW(ReadBinaryGraph(f.path()), std::runtime_error);
  TempFile g("truncated.psg");
  g.WriteBytes(std::string("PSG1\x01", 5));
  EXPECT_THROW(ReadBinaryGraph(g.path()), std::runtime_error);
}

}  // namespace
}  // namespace pivotscale
