// TCP serving layer tests: the shared line framer (CRLF stripping,
// oversized-line shedding, arbitrary chunking, fuzz-lite garbage
// streams), the bounded-admission worker pool (deterministic shed,
// deadline checks at batch-group boundaries), and a loopback NetServer
// driven by real concurrent sockets — counts bit-identical to standalone
// runs, overloaded batches shed once --queue-depth is exceeded,
// half-closed connections still get their responses, and drain flushes
// everything.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "graph/builder.h"
#include "graph/generators.h"
#include "net/event_loop.h"
#include "net/framer.h"
#include "net/worker_pool.h"
#include "pivot/pivotscale.h"
#include "service/protocol.h"
#include "service/query_engine.h"
#include "store/artifact.h"
#include "util/json_writer.h"
#include "util/rng.h"
#include "util/telemetry.h"

namespace pivotscale {
namespace {

// ----------------------------------------------------------------- framer

std::vector<FramedLine> FeedAll(ReadLineFramer& framer,
                                const std::string& bytes,
                                std::size_t chunk) {
  std::vector<FramedLine> lines;
  for (std::size_t pos = 0; pos < bytes.size(); pos += chunk)
    framer.Feed(bytes.data() + pos, std::min(chunk, bytes.size() - pos),
                &lines);
  return lines;
}

TEST(Framer, SplitsLinesAndStripsCr) {
  for (std::size_t chunk : {std::size_t{1}, std::size_t{3},
                            std::size_t{4096}}) {
    ReadLineFramer framer;
    const auto lines =
        FeedAll(framer, "alpha\r\nbeta\n\r\n\ngamma\n", chunk);
    ASSERT_EQ(lines.size(), 5u) << "chunk " << chunk;
    EXPECT_EQ(lines[0].text, "alpha");  // CRLF client
    EXPECT_EQ(lines[1].text, "beta");
    EXPECT_EQ(lines[2].text, "");  // "\r\n" is a blank (flush) line
    EXPECT_EQ(lines[3].text, "");
    EXPECT_EQ(lines[4].text, "gamma");
    for (const FramedLine& line : lines) EXPECT_FALSE(line.oversized);
  }
}

TEST(Framer, FinishFlushesFinalUnterminatedLine) {
  ReadLineFramer framer;
  std::vector<FramedLine> lines;
  framer.Feed("one\ntwo", 7, &lines);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(framer.buffered_bytes(), 3u);
  FramedLine last;
  ASSERT_TRUE(framer.Finish(&last));
  EXPECT_EQ(last.text, "two");
  EXPECT_FALSE(framer.Finish(&last));  // nothing pending anymore
}

TEST(Framer, OversizedLineIsDiscardedNotBuffered) {
  ReadLineFramer framer(8);
  const std::string big(1 << 16, 'x');
  std::vector<FramedLine> lines;
  framer.Feed(big.data(), big.size(), &lines);
  EXPECT_TRUE(lines.empty());
  // The whole 64 KiB line is being dropped, not accumulated.
  EXPECT_EQ(framer.buffered_bytes(), 0u);
  framer.Feed("tail\nok\n", 8, &lines);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_TRUE(lines[0].oversized);
  EXPECT_TRUE(lines[0].text.empty());
  // Framing resumes cleanly on the next line.
  EXPECT_FALSE(lines[1].oversized);
  EXPECT_EQ(lines[1].text, "ok");

  // An oversized final line without a terminator surfaces via Finish.
  framer.Feed(big.data(), big.size(), &lines);
  FramedLine last;
  ASSERT_TRUE(framer.Finish(&last));
  EXPECT_TRUE(last.oversized);
}

TEST(Framer, ExactLimitLineStillParses) {
  ReadLineFramer framer(5);
  std::vector<FramedLine> lines;
  framer.Feed("12345\n123456\n", 13, &lines);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].text, "12345");
  EXPECT_TRUE(lines[1].oversized);
}

// Fuzz-lite: random byte soup (garbage, truncated JSON, interleaved CRLF,
// oversized runs) through the framer + ParseRequest must yield exactly
// one classification per line — parsed or error — with no exception other
// than the contracted std::runtime_error escaping.
TEST(Framer, FuzzLiteGarbageStreamsNeverEscape) {
  const char* fragments[] = {
      "{\"id\":1,\"graph\":\"g.psx\",\"k\":4}",
      "{\"id\":2,\"graph\":\"g.psx\"",  // truncated
      "{\"id\":-3,\"graph\":\"g.psx\"}",
      "\xff\xfe garbage \x01\x02",
      "{\"graph\":\"g.psx\",\"k\":0}",
      "not json at all",
      "{\"id\":7,\"graph\":\"g.psx\",\"deadline_ms\":12}",
      "",
  };
  Rng rng(1234);
  for (int round = 0; round < 50; ++round) {
    std::string stream;
    for (int piece = 0; piece < 40; ++piece) {
      switch (rng.Below(4)) {
        case 0:
          stream += fragments[rng.Below(8)];
          break;
        case 1: {  // random bytes, possibly containing terminators
          const std::size_t len = rng.Below(64);
          for (std::size_t b = 0; b < len; ++b)
            stream += static_cast<char>(rng.Below(256));
          break;
        }
        case 2:
          stream += std::string(rng.Below(3000), 'z');  // oversized runs
          break;
        default:
          stream += rng.Chance(0.5) ? "\r\n" : "\n";
          break;
      }
    }
    ReadLineFramer framer(1024);
    std::vector<FramedLine> lines =
        FeedAll(framer, stream, 1 + rng.Below(97));
    FramedLine last;
    if (framer.Finish(&last)) lines.push_back(std::move(last));
    for (const FramedLine& line : lines) {
      if (line.text.empty() && !line.oversized) continue;  // flush marker
      EXPECT_LE(line.text.size(), 1024u);
      std::string response;
      try {
        const ProtocolRequest req = ParseRequest(line.text);
        response = SerializeResponse(req.id, ServiceResult{});
      } catch (const std::runtime_error& e) {
        response = SerializeError(-1, e.what());
      }
      // Every response, including ones embedding hostile bytes, must be
      // valid JSON on one line.
      EXPECT_NO_THROW(ParseJson(response));
      EXPECT_EQ(response.find('\n'), std::string::npos);
    }
  }
}

// --------------------------------------------------------------- protocol

TEST(ProtocolId, MissingIdIsAParseError) {
  EXPECT_THROW(ParseRequest("{\"graph\":\"g.psx\",\"k\":4}"),
               std::runtime_error);
  try {
    ParseRequest("{\"graph\":\"g.psx\",\"k\":4}");
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("id"), std::string::npos);
  }
}

TEST(ProtocolId, NegativeIdIsAParseError) {
  EXPECT_THROW(ParseRequest("{\"id\":-1,\"graph\":\"g.psx\"}"),
               std::runtime_error);
  EXPECT_EQ(ParseRequest("{\"id\":0,\"graph\":\"g.psx\"}").id, 0);
}

TEST(ProtocolDeadline, ParsesAndValidatesDeadline) {
  const ProtocolRequest req =
      ParseRequest("{\"id\":4,\"graph\":\"g.psx\",\"deadline_ms\":250}");
  EXPECT_EQ(req.deadline_ms, 250);
  EXPECT_EQ(ParseRequest("{\"id\":4,\"graph\":\"g.psx\"}").deadline_ms,
            -1);
  EXPECT_THROW(
      ParseRequest("{\"id\":4,\"graph\":\"g.psx\",\"deadline_ms\":-5}"),
      std::runtime_error);
}

// ---------------------------------------------------- worker pool / batch

class NetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EdgeList edges = Rmat(9, 6.0, 77);
    PlantCliques(&edges, 256, 6, 5, 9, 78);
    graph_ = BuildGraph(std::move(edges));
    artifact_path_ = ::testing::TempDir() + "/net_test.psx";
    WriteArtifact(artifact_path_, BuildArtifact(graph_));
  }
  void TearDown() override { std::remove(artifact_path_.c_str()); }

  BigCount Standalone(std::uint32_t k) {
    return CountKCliquesSimple(graph_, k);
  }

  Graph graph_;
  std::string artifact_path_;
};

NetRequest MakeRequest(std::int64_t id, const std::string& graph,
                       std::uint32_t k) {
  NetRequest req;
  req.parsed = true;
  req.id = id;
  req.query.graph = graph;
  req.query.k = k;
  return req;
}

TEST_F(NetTest, ServeNetBatchPreservesOrderAndHonorsDeadlines) {
  QueryEngine engine;
  TelemetryRegistry telemetry;
  std::vector<NetRequest> requests;
  requests.push_back(MakeRequest(10, artifact_path_, 4));
  NetRequest bad;
  bad.id = 11;
  bad.parse_error = "unknown request key \"kk\"";
  requests.push_back(std::move(bad));
  NetRequest expired = MakeRequest(12, artifact_path_, 5);
  expired.deadline = std::chrono::steady_clock::now() -
                     std::chrono::milliseconds(1);
  requests.push_back(std::move(expired));
  requests.push_back(MakeRequest(13, artifact_path_, 5));

  const std::string block = ServeNetBatch(engine, requests, &telemetry);
  std::vector<std::string> lines;
  std::size_t start = 0;
  for (std::size_t nl = block.find('\n'); nl != std::string::npos;
       nl = block.find('\n', start)) {
    lines.push_back(block.substr(start, nl - start));
    start = nl + 1;
  }
  ASSERT_EQ(lines.size(), 4u);

  const JsonValue ok = ParseJson(lines[0]);
  EXPECT_EQ(ok.Find("id")->number, 10);
  EXPECT_EQ(ok.Find("count")->string_value, Standalone(4).ToString());
  const JsonValue parse_err = ParseJson(lines[1]);
  EXPECT_EQ(parse_err.Find("id")->number, 11);
  EXPECT_FALSE(parse_err.Find("ok")->bool_value);
  const JsonValue timed_out = ParseJson(lines[2]);
  EXPECT_EQ(timed_out.Find("error")->string_value, "deadline exceeded");
  const JsonValue ok2 = ParseJson(lines[3]);
  EXPECT_EQ(ok2.Find("count")->string_value, Standalone(5).ToString());

  EXPECT_EQ(telemetry.Counter("net.timed_out"), 1u);
  EXPECT_EQ(telemetry.Counter("net.requests"), 4u);
}

TEST_F(NetTest, WorkerPoolShedsDeterministicallyWhenQueueFull) {
  QueryEngine engine;
  // Completion callback blocks, pinning the single worker: admission
  // state becomes fully deterministic.
  std::mutex mutex;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> entered{0};
  std::atomic<int> completed{0};
  WorkerPoolOptions options;
  options.workers = 1;
  options.queue_depth = 1;
  WorkerPool pool(&engine, options,
                  [&](std::uint64_t, std::string) {
                    ++entered;
                    std::unique_lock<std::mutex> lock(mutex);
                    cv.wait(lock, [&] { return release; });
                    ++completed;
                  });

  NetBatch first;
  first.connection_id = 1;
  first.requests.push_back(MakeRequest(1, artifact_path_, 3));
  ASSERT_TRUE(pool.TrySubmit(std::move(first)));
  // Wait until the worker has dequeued batch 1 and is pinned inside the
  // callback, so the queue itself is empty again.
  while (entered.load() == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  NetBatch second;
  second.connection_id = 2;
  second.requests.push_back(MakeRequest(2, artifact_path_, 3));
  NetBatch third;
  third.connection_id = 3;
  third.requests.push_back(MakeRequest(3, artifact_path_, 3));
  // Worker busy + queue depth 1: one queues, the next must shed.
  bool second_in = pool.TrySubmit(std::move(second));
  bool third_in = pool.TrySubmit(std::move(third));
  EXPECT_TRUE(second_in);
  EXPECT_FALSE(third_in);

  {
    std::lock_guard<std::mutex> lock(mutex);
    release = true;
  }
  cv.notify_all();
  pool.Drain();
  EXPECT_EQ(completed.load(), 2);
  EXPECT_GE(pool.queue_high_water(), 1u);
}

// ------------------------------------------------------- loopback server

// Blocking client helper: connect, send, optionally half-close, read
// `expect_lines` non-blank response lines.
class LoopbackClient {
 public:
  explicit LoopbackClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~LoopbackClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool connected() const { return connected_; }

  void Send(const std::string& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + off,
                               bytes.size() - off, MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      off += static_cast<std::size_t>(n);
    }
  }

  void HalfClose() { ::shutdown(fd_, SHUT_WR); }

  std::vector<std::string> ReadLines(std::size_t expect_lines) {
    std::vector<std::string> result;
    char buf[4096];
    std::vector<FramedLine> lines;
    while (result.size() < expect_lines) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) break;
      lines.clear();
      framer_.Feed(buf, static_cast<std::size_t>(n), &lines);
      for (FramedLine& line : lines)
        if (!line.text.empty()) result.push_back(std::move(line.text));
    }
    return result;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  ReadLineFramer framer_;
};

std::string RequestLine(std::int64_t id, const std::string& graph,
                        std::uint32_t k) {
  JsonWriter w;
  w.BeginObject();
  w.Key("id");
  w.Value(id);
  w.Key("graph");
  w.Value(graph);
  w.Key("k");
  w.Value(static_cast<std::uint64_t>(k));
  w.EndObject();
  return w.str() + "\n";
}

class LoopbackServer {
 public:
  LoopbackServer(QueryEngine* engine, NetServerOptions options)
      : server_(engine, std::move(options)) {
    server_.Start();
    thread_ = std::thread([this] { server_.Run(); });
  }
  ~LoopbackServer() { Stop(); }
  void Stop() {
    if (thread_.joinable()) {
      server_.RequestDrain();
      thread_.join();
    }
  }
  std::uint16_t port() const { return server_.port(); }

 private:
  NetServer server_;
  std::thread thread_;
};

TEST_F(NetTest, ConcurrentClientsGetBitIdenticalCounts) {
  QueryEngine engine;
  TelemetryRegistry telemetry;
  NetServerOptions options;
  options.telemetry = &telemetry;
  options.workers = 2;
  std::map<std::uint32_t, std::string> expected;
  for (std::uint32_t k = 3; k <= 8; ++k)
    expected[k] = Standalone(k).ToString();

  {
    LoopbackServer server(&engine, options);
    std::vector<std::thread> clients;
    std::vector<std::string> failures(8);
    for (int c = 0; c < 8; ++c) {
      clients.emplace_back([&, c] {
        LoopbackClient client(server.port());
        if (!client.connected()) {
          failures[c] = "connect failed";
          return;
        }
        std::string payload;
        for (std::uint32_t k = 3; k <= 8; ++k)
          payload += RequestLine(c * 100 + k, artifact_path_, k);
        payload += "\n";
        client.Send(payload);
        const std::vector<std::string> lines = client.ReadLines(6);
        if (lines.size() != 6) {
          failures[c] = "expected 6 responses, got " +
                        std::to_string(lines.size());
          return;
        }
        for (const std::string& line : lines) {
          const JsonValue doc = ParseJson(line);
          if (!doc.Find("ok")->bool_value) {
            failures[c] = "response not ok: " + line;
            return;
          }
          const std::uint32_t k =
              static_cast<std::uint32_t>(doc.Find("k")->number);
          if (doc.Find("count")->string_value != expected[k]) {
            failures[c] = "count mismatch at k=" + std::to_string(k);
            return;
          }
        }
      });
    }
    for (std::thread& t : clients) t.join();
    for (const std::string& failure : failures) EXPECT_EQ(failure, "");
    server.Stop();  // graceful drain must leave nothing behind
  }
  EXPECT_EQ(telemetry.Counter("net.accepted"), 8u);
  EXPECT_EQ(telemetry.Counter("net.requests"), 48u);
  EXPECT_EQ(telemetry.Counter("net.shed"), 0u);
  EXPECT_EQ(telemetry.Gauge("net.active"), 0.0);
}

TEST_F(NetTest, HalfClosedConnectionStillGetsItsResponses) {
  QueryEngine engine;
  LoopbackServer server(&engine, NetServerOptions{});
  LoopbackClient client(server.port());
  ASSERT_TRUE(client.connected());
  // No trailing blank line: EOF (the half-close) must flush the batch.
  client.Send(RequestLine(1, artifact_path_, 4));
  client.HalfClose();
  const std::vector<std::string> lines = client.ReadLines(1);
  ASSERT_EQ(lines.size(), 1u);
  const JsonValue doc = ParseJson(lines[0]);
  EXPECT_TRUE(doc.Find("ok")->bool_value);
  EXPECT_EQ(doc.Find("count")->string_value, Standalone(4).ToString());
}

TEST_F(NetTest, OversizedAndMalformedLinesAnswerPerLineErrors) {
  QueryEngine engine;
  NetServerOptions options;
  options.max_line_bytes = 128;
  LoopbackServer server(&engine, options);
  LoopbackClient client(server.port());
  ASSERT_TRUE(client.connected());
  std::string payload;
  payload += std::string(4096, 'x') + "\n";        // oversized
  payload += "{\"graph\":\"g.psx\",\"k\":4}\n";    // missing id
  payload += RequestLine(3, artifact_path_, 3);    // fine
  payload += "\n";
  client.Send(payload);
  const std::vector<std::string> lines = client.ReadLines(3);
  ASSERT_EQ(lines.size(), 3u);
  const JsonValue oversized = ParseJson(lines[0]);
  EXPECT_FALSE(oversized.Find("ok")->bool_value);
  EXPECT_NE(oversized.Find("error")->string_value.find("exceeds"),
            std::string::npos);
  const JsonValue no_id = ParseJson(lines[1]);
  EXPECT_FALSE(no_id.Find("ok")->bool_value);
  const JsonValue ok = ParseJson(lines[2]);
  EXPECT_TRUE(ok.Find("ok")->bool_value);
  EXPECT_EQ(ok.Find("count")->string_value, Standalone(3).ToString());
}

TEST_F(NetTest, PipelinedOverloadShedsPastQueueDepth) {
  // Cold counting runs keep the single worker busy for milliseconds per
  // batch (cache-bytes 1 evicts the artifact and its memo between the
  // two alternating artifacts), while the I/O thread parses the whole
  // pipelined stream in microseconds — so with queue depth 1 most of the
  // 24 batches must shed, and every request still gets exactly one
  // response.
  const std::string second_path = ::testing::TempDir() + "/net_b.psx";
  EdgeList edges = Rmat(9, 6.0, 91);
  PlantCliques(&edges, 256, 6, 5, 9, 92);
  WriteArtifact(second_path, BuildArtifact(BuildGraph(std::move(edges))));

  TelemetryRegistry telemetry;
  QueryEngineOptions engine_options;
  engine_options.cache_byte_budget = 1;
  QueryEngine engine(engine_options);
  NetServerOptions options;
  options.workers = 1;
  options.queue_depth = 1;
  options.telemetry = &telemetry;
  LoopbackServer server(&engine, options);

  constexpr int kBatches = 24;
  LoopbackClient client(server.port());
  ASSERT_TRUE(client.connected());
  std::string payload;
  for (int b = 0; b < kBatches; ++b) {
    payload += RequestLine(b, b % 2 == 0 ? artifact_path_ : second_path,
                           8);
    payload += "\n";
  }
  client.Send(payload);
  client.HalfClose();
  const std::vector<std::string> lines = client.ReadLines(kBatches);
  std::remove(second_path.c_str());
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kBatches));

  int ok = 0, shed = 0;
  for (const std::string& line : lines) {
    const JsonValue doc = ParseJson(line);
    if (doc.Find("ok")->bool_value) {
      ++ok;
    } else {
      ASSERT_NE(doc.Find("error"), nullptr) << line;
      EXPECT_EQ(doc.Find("error")->string_value, "overloaded");
      ++shed;
    }
  }
  EXPECT_GT(ok, 0);
  EXPECT_GT(shed, 0);
  EXPECT_EQ(ok + shed, kBatches);
  EXPECT_EQ(telemetry.Counter("net.shed"),
            static_cast<std::uint64_t>(shed));
}

TEST_F(NetTest, DeadlineZeroExpiresBeforeCounting) {
  QueryEngine engine;
  TelemetryRegistry telemetry;
  NetServerOptions options;
  options.telemetry = &telemetry;
  LoopbackServer server(&engine, options);
  LoopbackClient client(server.port());
  ASSERT_TRUE(client.connected());
  client.Send("{\"id\":1,\"graph\":\"" + artifact_path_ +
              "\",\"k\":4,\"deadline_ms\":0}\n{\"id\":2,\"graph\":\"" +
              artifact_path_ + "\",\"k\":4}\n\n");
  client.HalfClose();
  const std::vector<std::string> lines = client.ReadLines(2);
  ASSERT_EQ(lines.size(), 2u);
  const JsonValue expired = ParseJson(lines[0]);
  EXPECT_FALSE(expired.Find("ok")->bool_value);
  EXPECT_EQ(expired.Find("error")->string_value, "deadline exceeded");
  const JsonValue served = ParseJson(lines[1]);
  EXPECT_TRUE(served.Find("ok")->bool_value);
  EXPECT_EQ(served.Find("count")->string_value,
            Standalone(4).ToString());
  EXPECT_EQ(telemetry.Counter("net.timed_out"), 1u);
}

}  // namespace
}  // namespace pivotscale
