// Tests for the extension modules: hybrid counting, approximate counting,
// coloring ordering, graph transforms, and the analysis utilities.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "analysis/analysis.h"
#include "approx/approx_count.h"
#include "graph/builder.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "graph/transform.h"
#include "order/coloring_order.h"
#include "pivot/count.h"
#include "pivot/hybrid.h"
#include "test_helpers.h"
#include "util/binomial.h"

namespace pivotscale {
namespace {

using testing_helpers::BruteForceCount;
using testing_helpers::MakeDag;

// ---------------------------------------------------------------- hybrid

TEST(Hybrid, PicksStrategyByK) {
  const Graph g = BuildGraph(ErdosRenyi(100, 0.2, 3));
  HybridConfig config;
  config.pivot_threshold = 8;
  EXPECT_FALSE(CountKCliquesHybrid(g, 4, config).used_pivoting);
  EXPECT_TRUE(CountKCliquesHybrid(g, 8, config).used_pivoting);
  EXPECT_TRUE(CountKCliquesHybrid(g, 12, config).used_pivoting);
}

TEST(Hybrid, BothPathsMatchBruteForce) {
  const Graph g = BuildGraph(ErdosRenyi(30, 0.4, 5));
  HybridConfig config;
  config.pivot_threshold = 4;
  for (std::uint32_t k : {3u, 4u, 5u}) {
    EXPECT_EQ(CountKCliquesHybrid(g, k, config).total.value(),
              static_cast<uint128>(BruteForceCount(g, k)))
        << k;
  }
}

TEST(Hybrid, StrategyStringReflectsPath) {
  const Graph g = BuildGraph(CompleteGraph(10));
  HybridConfig config;
  config.pivot_threshold = 5;
  EXPECT_EQ(CountKCliquesHybrid(g, 3, config).strategy,
            "enumeration(core)");
  EXPECT_NE(CountKCliquesHybrid(g, 7, config).strategy.find("pivotscale"),
            std::string::npos);
}

// ---------------------------------------------------------------- approx

TEST(ApproxCount, FullSamplingIsExact) {
  EdgeList edges = GnM(150, 900, 7);
  PlantCliques(&edges, 150, 2, 6, 10, 8);
  const Graph g = BuildGraph(std::move(edges));
  const Graph dag = MakeDag(g, OrderingKind::kCore);
  CountOptions exact_options;
  exact_options.k = 5;
  const BigCount exact = CountCliques(dag, exact_options).total;

  ApproxCountConfig config;
  config.sample_fraction = 1.0;
  const ApproxCountResult result = ApproxCountKCliques(dag, 5, config);
  EXPECT_NEAR(result.estimate_double, exact.AsDouble(),
              exact.AsDouble() * 1e-9);
  EXPECT_DOUBLE_EQ(result.relative_std_error, 0.0);
  EXPECT_EQ(result.roots_sampled, result.roots_total);
}

TEST(ApproxCount, EstimateWithinToleranceOnSkewedGraph) {
  EdgeList edges = Rmat(12, 8.0, 9);
  PlantCliques(&edges, 4096, 10, 8, 16, 10);
  const Graph g = BuildGraph(std::move(edges));
  const Graph dag = MakeDag(g, OrderingKind::kCore);
  CountOptions exact_options;
  exact_options.k = 6;
  const double exact = CountCliques(dag, exact_options).total.AsDouble();

  ApproxCountConfig config;
  config.sample_fraction = 0.15;
  config.seed = 42;
  const ApproxCountResult result = ApproxCountKCliques(dag, 6, config);
  EXPECT_NEAR(result.estimate_double, exact, exact * 0.35);
  EXPECT_LT(result.roots_sampled, result.roots_total);
}

TEST(ApproxCount, MeanOverSeedsConverges) {
  // Root sampling is unbiased; on a homogeneous graph (no planted heavy
  // roots — a single clique root can hold half the count, which no dozen
  // runs can average away) the mean over seeds homes in on the exact
  // count much tighter than any single estimate.
  EdgeList edges = GnM(400, 4000, 11);
  const Graph g = BuildGraph(std::move(edges));
  const Graph dag = MakeDag(g, OrderingKind::kCore);
  CountOptions exact_options;
  exact_options.k = 5;
  const double exact = CountCliques(dag, exact_options).total.AsDouble();

  double sum = 0;
  const int runs = 12;
  for (int seed = 0; seed < runs; ++seed) {
    ApproxCountConfig config;
    config.sample_fraction = 0.1;
    config.seed = static_cast<std::uint64_t>(seed) + 1;
    sum += ApproxCountKCliques(dag, 5, config).estimate_double;
  }
  EXPECT_NEAR(sum / runs, exact, exact * 0.15);
}

TEST(ApproxCount, ValidatesArguments) {
  const Graph g = BuildGraph(CompleteGraph(5));
  EXPECT_THROW(ApproxCountKCliques(g, 3, {}), std::invalid_argument);
  const Graph dag = MakeDag(g, OrderingKind::kDegree);
  ApproxCountConfig config;
  config.sample_fraction = 0;
  EXPECT_THROW(ApproxCountKCliques(dag, 3, config), std::invalid_argument);
}

// ---------------------------------------------------------------- coloring

TEST(Coloring, ProperColoring) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const Graph g = BuildGraph(Rmat(8, 6.0, seed));
    const auto color = GreedyColoring(g);
    for (NodeId u = 0; u < g.NumNodes(); ++u)
      for (NodeId v : g.Neighbors(u)) EXPECT_NE(color[u], color[v]);
  }
}

TEST(Coloring, CompleteGraphNeedsNColors) {
  const Graph g = BuildGraph(CompleteGraph(7));
  const auto color = GreedyColoring(g);
  std::set<NodeId> distinct(color.begin(), color.end());
  EXPECT_EQ(distinct.size(), 7u);
}

TEST(Coloring, BipartiteUsesTwoColors) {
  const Graph g = BuildGraph(CompleteBipartite(5, 6));
  const auto color = GreedyColoring(g);
  std::set<NodeId> distinct(color.begin(), color.end());
  EXPECT_EQ(distinct.size(), 2u);
}

TEST(Coloring, OrderingIsValidAndCounts) {
  EdgeList edges = GnM(80, 400, 13);
  PlantCliques(&edges, 80, 2, 5, 8, 14);
  const Graph g = BuildGraph(std::move(edges));
  const Ordering o = ColoringOrdering(g);
  EXPECT_TRUE(IsPermutation(o.ranks));
  const Graph dag = Directionalize(g, o.ranks);
  CountOptions options;
  options.k = 4;
  EXPECT_EQ(CountCliques(dag, options).total.value(),
            static_cast<uint128>(BruteForceCount(g, 4)));
}

// ---------------------------------------------------------------- transforms

TEST(Transform, InducedSubgraphBasics) {
  const Graph g = BuildGraph(CompleteGraph(6));
  const std::vector<NodeId> pick = {1, 3, 5};
  const InducedResult r = InduceSubgraph(g, pick);
  EXPECT_EQ(r.graph.NumNodes(), 3u);
  EXPECT_EQ(r.graph.NumUndirectedEdges(), 3u);  // K_3
  EXPECT_EQ(r.original_ids, pick);
}

TEST(Transform, InducedSubgraphIgnoresDuplicates) {
  const Graph g = BuildGraph(PathGraph(5));
  const std::vector<NodeId> pick = {2, 2, 3};
  const InducedResult r = InduceSubgraph(g, pick);
  EXPECT_EQ(r.graph.NumNodes(), 2u);
  EXPECT_EQ(r.graph.NumUndirectedEdges(), 1u);
}

TEST(Transform, ExtractKCorePeelsTree) {
  // A 6-clique with pendant paths: the 3-core is exactly the clique.
  EdgeList edges = CompleteGraph(6);
  for (NodeId i = 0; i < 6; ++i) edges.emplace_back(i, 6 + i);
  const Graph g = BuildGraph(std::move(edges));
  const InducedResult core3 = ExtractKCore(g, 3);
  EXPECT_EQ(core3.graph.NumNodes(), 6u);
  EXPECT_EQ(core3.graph.NumUndirectedEdges(), 15u);
  const InducedResult core7 = ExtractKCore(g, 7);
  EXPECT_EQ(core7.graph.NumNodes(), 0u);
}

TEST(Transform, KCorePreservesCliqueCounts) {
  // Every k-clique lives inside the (k-1)-core, so counts must match.
  EdgeList edges = GnM(120, 500, 15);
  PlantCliques(&edges, 120, 2, 6, 9, 16);
  const Graph g = BuildGraph(std::move(edges));
  const std::uint32_t k = 5;
  const InducedResult core = ExtractKCore(g, k - 1);
  EXPECT_EQ(BruteForceCount(g, k), BruteForceCount(core.graph, k));
}

TEST(Transform, ConnectedComponentsAndLargest) {
  // Two components: a K_4 and a path of 3.
  EdgeList edges = CompleteGraph(4);
  edges.emplace_back(4, 5);
  edges.emplace_back(5, 6);
  const Graph g = BuildUndirected(std::move(edges), 7);
  const auto comp = ConnectedComponents(g);
  EXPECT_EQ(comp[0], comp[3]);
  EXPECT_EQ(comp[4], comp[6]);
  EXPECT_NE(comp[0], comp[4]);
  const InducedResult lcc = LargestConnectedComponent(g);
  EXPECT_EQ(lcc.graph.NumNodes(), 4u);
  EXPECT_EQ(lcc.graph.NumUndirectedEdges(), 6u);
}

TEST(Transform, DisjointUnionAddsCliqueCounts) {
  const Graph a = BuildGraph(CompleteGraph(7));
  const Graph b = BuildGraph(ErdosRenyi(25, 0.4, 17));
  const Graph u = DisjointUnion(a, b);
  for (std::uint32_t k : {2u, 3u, 4u}) {
    EXPECT_EQ(BruteForceCount(u, k),
              BruteForceCount(a, k) + BruteForceCount(b, k))
        << k;
  }
}

// ---------------------------------------------------------------- analysis

TEST(Analysis, TrianglesClosedForms) {
  EXPECT_EQ(CountTriangles(BuildGraph(CompleteGraph(10))),
            static_cast<std::uint64_t>(
                ToDouble(BinomialChoose(10, 3))));
  EXPECT_EQ(CountTriangles(BuildGraph(PathGraph(30))), 0u);
  EXPECT_EQ(CountTriangles(BuildGraph(CompleteBipartite(4, 5))), 0u);
}

TEST(Analysis, TrianglesMatchPivoterK3) {
  EdgeList edges = Rmat(10, 8.0, 19);
  PlantCliques(&edges, 1024, 5, 5, 9, 20);
  const Graph g = BuildGraph(std::move(edges));
  const Graph dag = MakeDag(g, OrderingKind::kCore);
  CountOptions options;
  options.k = 3;
  EXPECT_EQ(static_cast<uint128>(CountTriangles(g)),
            CountCliques(dag, options).total.value());
}

TEST(Analysis, ClusteringCoefficients) {
  // K_4: fully clustered.
  const Graph k4 = BuildGraph(CompleteGraph(4));
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(k4), 1.0);
  EXPECT_DOUBLE_EQ(AverageLocalClusteringCoefficient(k4), 1.0);
  // Star: no triangles.
  const Graph star = BuildGraph(StarGraph(10));
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(star), 0.0);
}

TEST(Analysis, Log2HistogramBuckets) {
  const std::vector<EdgeId> values = {0, 1, 2, 3, 4, 7, 8, 100};
  const auto hist = Log2Histogram(values);
  ASSERT_GE(hist.size(), 7u);
  EXPECT_EQ(hist[0], 2u);  // 0, 1
  EXPECT_EQ(hist[1], 2u);  // 2, 3
  EXPECT_EQ(hist[2], 2u);  // 4, 7
  EXPECT_EQ(hist[3], 1u);  // 8
  EXPECT_EQ(hist[6], 1u);  // 100
}

TEST(Analysis, AssortativityExtremes) {
  // A star is maximally disassortative.
  EXPECT_LT(DegreeAssortativity(BuildGraph(StarGraph(20))), -0.9);
  // A clique is degree-regular: correlation degenerates to 0 by
  // convention (zero variance).
  EXPECT_DOUBLE_EQ(DegreeAssortativity(BuildGraph(CompleteGraph(8))), 0.0);
}

TEST(Analysis, AssortativityMatchesHeuristicIntuition) {
  // Hub-to-hub structure (assortative analog) scores higher than a
  // star-heavy one (disassortative).
  const Dataset social = MakeDataset("orkut-like", 0.05);
  const Dataset stars = MakeDataset("wikitalk-like", 0.05);
  EXPECT_GT(DegreeAssortativity(social.graph),
            DegreeAssortativity(stars.graph));
}

}  // namespace
}  // namespace pivotscale
