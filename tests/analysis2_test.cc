// Tests for the second wave of analysis/counting features: k-truss
// decomposition, k-clique densest subgraph, edge-parallel counting, and
// the Watts-Strogatz generator.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "analysis/densest.h"
#include "analysis/ktruss.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "pivot/count.h"
#include "test_helpers.h"
#include "util/binomial.h"

namespace pivotscale {
namespace {

using testing_helpers::BruteForceCount;
using testing_helpers::MakeDag;

// ---------------------------------------------------------------- k-truss

TEST(KTruss, CompleteGraphTrussness) {
  // Every edge of K_n is in the n-truss (n-2 triangles per edge).
  const Graph g = BuildGraph(CompleteGraph(6));
  const TrussDecomposition d = ComputeTrussDecomposition(g);
  EXPECT_EQ(d.max_trussness, 6u);
  for (std::uint32_t t : d.trussness) EXPECT_EQ(t, 6u);
}

TEST(KTruss, TreeEdgesAreTwoTruss) {
  const Graph g = BuildGraph(PathGraph(10));
  const TrussDecomposition d = ComputeTrussDecomposition(g);
  EXPECT_EQ(d.max_trussness, 2u);
  for (std::uint32_t t : d.trussness) EXPECT_EQ(t, 2u);
}

TEST(KTruss, PlantedCliqueDominates) {
  EdgeList edges = PathGraph(60);
  PlantCliques(&edges, 60, 1, 8, 8, 3);
  const Graph g = BuildGraph(std::move(edges));
  const TrussDecomposition d = ComputeTrussDecomposition(g);
  EXPECT_EQ(d.max_trussness, 8u);
  // Exactly the clique's C(8,2) = 28 edges reach trussness 8 (path edges
  // incident to clique members stay low).
  int count8 = 0;
  for (std::uint32_t t : d.trussness)
    if (t == 8) ++count8;
  EXPECT_GE(count8, 28);
  EXPECT_LE(count8, 30);  // allow path edges that happen to close triangles
}

TEST(KTruss, KTrussEdgesFilters) {
  EdgeList edges = CompleteGraph(5);  // K_5 over ids 0..4
  edges.emplace_back(4, 5);           // pendant edge
  const Graph g = BuildGraph(std::move(edges));
  EXPECT_EQ(KTrussEdges(g, 2).size(), 11u);  // everything
  EXPECT_EQ(KTrussEdges(g, 5).size(), 10u);  // just the K_5
  EXPECT_TRUE(KTrussEdges(g, 6).empty());
}

TEST(KTruss, TrussContainsEveryKClique) {
  // Each k-clique's edges all have trussness >= k: verify counts survive
  // restriction to the k-truss.
  EdgeList edges = GnM(80, 400, 5);
  PlantCliques(&edges, 80, 2, 6, 8, 6);
  const Graph g = BuildGraph(std::move(edges));
  const std::uint32_t k = 5;
  const Graph truss = BuildUndirected(KTrussEdges(g, k), g.NumNodes());
  EXPECT_EQ(BruteForceCount(g, k), BruteForceCount(truss, k));
}

TEST(KTruss, EmptyGraph) {
  const Graph g = BuildGraph({});
  const TrussDecomposition d = ComputeTrussDecomposition(g);
  EXPECT_TRUE(d.edges.empty());
  EXPECT_EQ(d.max_trussness, 2u);
}

// ---------------------------------------------------------------- densest

TEST(Densest, FindsPlantedClique) {
  // A 10-clique in sparse noise is the 4-clique densest region.
  EdgeList edges = GnM(300, 600, 7);
  PlantCliques(&edges, 300, 1, 10, 10, 8);
  const Graph g = BuildGraph(std::move(edges));
  const DensestSubgraphResult result = KCliqueDensestSubgraph(g, 4);
  // Density should be at least the planted clique's C(10,4)/10 = 21.
  EXPECT_GE(result.density, 21.0 * 0.9);
  EXPECT_LE(result.vertices.size(), 40u);  // zoomed well past the noise
  EXPECT_GT(result.rounds, 1);
}

TEST(Densest, CompleteGraphIsItsOwnDensest) {
  const Graph g = BuildGraph(CompleteGraph(12));
  const DensestSubgraphResult result = KCliqueDensestSubgraph(g, 3);
  EXPECT_EQ(result.vertices.size(), 12u);
  EXPECT_DOUBLE_EQ(result.density,
                   ToDouble(BinomialChoose(12, 3)) / 12.0);
}

TEST(Densest, NoCliquesMeansEmptyResult) {
  const Graph g = BuildGraph(PathGraph(30));
  const DensestSubgraphResult result = KCliqueDensestSubgraph(g, 3);
  EXPECT_EQ(result.cliques, BigCount{});
  EXPECT_TRUE(result.vertices.empty());
}

TEST(Densest, ValidatesArguments) {
  const Graph g = BuildGraph(CompleteGraph(4));
  EXPECT_THROW(KCliqueDensestSubgraph(g, 1), std::invalid_argument);
  DensestSubgraphConfig config;
  config.peel_fraction = 0;
  EXPECT_THROW(KCliqueDensestSubgraph(g, 3, config),
               std::invalid_argument);
}

// ------------------------------------------------------- edge parallel

TEST(EdgeParallel, MatchesVertexParallelOnSweep) {
  for (int seed : {11, 12}) {
    const Graph g = BuildGraph(ErdosRenyi(40, 0.4, seed));
    const Graph dag = MakeDag(g, OrderingKind::kCore);
    for (std::uint32_t k : {1u, 2u, 3u, 5u, 7u}) {
      CountOptions options;
      options.k = k;
      EXPECT_EQ(CountCliquesEdgeParallel(dag, options).total,
                CountCliques(dag, options).total)
          << "seed=" << seed << " k=" << k;
    }
  }
}

TEST(EdgeParallel, AllKMatchesVertexMode) {
  EdgeList edges = GnM(60, 400, 13);
  PlantCliques(&edges, 60, 1, 8, 8, 14);
  const Graph g = BuildGraph(std::move(edges));
  const Graph dag = MakeDag(g, OrderingKind::kDegree);
  CountOptions options;
  options.mode = CountMode::kAllK;
  const CountResult vertex = CountCliques(dag, options);
  const CountResult edge = CountCliquesEdgeParallel(dag, options);
  ASSERT_EQ(vertex.per_size.size(), edge.per_size.size());
  for (std::size_t s = 1; s < vertex.per_size.size(); ++s)
    EXPECT_EQ(vertex.per_size[s], edge.per_size[s]) << s;
}

TEST(EdgeParallel, PerVertexMatches) {
  const Graph g = BuildGraph(ErdosRenyi(30, 0.5, 15));
  const Graph dag = MakeDag(g, OrderingKind::kCore);
  CountOptions options;
  options.k = 4;
  options.per_vertex = true;
  const CountResult vertex = CountCliques(dag, options);
  const CountResult edge = CountCliquesEdgeParallel(dag, options);
  for (NodeId v = 0; v < g.NumNodes(); ++v)
    EXPECT_EQ(vertex.per_vertex[v], edge.per_vertex[v]) << v;
}

TEST(EdgeParallel, RejectsWorkTrace) {
  const Graph g = BuildGraph(CompleteGraph(4));
  const Graph dag = MakeDag(g, OrderingKind::kDegree);
  CountOptions options;
  options.collect_work_trace = true;
  EXPECT_THROW(CountCliquesEdgeParallel(dag, options),
               std::invalid_argument);
}

// ------------------------------------------------------- watts-strogatz

TEST(WattsStrogatz, RingLatticeAtZeroRewire) {
  const Graph g = BuildGraph(WattsStrogatz(30, 4, 0.0, 1));
  // Perfect ring lattice: every vertex has degree exactly 4.
  for (NodeId u = 0; u < 30; ++u) EXPECT_EQ(g.Degree(u), 4u);
}

TEST(WattsStrogatz, HighClusteringAtLowRewire) {
  const Graph low = BuildGraph(WattsStrogatz(500, 8, 0.01, 2));
  const Graph high = BuildGraph(WattsStrogatz(500, 8, 1.0, 2));
  // Triangle density collapses as rewiring randomizes the lattice.
  auto triangle_rate = [](const Graph& g) {
    std::uint64_t triangles = 0;
    for (NodeId u = 0; u < g.NumNodes(); ++u) {
      const auto nbrs = g.Neighbors(u);
      for (std::size_t i = 0; i < nbrs.size(); ++i)
        for (std::size_t j = i + 1; j < nbrs.size(); ++j)
          if (g.HasEdge(nbrs[i], nbrs[j])) ++triangles;
    }
    return static_cast<double>(triangles);
  };
  EXPECT_GT(triangle_rate(low), 4 * triangle_rate(high));
}

TEST(WattsStrogatz, Validates) {
  EXPECT_THROW(WattsStrogatz(10, 3, 0.1, 1), std::invalid_argument);
  EXPECT_THROW(WattsStrogatz(10, 0, 0.1, 1), std::invalid_argument);
  EXPECT_THROW(WattsStrogatz(10, 10, 0.1, 1), std::invalid_argument);
}

}  // namespace
}  // namespace pivotscale
