// Tests for the synthetic graph generators and the dataset suite.
#include <gtest/gtest.h>

#include <set>

#include "graph/builder.h"
#include "graph/datasets.h"
#include "graph/generators.h"

namespace pivotscale {
namespace {

// ---------------------------------------------------------------- models

TEST(Generators, ErdosRenyiDeterministic) {
  EXPECT_EQ(ErdosRenyi(50, 0.2, 7), ErdosRenyi(50, 0.2, 7));
  EXPECT_NE(ErdosRenyi(50, 0.2, 7), ErdosRenyi(50, 0.2, 8));
}

TEST(Generators, ErdosRenyiEdgeCountNearExpectation) {
  const EdgeList edges = ErdosRenyi(200, 0.1, 3);
  const double expected = 0.1 * 200 * 199 / 2;
  EXPECT_NEAR(static_cast<double>(edges.size()), expected, expected * 0.2);
}

TEST(Generators, ErdosRenyiExtremes) {
  EXPECT_TRUE(ErdosRenyi(30, 0.0, 1).empty());
  EXPECT_EQ(ErdosRenyi(30, 1.0, 1).size(), 30u * 29 / 2);
}

TEST(Generators, GnMExactCount) {
  const EdgeList edges = GnM(100, 321, 5);
  EXPECT_EQ(edges.size(), 321u);
  std::set<Edge> unique(edges.begin(), edges.end());
  EXPECT_EQ(unique.size(), 321u);  // distinct
  for (const Edge& e : edges) EXPECT_LT(e.first, e.second);
}

TEST(Generators, GnMTooManyEdgesThrows) {
  EXPECT_THROW(GnM(4, 7, 1), std::invalid_argument);
}

TEST(Generators, RmatSizeAndBounds) {
  const EdgeList edges = Rmat(10, 8.0, 17);
  EXPECT_EQ(edges.size(), 4096u);  // 8 * 1024 / 2
  for (const Edge& e : edges) {
    EXPECT_LT(e.first, 1024u);
    EXPECT_LT(e.second, 1024u);
  }
}

TEST(Generators, RmatSkewedDegrees) {
  // Power-law-ish: the max degree should far exceed the average.
  const Graph g = BuildGraph(Rmat(12, 8.0, 23));
  EXPECT_GT(static_cast<double>(g.MaxDegree()),
            4.0 * g.AverageDegree());
}

TEST(Generators, RmatValidatesArguments) {
  EXPECT_THROW(Rmat(0, 4.0, 1), std::invalid_argument);
  EXPECT_THROW(Rmat(8, 4.0, 0.6, 0.3, 0.2, 1), std::invalid_argument);
}

TEST(Generators, BarabasiAlbertDegrees) {
  const NodeId n = 500, attach = 3;
  const Graph g = BuildGraph(BarabasiAlbert(n, attach, 31));
  EXPECT_EQ(g.NumNodes(), n);
  // Every non-seed vertex attaches to exactly `attach` targets.
  for (NodeId u = attach + 1; u < n; ++u) EXPECT_GE(g.Degree(u), attach);
  // Preferential attachment concentrates degree.
  EXPECT_GT(g.MaxDegree(), 4u * attach);
}

TEST(Generators, BarabasiAlbertValidates) {
  EXPECT_THROW(BarabasiAlbert(5, 0, 1), std::invalid_argument);
  EXPECT_THROW(BarabasiAlbert(3, 3, 1), std::invalid_argument);
}

TEST(Generators, StarHeavyHubsDominate) {
  const Graph g = BuildGraph(StarHeavy(1000, 5, 0.3, 41));
  for (NodeId h = 0; h < 5; ++h) EXPECT_GT(g.Degree(h), 100u);
}

TEST(Generators, CommunityModelPlantsDensity) {
  const Graph g =
      BuildGraph(CommunityModel(200, 30, 4, 8, 1.0, 43));
  // With intra_p = 1 every community is a clique, so triangles abound:
  // verify some vertex has two adjacent neighbors.
  bool found_triangle = false;
  for (NodeId u = 0; u < g.NumNodes() && !found_triangle; ++u) {
    const auto nbrs = g.Neighbors(u);
    for (std::size_t i = 0; i < nbrs.size() && !found_triangle; ++i)
      for (std::size_t j = i + 1; j < nbrs.size(); ++j)
        if (g.HasEdge(nbrs[i], nbrs[j])) {
          found_triangle = true;
          break;
        }
  }
  EXPECT_TRUE(found_triangle);
}

TEST(Generators, PlantCliquesCreatesClique) {
  EdgeList edges;
  PlantCliques(&edges, 50, 1, 10, 10, 47);
  const Graph g = BuildUndirected(std::move(edges), 50);
  // Exactly one 10-clique planted: 45 edges, members have degree 9.
  EXPECT_EQ(g.NumUndirectedEdges(), 45u);
  int members = 0;
  for (NodeId u = 0; u < 50; ++u)
    if (g.Degree(u) == 9) ++members;
  EXPECT_EQ(members, 10);
}

TEST(Generators, PlantCliquesValidates) {
  EdgeList edges;
  EXPECT_THROW(PlantCliques(&edges, 5, 1, 6, 6, 1), std::invalid_argument);
  EXPECT_THROW(PlantCliques(&edges, 5, 1, 1, 1, 1), std::invalid_argument);
}

TEST(Generators, ShuffleIsAnIsomorphism) {
  // Relabeling must preserve the degree multiset and the edge count, and be
  // deterministic per seed.
  EdgeList edges = Rmat(8, 6.0, 51);
  EdgeList shuffled = edges;
  ShuffleVertexIds(&shuffled, 256, 7);
  ASSERT_EQ(edges.size(), shuffled.size());

  const Graph a = BuildUndirected(std::move(edges), 256);
  EdgeList shuffled_copy = shuffled;
  const Graph b = BuildUndirected(std::move(shuffled), 256);
  EXPECT_EQ(a.NumDirectedEdges(), b.NumDirectedEdges());

  std::vector<EdgeId> da, db;
  for (NodeId u = 0; u < 256; ++u) {
    da.push_back(a.Degree(u));
    db.push_back(b.Degree(u));
  }
  std::sort(da.begin(), da.end());
  std::sort(db.begin(), db.end());
  EXPECT_EQ(da, db);

  EdgeList again = Rmat(8, 6.0, 51);
  ShuffleVertexIds(&again, 256, 7);
  EXPECT_EQ(again, shuffled_copy);
}

TEST(Generators, ShuffledCliqueCountsUnchanged) {
  // Clique counts are isomorphism-invariant; the shuffle must not change
  // them (this also guards against out-of-range relabels).
  EdgeList edges = GnM(60, 300, 53);
  PlantCliques(&edges, 60, 2, 6, 9, 54);
  EdgeList shuffled = edges;
  ShuffleVertexIds(&shuffled, 60, 11);
  const Graph a = BuildUndirected(std::move(edges), 60);
  const Graph b = BuildUndirected(std::move(shuffled), 60);
  // Triangle count via neighborhood intersection on both.
  auto triangles = [](const Graph& g) {
    std::uint64_t count = 0;
    for (NodeId u = 0; u < g.NumNodes(); ++u)
      for (NodeId v : g.Neighbors(u)) {
        if (v <= u) continue;
        for (NodeId w : g.Neighbors(v))
          if (w > v && g.HasEdge(u, w)) ++count;
      }
    return count;
  };
  EXPECT_EQ(triangles(a), triangles(b));
}

// ---------------------------------------------------------------- reference

TEST(Generators, CompleteGraphEdges) {
  EXPECT_EQ(CompleteGraph(6).size(), 15u);
  EXPECT_TRUE(CompleteGraph(1).empty());
}

TEST(Generators, PathCycleStar) {
  EXPECT_EQ(PathGraph(5).size(), 4u);
  EXPECT_EQ(CycleGraph(5).size(), 5u);
  EXPECT_EQ(StarGraph(5).size(), 4u);
}

TEST(Generators, CompleteBipartiteTriangleFree) {
  const Graph g = BuildGraph(CompleteBipartite(3, 4));
  EXPECT_EQ(g.NumUndirectedEdges(), 12u);
  // Bipartite: no triangles.
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    const auto nbrs = g.Neighbors(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i)
      for (std::size_t j = i + 1; j < nbrs.size(); ++j)
        EXPECT_FALSE(g.HasEdge(nbrs[i], nbrs[j]));
  }
}

TEST(Generators, TuranGraphStructure) {
  // T(9, 3): 3 parts of 3; each vertex adjacent to the 6 outside its part.
  const Graph g = BuildGraph(TuranGraph(9, 3));
  for (NodeId u = 0; u < 9; ++u) EXPECT_EQ(g.Degree(u), 6u);
}

// ---------------------------------------------------------------- datasets

TEST(Datasets, SuiteHasEightGraphsInOrder) {
  const auto& names = DatasetNames();
  ASSERT_EQ(names.size(), 8u);
  EXPECT_EQ(names.front(), "dblp-like");
  EXPECT_EQ(names.back(), "friendster-like");
}

TEST(Datasets, Deterministic) {
  const Dataset a = MakeDataset("dblp-like", 0.1);
  const Dataset b = MakeDataset("dblp-like", 0.1);
  EXPECT_EQ(a.graph.NumNodes(), b.graph.NumNodes());
  EXPECT_EQ(a.graph.NumDirectedEdges(), b.graph.NumDirectedEdges());
  EXPECT_EQ(a.graph.neighbor_array(), b.graph.neighbor_array());
}

TEST(Datasets, UnknownNameThrows) {
  EXPECT_THROW(MakeDataset("orkut", 1.0), std::invalid_argument);
  EXPECT_THROW(MakeDataset("dblp-like", 0.0), std::invalid_argument);
  EXPECT_THROW(MakeDataset("dblp-like", 5.0), std::invalid_argument);
}

TEST(Datasets, AllBuildAtSmallScale) {
  for (const auto& name : DatasetNames()) {
    const Dataset d = MakeDataset(name, 0.05);
    EXPECT_GT(d.graph.NumNodes(), 0u) << name;
    EXPECT_GT(d.graph.NumUndirectedEdges(), 0u) << name;
    EXPECT_TRUE(d.graph.undirected()) << name;
    EXPECT_EQ(d.name, name);
    EXPECT_FALSE(d.paper_analog.empty()) << name;
  }
}

TEST(Datasets, ScaleGrowsGraphs) {
  const Dataset small = MakeDataset("wikitalk-like", 0.05);
  const Dataset large = MakeDataset("wikitalk-like", 0.2);
  EXPECT_GT(large.graph.NumNodes(), small.graph.NumNodes());
}

}  // namespace
}  // namespace pivotscale
