// Cross-validation of the baseline counters (enumeration, naive Pivoter,
// GPU-Pivot model) against brute force and against PivotScale.
#include <gtest/gtest.h>

#include <tuple>

#include "baselines/enumeration.h"
#include "baselines/gpu_pivot_model.h"
#include "baselines/pivoter_naive.h"
#include "graph/builder.h"
#include "graph/dag.h"
#include "graph/generators.h"
#include "pivot/count.h"
#include "test_helpers.h"
#include "util/binomial.h"

namespace pivotscale {
namespace {

using testing_helpers::BruteForceCount;
using testing_helpers::MakeDag;

// ---------------------------------------------------------------- enumeration

using SweepParam = std::tuple<int, double, int, int>;

class EnumerationSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(EnumerationSweep, MatchesBruteForce) {
  const auto [n, p, seed, k] = GetParam();
  const Graph g = BuildGraph(
      ErdosRenyi(static_cast<NodeId>(n), p, static_cast<std::uint64_t>(seed)));
  if (g.NumNodes() == 0) GTEST_SKIP();
  const Graph dag = MakeDag(g, OrderingKind::kCore);
  EnumerationOptions options;
  options.k = static_cast<std::uint32_t>(k);
  const EnumerationResult result = CountCliquesEnumeration(dag, options);
  EXPECT_FALSE(result.timed_out);
  EXPECT_EQ(result.total.value(),
            static_cast<uint128>(
                BruteForceCount(g, static_cast<std::uint32_t>(k))));
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, EnumerationSweep,
    ::testing::Combine(::testing::Values(10, 20, 30),
                       ::testing::Values(0.25, 0.5),
                       ::testing::Values(4, 5),
                       ::testing::Values(2, 3, 4, 5)));

TEST(Enumeration, CompleteGraph) {
  const Graph g = BuildGraph(CompleteGraph(12));
  const Graph dag = MakeDag(g, OrderingKind::kDegree);
  for (std::uint32_t k : {1u, 3u, 6u, 12u}) {
    EnumerationOptions options;
    options.k = k;
    EXPECT_EQ(CountCliquesEnumeration(dag, options).total.value(),
              BinomialChoose(12, k));
  }
}

TEST(Enumeration, AgreesWithPivoterOnLargerGraph) {
  EdgeList edges = Rmat(10, 6.0, 61);
  PlantCliques(&edges, 1024, 4, 5, 9, 62);
  const Graph g = BuildGraph(std::move(edges));
  const Graph dag = MakeDag(g, OrderingKind::kCore);
  EnumerationOptions enum_options;
  enum_options.k = 5;
  CountOptions pivot_options;
  pivot_options.k = 5;
  EXPECT_EQ(CountCliquesEnumeration(dag, enum_options).total,
            CountCliques(dag, pivot_options).total);
}

TEST(Enumeration, TimeBudgetTriggersOnHardInstance) {
  // A graph with a 32-clique: enumeration of 12-cliques would visit
  // ~C(32,12) ~ 2e8 leaves; a microscopic budget must trip.
  const Graph g = BuildGraph(CompleteGraph(32));
  const Graph dag = MakeDag(g, OrderingKind::kDegree);
  EnumerationOptions options;
  options.k = 12;
  options.time_budget_seconds = 1e-4;
  const EnumerationResult result = CountCliquesEnumeration(dag, options);
  EXPECT_TRUE(result.timed_out);
}

TEST(Enumeration, RejectsUndirectedAndZeroK) {
  const Graph g = BuildGraph(CompleteGraph(4));
  EXPECT_THROW(CountCliquesEnumeration(g, {}), std::invalid_argument);
  const Graph dag = MakeDag(g, OrderingKind::kDegree);
  EnumerationOptions options;
  options.k = 0;
  EXPECT_THROW(CountCliquesEnumeration(dag, options), std::invalid_argument);
}

// ---------------------------------------------------------------- naive pivoter

TEST(PivoterNaive, MatchesBruteForceSweep) {
  for (int seed : {71, 72, 73}) {
    const Graph g = BuildGraph(ErdosRenyi(25, 0.4, seed));
    for (std::uint32_t k : {3u, 4u, 5u}) {
      const PivoterNaiveResult result = RunPivoterNaive(g, k);
      EXPECT_EQ(result.total.value(),
                static_cast<uint128>(BruteForceCount(g, k)))
          << "seed=" << seed << " k=" << k;
    }
  }
}

TEST(PivoterNaive, ReportsPhases) {
  const Graph g = BuildGraph(Rmat(9, 6.0, 77));
  const PivoterNaiveResult result = RunPivoterNaive(g, 5);
  EXPECT_GE(result.ordering_seconds, 0.0);
  EXPECT_GT(result.total_seconds, 0.0);
  EXPECT_GT(result.max_out_degree, 0u);
}

TEST(PivoterNaive, UsesCoreQualityOrdering) {
  // Its max out-degree must match the exact core ordering's.
  EdgeList edges = GnM(200, 900, 79);
  PlantCliques(&edges, 200, 2, 8, 10, 80);
  const Graph g = BuildGraph(std::move(edges));
  const Graph core_dag = MakeDag(g, OrderingKind::kCore);
  const PivoterNaiveResult result = RunPivoterNaive(g, 4);
  EXPECT_EQ(result.max_out_degree, MaxOutDegree(core_dag));
}

// ---------------------------------------------------------------- gpu model

class GpuModelSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(GpuModelSweep, MatchesBruteForce) {
  const auto [n, p, seed, k] = GetParam();
  const Graph g = BuildGraph(
      ErdosRenyi(static_cast<NodeId>(n), p, static_cast<std::uint64_t>(seed)));
  if (g.NumNodes() == 0) GTEST_SKIP();
  const Graph dag = MakeDag(g, OrderingKind::kCore);
  const GpuPivotModelResult result =
      CountCliquesGpuPivotModel(dag, static_cast<std::uint32_t>(k));
  EXPECT_EQ(result.total.value(),
            static_cast<uint128>(
                BruteForceCount(g, static_cast<std::uint32_t>(k))));
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, GpuModelSweep,
    ::testing::Combine(::testing::Values(10, 20, 30, 40),
                       ::testing::Values(0.3, 0.6),
                       ::testing::Values(6, 7),
                       ::testing::Values(2, 3, 4, 5, 6)));

TEST(GpuModel, CompleteGraphLargeK) {
  const Graph g = BuildGraph(CompleteGraph(24));
  const Graph dag = MakeDag(g, OrderingKind::kDegree);
  EXPECT_EQ(CountCliquesGpuPivotModel(dag, 12).total.value(),
            BinomialChoose(24, 12));
}

TEST(GpuModel, AgreesWithPivotScaleOnCliqueRichGraph) {
  EdgeList edges = GnM(400, 2000, 83);
  PlantCliques(&edges, 100, 10, 8, 16, 84);
  const Graph g = BuildGraph(std::move(edges));
  const Graph dag = MakeDag(g, OrderingKind::kCore);
  for (std::uint32_t k : {4u, 7u, 10u}) {
    CountOptions pivot_options;
    pivot_options.k = k;
    EXPECT_EQ(CountCliquesGpuPivotModel(dag, k).total,
              CountCliques(dag, pivot_options).total)
        << k;
  }
}

TEST(GpuModel, WordBoundarySubgraphSizes) {
  // Exercise bitset padding at 63/64/65-member first-level subgraphs: a
  // (w+1)-clique gives the root a w-member subgraph.
  for (NodeId w : {63u, 64u, 65u}) {
    const Graph g = BuildGraph(CompleteGraph(w + 1));
    const Graph dag = MakeDag(g, OrderingKind::kDegree);
    EXPECT_EQ(CountCliquesGpuPivotModel(dag, 3).total.value(),
              BinomialChoose(w + 1, 3))
        << w;
  }
}

TEST(GpuModel, RejectsUndirectedAndZeroK) {
  const Graph g = BuildGraph(CompleteGraph(4));
  EXPECT_THROW(CountCliquesGpuPivotModel(g, 3), std::invalid_argument);
  const Graph dag = MakeDag(g, OrderingKind::kDegree);
  EXPECT_THROW(CountCliquesGpuPivotModel(dag, 0), std::invalid_argument);
}

TEST(GpuModel, ReportsWorkspace) {
  const Graph g = BuildGraph(Rmat(9, 8.0, 85));
  const Graph dag = MakeDag(g, OrderingKind::kCore);
  EXPECT_GT(CountCliquesGpuPivotModel(dag, 5).workspace_bytes, 0u);
}

// ---------------------------------------------------------------- agreement

TEST(AllCounters, AgreeOnDatasetStyleGraph) {
  // Integration: every production counter and baseline produces the same
  // count on a moderately sized clique-rich graph.
  EdgeList edges = Rmat(11, 6.0, 91);
  PlantCliques(&edges, 512, 8, 6, 18, 92);
  const Graph g = BuildGraph(std::move(edges));
  const Graph dag = MakeDag(g, OrderingKind::kCore);
  const std::uint32_t k = 7;

  CountOptions remap_options;
  remap_options.k = k;
  const BigCount reference = CountCliques(dag, remap_options).total;

  for (auto structure : {SubgraphKind::kDense, SubgraphKind::kSparse}) {
    CountOptions options;
    options.k = k;
    options.structure = structure;
    EXPECT_EQ(CountCliques(dag, options).total, reference)
        << SubgraphKindName(structure);
  }
  EnumerationOptions enum_options;
  enum_options.k = k;
  EXPECT_EQ(CountCliquesEnumeration(dag, enum_options).total, reference);
  EXPECT_EQ(CountCliquesGpuPivotModel(dag, k).total, reference);
  EXPECT_EQ(RunPivoterNaive(g, k).total, reference);
}

}  // namespace
}  // namespace pivotscale
