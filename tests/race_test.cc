// Deterministic concurrency stress tests, written to run under
// ThreadSanitizer (cmake -DPIVOTSCALE_TSAN=ON). Each test hammers one of
// the shared-state surfaces from many threads with exact, deterministic
// expected totals, so a data race shows up either as a TSan report or as
// a wrong count:
//   * TelemetryRegistry counters/gauges/spans under concurrent mutation
//   * QueryEngine LRU cache eviction under mixed-k batches on a byte
//     budget too small for the working set
//   * WorkerPool admission-queue shed/drain accounting
//   * concurrent executor counting runs (per-thread subgraph pools)
//   * executor reduction slots + chunk cursor + thread-budget ledger
//     under concurrent ParallelReduce / forced-split counting runs
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exec/executor.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "net/worker_pool.h"
#include "pivot/count.h"
#include "pivot/pivotscale.h"
#include "service/query_engine.h"
#include "store/artifact.h"
#include "test_helpers.h"
#include "util/telemetry.h"

namespace pivotscale {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(::testing::TempDir() + "/" + name) {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// Small but clique-rich: TSan runs everything serialized-ish and ~5-15x
// slower, so the stress graphs stay an order of magnitude smaller than
// the functional-test ones.
Graph SmallCliqueGraph(std::uint64_t seed) {
  EdgeList edges = Rmat(7, 4.0, seed);
  PlantCliques(&edges, 128, 4, 4, 6, seed + 1);
  return BuildGraph(std::move(edges));
}

void JoinAll(std::vector<std::thread>& threads) {
  for (std::thread& t : threads) t.join();
}

// --------------------------------------------------------------- telemetry

TEST(RaceTest, TelemetryCountersAccumulateExactlyUnderContention) {
  TelemetryRegistry telemetry;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kIncrementsPerThread = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&telemetry, t] {
      for (std::uint64_t i = 0; i < kIncrementsPerThread; ++i) {
        telemetry.AddCounter("race.shared_total", 1);
        telemetry.AddCounter("race.thread_" + std::to_string(t), 1);
        if ((i & 255) == 0) {
          telemetry.SetGauge("race.last_writer", static_cast<double>(t));
          telemetry.RecordSpan("race.tick", 1e-9);
        }
      }
    });
  }
  JoinAll(threads);

  EXPECT_EQ(telemetry.Counter("race.shared_total"),
            kThreads * kIncrementsPerThread);
  for (int t = 0; t < kThreads; ++t)
    EXPECT_EQ(telemetry.Counter("race.thread_" + std::to_string(t)),
              kIncrementsPerThread);
  EXPECT_TRUE(telemetry.HasSpan("race.tick"));
  // Snapshot while another round of writers mutates: must be internally
  // consistent, not torn.
  std::vector<std::thread> writers;
  std::atomic<bool> stop{false};
  writers.emplace_back([&telemetry, &stop] {
    while (!stop.load(std::memory_order_relaxed))
      telemetry.AddCounter("race.background", 1);
  });
  for (int i = 0; i < 50; ++i) {
    const TelemetrySnapshot snap = telemetry.Snapshot();
    EXPECT_EQ(snap.counters.at("race.shared_total"),
              kThreads * kIncrementsPerThread);
  }
  stop.store(true, std::memory_order_relaxed);
  JoinAll(writers);
}

// ----------------------------------------------------- query-engine cache

class EngineRaceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int a = 0; a < kArtifacts; ++a) {
      graphs_.push_back(SmallCliqueGraph(100 + a));
      files_.push_back(std::make_unique<TempFile>(
          "race_engine_" + std::to_string(a) + ".psx"));
      WriteArtifact(files_[a]->path(), BuildArtifact(graphs_[a]));
      for (std::uint32_t k = 2; k <= kMaxK; ++k)
        expected_[a][k] = CountKCliquesSimple(graphs_[a], k);
    }
  }

  static constexpr int kArtifacts = 3;
  static constexpr std::uint32_t kMaxK = 5;
  std::vector<Graph> graphs_;
  std::vector<std::unique_ptr<TempFile>> files_;
  std::map<int, std::map<std::uint32_t, BigCount>> expected_;
};

TEST_F(EngineRaceTest, MixedKBatchesUnderEvictionPressureStayCorrect) {
  // A budget one artifact can satisfy but three cannot: every rotation to
  // a different artifact forces the load + evict path while other threads
  // are mid-batch on the entry being evicted (shared_ptr keeps it alive).
  TelemetryRegistry telemetry;
  QueryEngineOptions options;
  options.cache_byte_budget = BuildArtifact(graphs_[0]).HeapBytes() + 1024;
  options.num_threads = 2;
  options.telemetry = &telemetry;
  QueryEngine engine(options);

  constexpr int kThreads = 4;
  constexpr int kRounds = 6;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, &engine, &mismatches, t] {
      for (int round = 0; round < kRounds; ++round) {
        // Each thread walks the artifacts in a different phase, so the
        // cache constantly rotates entries in and out.
        const int a = (t + round) % kArtifacts;
        std::vector<ServiceQuery> batch;
        for (std::uint32_t k = 2; k <= kMaxK; ++k) {
          ServiceQuery q;
          q.graph = files_[a]->path();
          q.k = k;
          batch.push_back(q);
        }
        ServiceQuery all;
        all.graph = files_[a]->path();
        all.all_k = true;
        all.k = kMaxK;
        batch.push_back(all);
        const std::vector<ServiceResult> results = engine.RunBatch(batch);
        if (results.size() != batch.size()) {
          mismatches.fetch_add(100);
          continue;
        }
        for (std::size_t i = 0; i < results.size(); ++i) {
          if (!results[i].ok ||
              results[i].total != expected_[a][batch[i].k])
            mismatches.fetch_add(1);
        }
      }
    });
  }
  JoinAll(threads);

  EXPECT_EQ(mismatches.load(), 0);
  // The budget fits one artifact, three rotate through: evictions must
  // have happened, and the resident set must respect the budget shape.
  EXPECT_GT(telemetry.Counter("service.evictions"), 0u);
  EXPECT_LE(engine.CachedArtifacts(), 2u);
  EXPECT_EQ(telemetry.Counter("service.queries"),
            static_cast<std::uint64_t>(kThreads) * kRounds *
                (kMaxK - 2 + 1 + 1));
}

TEST_F(EngineRaceTest, ConcurrentBatchesOnOneArtifactShareMemo) {
  QueryEngine engine;  // default budget: everything stays resident
  constexpr int kThreads = 6;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, &engine, &mismatches, t] {
      const std::uint32_t k = 2 + static_cast<std::uint32_t>(t) % 4;
      ServiceQuery q;
      q.graph = files_[0]->path();
      q.k = k;
      const ServiceResult r = engine.RunQuery(q);
      if (!r.ok || r.total != expected_[0][k]) mismatches.fetch_add(1);
    });
  }
  JoinAll(threads);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(engine.CachedArtifacts(), 1u);
}

// ------------------------------------------------------------ worker pool

TEST(RaceTest, WorkerPoolShedsAndDrainsWithExactAccounting) {
  TempFile artifact("race_pool.psx");
  const Graph g = SmallCliqueGraph(77);
  WriteArtifact(artifact.path(), BuildArtifact(g));
  const BigCount truth = CountKCliquesSimple(g, 4);

  QueryEngineOptions engine_options;
  engine_options.num_threads = 1;
  QueryEngine engine(engine_options);
  engine.Preload(artifact.path());

  std::mutex completions_mutex;
  std::uint64_t completed = 0;
  std::uint64_t bad_payloads = 0;
  WorkerPoolOptions pool_options;
  pool_options.queue_depth = 2;  // tiny: force the shed path constantly
  pool_options.workers = 2;
  auto pool = std::make_unique<WorkerPool>(
      &engine, pool_options,
      [&](std::uint64_t /*connection_id*/, std::string block) {
        std::lock_guard<std::mutex> lock(completions_mutex);
        ++completed;
        if (block.find("\"ok\":true") == std::string::npos) ++bad_payloads;
      });

  constexpr int kProducers = 4;
  constexpr int kBatchesPerProducer = 25;
  std::atomic<std::uint64_t> admitted{0};
  std::atomic<std::uint64_t> shed{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int b = 0; b < kBatchesPerProducer; ++b) {
        NetBatch batch;
        batch.connection_id =
            static_cast<std::uint64_t>(p) * kBatchesPerProducer + b;
        NetRequest req;
        req.parsed = true;
        req.id = b;
        req.query.graph = artifact.path();
        req.query.k = 4;
        batch.requests.push_back(req);
        if (pool->TrySubmit(std::move(batch)))
          admitted.fetch_add(1);
        else
          shed.fetch_add(1);
      }
    });
  }
  JoinAll(producers);
  pool->Drain();  // every admitted batch must still complete

  EXPECT_EQ(admitted.load() + shed.load(),
            static_cast<std::uint64_t>(kProducers) * kBatchesPerProducer);
  {
    std::lock_guard<std::mutex> lock(completions_mutex);
    EXPECT_EQ(completed, admitted.load());
    EXPECT_EQ(bad_payloads, 0u);
  }
  EXPECT_LE(pool->queue_high_water(), pool_options.queue_depth);
  // Post-drain submissions must be refused, not enqueued into the void.
  NetBatch late;
  late.requests.emplace_back();
  EXPECT_FALSE(pool->TrySubmit(std::move(late)));
  pool.reset();
  (void)truth;
}

// ---------------------------------------------- executor reduction slots

TEST(RaceTest, ReductionSlotsAccumulateExactlyUnderContention) {
  // Per-worker reduction slots replaced every `#pragma omp critical`
  // merge: each worker owns one slot, the merge walks them serially after
  // the region. Several std::threads run reductions simultaneously so the
  // slots, the atomic chunk cursor, and the thread-budget ledger all see
  // contention — each reduction must still produce the exact closed-form
  // total, and TSan must see no conflicting access.
  constexpr int kThreads = 4;
  constexpr int kRunsPerThread = 8;
  constexpr std::size_t kN = 10'000;
  constexpr std::uint64_t kWant = kN * (kN - 1) / 2;  // sum of 0..kN-1

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&mismatches, t] {
      for (int run = 0; run < kRunsPerThread; ++run) {
        ExecOptions options;
        options.num_threads = 2;
        // Vary the chunk geometry run to run, and alternate between
        // uniform and heavily skewed cost models, so every chunking mode
        // hits the cursor concurrently.
        options.chunks_per_worker = 1 + (t + run) % 7;
        if (run % 2 == 1)
          options.cost = [](std::size_t i) {
            return static_cast<double>(i);
          };
        const std::uint64_t total = ParallelReduce(
            kN, options, std::uint64_t{0},
            [](std::uint64_t& acc, std::size_t i) { acc += i; },
            [](std::uint64_t& into, std::uint64_t from) { into += from; });
        if (total != kWant) mismatches.fetch_add(1);
      }
    });
  }
  JoinAll(threads);
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(RaceTest, ForcedSplitCountingRunsAgreeUnderConcurrency) {
  // split_threshold = 1 turns every root into edge-slice subtasks plus a
  // singleton fixup; run that decomposition from several driver threads
  // at once so the scheduler, the splits accounting, and the per-worker
  // counter merge all race against each other.
  const Graph g = SmallCliqueGraph(66);
  const Graph dag = testing_helpers::MakeDag(g, OrderingKind::kCore);
  constexpr std::uint32_t kK = 4;
  const std::uint64_t truth = testing_helpers::BruteForceCount(g, kK);

  constexpr int kThreads = 3;
  constexpr int kRunsPerThread = 3;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&dag, truth, &mismatches] {
      for (int run = 0; run < kRunsPerThread; ++run) {
        CountOptions options;
        options.k = kK;
        options.num_threads = 2;
        options.structure = SubgraphKind::kRemap;
        options.split_threshold = 1;
        const CountResult result = CountCliques(dag, options);
        if (result.total != BigCount{truth}) mismatches.fetch_add(1);
      }
    });
  }
  JoinAll(threads);
  EXPECT_EQ(mismatches.load(), 0);
}

// ------------------------------------------------ executor counting runs

TEST(RaceTest, ConcurrentOpenMpCountingRunsAgree) {
  // Two std::threads each running the executor-backed counting driver:
  // concurrent leases over the per-thread subgraph pools. Every run must
  // land on the brute-force count regardless of interleaving.
  const Graph g = SmallCliqueGraph(55);
  const Graph dag = testing_helpers::MakeDag(g, OrderingKind::kCore);
  constexpr std::uint32_t kK = 4;
  const std::uint64_t truth = testing_helpers::BruteForceCount(g, kK);

  constexpr int kThreads = 3;
  constexpr int kRunsPerThread = 4;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&dag, truth, t, &mismatches] {
      for (int run = 0; run < kRunsPerThread; ++run) {
        CountOptions options;
        options.k = kK;
        options.num_threads = 2;
        // Rotate the three subgraph structures so each pool type sees
        // concurrent use.
        options.structure = static_cast<SubgraphKind>((t + run) % 3);
        const CountResult result = CountCliques(dag, options);
        if (result.total != BigCount{truth}) mismatches.fetch_add(1);
      }
    });
  }
  JoinAll(threads);
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace pivotscale
