// Shared helpers for the test suite: a brute-force k-clique counter used as
// ground truth, plus small convenience builders.
#ifndef PIVOTSCALE_TESTS_TEST_HELPERS_H_
#define PIVOTSCALE_TESTS_TEST_HELPERS_H_

#include <cstdint>
#include <vector>

#include "graph/builder.h"
#include "graph/dag.h"
#include "graph/graph.h"
#include "order/ordering.h"
#include "util/uint128.h"

namespace pivotscale {
namespace testing_helpers {

// Brute-force k-clique counting by ordered extension: each partial clique
// is extended only with higher-numbered vertices adjacent to every member.
// Exponential — use only on small graphs. This is the ground truth every
// production counter is validated against.
inline std::uint64_t BruteForceCountRecurse(
    const Graph& g, std::vector<NodeId>& clique, NodeId next,
    std::uint32_t k) {
  if (clique.size() == k) return 1;
  std::uint64_t total = 0;
  for (NodeId v = next; v < g.NumNodes(); ++v) {
    bool adjacent_to_all = true;
    for (NodeId u : clique) {
      if (!g.HasEdge(u, v)) {
        adjacent_to_all = false;
        break;
      }
    }
    if (adjacent_to_all) {
      clique.push_back(v);
      total += BruteForceCountRecurse(g, clique, v + 1, k);
      clique.pop_back();
    }
  }
  return total;
}

inline std::uint64_t BruteForceCount(const Graph& g, std::uint32_t k) {
  if (k == 0) return 1;  // the empty clique
  std::vector<NodeId> clique;
  return BruteForceCountRecurse(g, clique, 0, k);
}

// Brute-force per-vertex participation: clique counts that contain vertex v.
inline std::vector<std::uint64_t> BruteForcePerVertex(const Graph& g,
                                                      std::uint32_t k) {
  std::vector<std::uint64_t> counts(g.NumNodes(), 0);
  std::vector<NodeId> clique;
  // Enumerate all k-cliques and attribute to each member.
  struct Enumerator {
    const Graph& g;
    std::uint32_t k;
    std::vector<std::uint64_t>& counts;
    std::vector<NodeId> clique;
    void Go(NodeId next) {
      if (clique.size() == k) {
        for (NodeId u : clique) ++counts[u];
        return;
      }
      for (NodeId v = next; v < g.NumNodes(); ++v) {
        bool ok = true;
        for (NodeId u : clique)
          if (!g.HasEdge(u, v)) {
            ok = false;
            break;
          }
        if (ok) {
          clique.push_back(v);
          Go(v + 1);
          clique.pop_back();
        }
      }
    }
  } e{g, k, counts, {}};
  e.Go(0);
  return counts;
}

// Directionalizes by a given ordering spec — the common test preamble.
inline Graph MakeDag(const Graph& g, OrderingKind kind) {
  OrderingSpec spec;
  spec.kind = kind;
  const Ordering ordering = ComputeOrdering(g, spec);
  return Directionalize(g, ordering.ranks);
}

}  // namespace testing_helpers
}  // namespace pivotscale

#endif  // PIVOTSCALE_TESTS_TEST_HELPERS_H_
