// Tests for the clique profile (succinct-clique-tree leaf digest), the
// color-sampling estimator, and the ASCII chart renderer.
#include <gtest/gtest.h>

#include "approx/approx_count.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "pivot/count.h"
#include "pivot/profile.h"
#include "test_helpers.h"
#include "util/ascii_chart.h"
#include "util/binomial.h"

namespace pivotscale {
namespace {

using testing_helpers::MakeDag;

// ---------------------------------------------------------------- profile

TEST(CliqueProfile, MatchesAllKOnRandomGraphs) {
  // The profile recorder is an independent implementation of the same
  // recursion; its per-size reconstruction agreeing with the production
  // all-k counter cross-checks both.
  for (int seed : {3, 4, 5}) {
    EdgeList edges = GnM(100, 700, seed);
    PlantCliques(&edges, 100, 2, 6, 10, seed + 10);
    const Graph g = BuildGraph(std::move(edges));
    const Graph dag = MakeDag(g, OrderingKind::kCore);

    const CliqueProfile profile = ComputeCliqueProfile(dag);
    CountOptions options;
    options.mode = CountMode::kAllK;
    const CountResult all = CountCliques(dag, options);

    const auto sizes = profile.PerSize();
    for (std::size_t s = 1; s < sizes.size(); ++s)
      EXPECT_EQ(sizes[s], all.per_size[s]) << "seed=" << seed << " s=" << s;
    for (std::uint32_t k : {2u, 4u, 7u})
      EXPECT_EQ(profile.CountK(k), all.per_size[k]) << k;
  }
}

TEST(CliqueProfile, CompleteGraphDigest) {
  // K_n under any order: one all-pivot chain per root; leaves have r = 1
  // and np = out-degree, so the histogram is hist[1][d] = 1 for d = 0..n-1.
  const Graph g = BuildGraph(CompleteGraph(10));
  const Graph dag = MakeDag(g, OrderingKind::kDegree);
  const CliqueProfile profile = ComputeCliqueProfile(dag);
  EXPECT_EQ(profile.TotalLeaves(), 10u);
  EXPECT_EQ(profile.MaxCliqueSize(), 10u);
  EXPECT_EQ(profile.CountK(5).value(), BinomialChoose(10, 5));
  const auto& hist = profile.histogram();
  for (std::uint32_t d = 0; d < 10; ++d) EXPECT_EQ(hist[1][d], 1u) << d;
}

TEST(CliqueProfile, AnswersManyKWithoutRecount) {
  EdgeList edges = Rmat(9, 8.0, 7);
  PlantCliques(&edges, 512, 3, 8, 14, 8);
  const Graph g = BuildGraph(std::move(edges));
  const Graph dag = MakeDag(g, OrderingKind::kCore);
  const CliqueProfile profile = ComputeCliqueProfile(dag);
  for (std::uint32_t k = 1; k <= profile.MaxCliqueSize(); ++k) {
    CountOptions options;
    options.k = k;
    EXPECT_EQ(profile.CountK(k), CountCliques(dag, options).total) << k;
  }
  // Beyond the largest clique: zero.
  EXPECT_EQ(profile.CountK(profile.MaxCliqueSize() + 1), BigCount{});
}

TEST(CliqueProfile, RejectsUndirected) {
  const Graph g = BuildGraph(CompleteGraph(4));
  EXPECT_THROW(ComputeCliqueProfile(g), std::invalid_argument);
}

// ---------------------------------------------------------- color sampling

TEST(ColorSampling, UnbiasedOnCompleteGraph) {
  // K_20 triangles: C(20,3) = 1140. With enough repeats the mean lands
  // within a few standard errors.
  const Graph g = BuildGraph(CompleteGraph(20));
  ColorSamplingConfig config;
  config.colors = 2;
  config.repeats = 40;
  config.seed = 5;
  const ApproxCountResult r = ColorSamplingCount(g, 3, config);
  const double exact = ToDouble(BinomialChoose(20, 3));
  EXPECT_NEAR(r.estimate_double, exact,
              4 * r.relative_std_error * r.estimate_double + 0.05 * exact);
}

TEST(ColorSampling, ReportsSpeedRelevantFields) {
  EdgeList edges = GnM(300, 2500, 9);
  PlantCliques(&edges, 300, 2, 6, 9, 10);
  const Graph g = BuildGraph(std::move(edges));
  const ApproxCountResult r = ColorSamplingCount(g, 4, {});
  EXPECT_GT(r.estimate_double, 0.0);
  EXPECT_GT(r.relative_std_error, 0.0);
  EXPECT_EQ(r.roots_sampled, 5u);  // default repeats
}

TEST(ColorSampling, Validates) {
  const Graph g = BuildGraph(CompleteGraph(5));
  ColorSamplingConfig config;
  config.colors = 1;
  EXPECT_THROW(ColorSamplingCount(g, 3, config), std::invalid_argument);
  config.colors = 4;
  config.repeats = 0;
  EXPECT_THROW(ColorSamplingCount(g, 3, config), std::invalid_argument);
  config.repeats = 2;
  EXPECT_THROW(ColorSamplingCount(g, 1, config), std::invalid_argument);
}

// ---------------------------------------------------------------- charts

TEST(AsciiChart, RendersAllSeriesAndLabels) {
  const std::vector<std::string> xs = {"6", "8", "10"};
  const std::vector<ChartSeries> series = {
      {"alpha", {1.0, 2.0, 3.0}},
      {"beta", {3.0, 2.0, 1.0}},
  };
  const std::string chart = RenderChart(xs, series);
  EXPECT_NE(chart.find("alpha"), std::string::npos);
  EXPECT_NE(chart.find("beta"), std::string::npos);
  EXPECT_NE(chart.find('*'), std::string::npos);
  EXPECT_NE(chart.find('o'), std::string::npos);
  EXPECT_NE(chart.find("10"), std::string::npos);
}

TEST(AsciiChart, LogScaleHandlesWideRange) {
  ChartOptions options;
  options.log_y = true;
  const std::string chart = RenderChart(
      {"a", "b"}, {{"s", {0.001, 1000.0}}}, options);
  EXPECT_FALSE(chart.empty());
  // Extremes land on the top and bottom plot rows.
  const std::size_t first_line = chart.find('\n');
  EXPECT_NE(chart.substr(0, first_line).find('*'), std::string::npos);
}

TEST(AsciiChart, EmptyInputsAreEmpty) {
  EXPECT_TRUE(RenderChart({}, {{"s", {}}}).empty());
  EXPECT_TRUE(RenderChart({"a"}, {}).empty());
  EXPECT_TRUE(RenderBars({}, {}).empty());
}

TEST(AsciiChart, BarsProportional) {
  const std::string bars =
      RenderBars({"small", "large"}, {1.0, 10.0}, 40);
  // The larger value gets ~10x the bar length.
  const std::size_t small_line = bars.find("small");
  const std::size_t large_line = bars.find("large");
  ASSERT_NE(small_line, std::string::npos);
  ASSERT_NE(large_line, std::string::npos);
  auto count_hashes = [&](std::size_t from) {
    std::size_t count = 0;
    for (std::size_t i = from; i < bars.size() && bars[i] != '\n'; ++i)
      if (bars[i] == '#') ++count;
    return count;
  };
  EXPECT_EQ(count_hashes(large_line), 40u);
  EXPECT_LE(count_hashes(small_line), 5u);
}

}  // namespace
}  // namespace pivotscale
