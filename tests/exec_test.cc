// Unit tests for the unified execution layer (src/exec/) and the shared
// --threads flag validation (util/cli.h):
//   * ThreadBudget lease accounting: grant rules, min-1 progress, release
//   * BuildChunkBounds invariants in uniform and cost-weighted modes
//   * ParallelFor / ParallelReduce / ParallelForWorkers correctness and
//     realized-team-sized ExecStats
//   * exec.* telemetry emitted by a region
//   * ArgParser::GetThreads rejecting 0 / negative / absurd values
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "exec/executor.h"
#include "exec/thread_budget.h"
#include "util/cli.h"
#include "util/telemetry.h"

namespace pivotscale {
namespace {

// ------------------------------------------------------------ ThreadBudget

TEST(ThreadBudget, GrantsUpToCapacityAndReleasesOnDestruction) {
  ThreadBudget budget(4);
  EXPECT_EQ(budget.capacity(), 4);
  EXPECT_EQ(budget.in_use(), 0);
  {
    ThreadLease lease = budget.Acquire(3);
    EXPECT_EQ(lease.threads(), 3);
    EXPECT_EQ(budget.in_use(), 3);
  }
  EXPECT_EQ(budget.in_use(), 0);
}

TEST(ThreadBudget, RequestZeroMeansEverythingFree) {
  ThreadBudget budget(4);
  ThreadLease first = budget.Acquire(1);
  ThreadLease rest = budget.Acquire(0);
  EXPECT_EQ(rest.threads(), 3);
  EXPECT_EQ(budget.in_use(), 4);
}

TEST(ThreadBudget, AbsurdRequestIsCappedAtCapacity) {
  ThreadBudget budget(2);
  ThreadLease lease = budget.Acquire(1'000'000);
  EXPECT_EQ(lease.threads(), 2);
}

TEST(ThreadBudget, ExhaustedBudgetStillGrantsOneThread) {
  // The min-1 progress rule: a lease is never 0 threads, so a counting
  // run that arrives while the machine is fully leased still advances
  // (the busy total may exceed capacity by one per concurrent lease —
  // never multiplicatively).
  ThreadBudget budget(2);
  ThreadLease all = budget.Acquire(0);
  EXPECT_EQ(all.threads(), 2);
  ThreadLease extra = budget.Acquire(2);
  EXPECT_EQ(extra.threads(), 1);
  EXPECT_EQ(budget.in_use(), 3);
}

TEST(ThreadBudget, MoveTransfersTheGrant) {
  ThreadBudget budget(4);
  ThreadLease a = budget.Acquire(2);
  ThreadLease b = std::move(a);
  EXPECT_EQ(a.threads(), 0);
  EXPECT_EQ(b.threads(), 2);
  EXPECT_EQ(budget.in_use(), 2);
  b = ThreadLease();
  EXPECT_EQ(budget.in_use(), 0);
}

TEST(ThreadBudget, SetCapacityAppliesToLaterLeases) {
  ThreadBudget budget(8);
  budget.SetCapacity(2);
  EXPECT_EQ(budget.capacity(), 2);
  ThreadLease lease = budget.Acquire(0);
  EXPECT_EQ(lease.threads(), 2);
}

TEST(ThreadBudget, GlobalCapacityIsPositive) {
  EXPECT_GE(ThreadBudget::Global().capacity(), 1);
}

// --------------------------------------------------------- chunk geometry

void ExpectValidBounds(const std::vector<std::size_t>& bounds,
                       std::size_t n) {
  ASSERT_GE(bounds.size(), 1u);
  EXPECT_EQ(bounds.front(), 0u);
  if (n == 0) {
    EXPECT_EQ(bounds.size(), 1u);  // zero chunks
    return;
  }
  EXPECT_EQ(bounds.back(), n);
  for (std::size_t c = 1; c < bounds.size(); ++c)
    EXPECT_LT(bounds[c - 1], bounds[c]) << "chunk " << c;
}

TEST(ChunkBounds, UniformModeCoversRangeExactly) {
  ExecOptions options;
  options.chunks_per_worker = 4;
  const auto bounds = exec_detail::BuildChunkBounds(100, 2, options);
  ExpectValidBounds(bounds, 100);
  EXPECT_GE(bounds.size() - 1, 2u);   // more than one chunk for 100 items
  EXPECT_LE(bounds.size() - 1, 8u);   // at most team * chunks_per_worker
}

TEST(ChunkBounds, EmptyRangeYieldsZeroChunks) {
  ExecOptions options;
  const auto bounds = exec_detail::BuildChunkBounds(0, 4, options);
  ExpectValidBounds(bounds, 0);
}

TEST(ChunkBounds, GrainIsAFloorOnChunkSize) {
  ExecOptions options;
  options.grain = 25;
  options.chunks_per_worker = 16;
  const auto bounds = exec_detail::BuildChunkBounds(100, 4, options);
  ExpectValidBounds(bounds, 100);
  for (std::size_t c = 1; c < bounds.size(); ++c)
    EXPECT_GE(bounds[c] - bounds[c - 1], 25u) << "chunk " << c;
}

TEST(ChunkBounds, CostWeightedCutsEqualizeEstimatedWork) {
  // Item 0 carries ~as much estimated work as the rest combined: the
  // first cut must come right after it instead of waiting for n/chunks
  // items.
  ExecOptions options;
  options.chunks_per_worker = 2;
  options.cost = [](std::size_t i) { return i == 0 ? 1000.0 : 1.0; };
  const auto bounds = exec_detail::BuildChunkBounds(1000, 2, options);
  ExpectValidBounds(bounds, 1000);
  ASSERT_GE(bounds.size(), 3u);
  EXPECT_LE(bounds[1], 10u) << "heavy head item should end its chunk early";
}

TEST(ChunkBounds, CostWeightedRespectsGrain) {
  ExecOptions options;
  options.grain = 10;
  options.chunks_per_worker = 64;
  options.cost = [](std::size_t) { return 1.0; };
  const auto bounds = exec_detail::BuildChunkBounds(200, 4, options);
  ExpectValidBounds(bounds, 200);
  // Every chunk but the last must honor the grain floor (the tail keeps
  // whatever is left).
  for (std::size_t c = 1; c + 1 < bounds.size(); ++c)
    EXPECT_GE(bounds[c] - bounds[c - 1], 10u) << "chunk " << c;
}

// ------------------------------------------------------- region semantics

TEST(Executor, ParallelForVisitsEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 5000;
  std::vector<int> visits(kN, 0);
  ExecOptions options;
  options.num_threads = 2;
  const ExecStats stats =
      ParallelFor(kN, options, [&visits](std::size_t i) { ++visits[i]; });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(visits[i], 1) << i;
  EXPECT_EQ(stats.tasks, kN);
  EXPECT_GE(stats.team, 1);
}

TEST(Executor, ParallelReduceMatchesClosedForm) {
  constexpr std::size_t kN = 4097;
  ExecOptions options;
  options.num_threads = 2;
  const std::uint64_t total = ParallelReduce(
      kN, options, std::uint64_t{0},
      [](std::uint64_t& acc, std::size_t i) { acc += i; },
      [](std::uint64_t& into, std::uint64_t from) { into += from; });
  EXPECT_EQ(total, kN * (kN - 1) / 2);
}

TEST(Executor, StatsAreSizedToRealizedTeam) {
  ExecOptions options;
  options.num_threads = 2;
  const ExecStats stats = ParallelFor(1000, options, [](std::size_t) {});
  ASSERT_GE(stats.team, 1);
  EXPECT_EQ(stats.worker_busy_seconds.size(),
            static_cast<std::size_t>(stats.team));
  EXPECT_EQ(stats.worker_chunks.size(),
            static_cast<std::size_t>(stats.team));
  const std::uint64_t chunks_run = std::accumulate(
      stats.worker_chunks.begin(), stats.worker_chunks.end(),
      std::uint64_t{0});
  EXPECT_EQ(chunks_run, stats.chunks);
  EXPECT_GT(stats.chunks, 0u);
}

TEST(Executor, EveryRealizedWorkerIsMergedOnce) {
  ExecOptions options;
  options.num_threads = 2;
  int built = 0;
  int merged = 0;
  ParallelForWorkers(
      100, options,
      [&built](int) {
        ++built;  // workers are constructed inside the region, one per tid
        return 0;
      },
      [](int& acc, std::size_t) { ++acc; },
      [&merged](int& acc) {
        ++merged;
        EXPECT_GE(acc, 0);
      });
  EXPECT_EQ(merged, built);
  EXPECT_GE(built, 1);
}

TEST(Executor, EmptyRangeStillMergesWorkers) {
  ExecOptions options;
  int merged = 0;
  const ExecStats stats = ParallelForWorkers(
      0, options, [](int) { return 0; }, [](int&, std::size_t) {},
      [&merged](int&) { ++merged; });
  EXPECT_EQ(stats.chunks, 0u);
  EXPECT_GE(merged, 1);
}

TEST(Executor, RegionRecordsExecTelemetry) {
  TelemetryRegistry telemetry;
  ExecOptions options;
  options.num_threads = 2;
  options.splits = 7;
  options.telemetry = &telemetry;
  ParallelFor(500, options, [](std::size_t) {});
  EXPECT_EQ(telemetry.Counter("exec.regions"), 1u);
  EXPECT_EQ(telemetry.Counter("exec.tasks"), 500u);
  EXPECT_GT(telemetry.Counter("exec.chunks"), 0u);
  EXPECT_EQ(telemetry.Counter("exec.splits"), 7u);
  const std::vector<double> busy =
      telemetry.Series("exec.worker_busy_seconds");
  EXPECT_EQ(busy.size(), static_cast<std::size_t>(telemetry.Gauge("exec.team")));
  EXPECT_TRUE(telemetry.HasSpan("exec.region_wall"));
}

// --------------------------------------------------- --threads validation

ArgParser ParseArgs(std::vector<std::string> args) {
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (std::string& arg : args) argv.push_back(arg.data());
  return ArgParser(static_cast<int>(argv.size()), argv.data());
}

TEST(ThreadsFlag, AbsentFallsBackToDefault) {
  EXPECT_EQ(ParseArgs({"bin"}).GetThreads(), 0);
  EXPECT_EQ(ParseArgs({"bin"}).GetThreads("workers", 2), 2);
}

TEST(ThreadsFlag, ExplicitValueInRangeIsAccepted) {
  EXPECT_EQ(ParseArgs({"bin", "--threads", "3"}).GetThreads(), 3);
  EXPECT_EQ(ParseArgs({"bin", "--threads=1"}).GetThreads(), 1);
  EXPECT_EQ(ParseArgs({"bin", "--threads", "4096"}).GetThreads(), 4096);
  EXPECT_EQ(ParseArgs({"bin", "--workers=8"}).GetThreads("workers", 2), 8);
}

TEST(ThreadsFlag, ZeroNegativeAndAbsurdAreRejected) {
  EXPECT_THROW(ParseArgs({"bin", "--threads", "0"}).GetThreads(),
               std::runtime_error);
  EXPECT_THROW(ParseArgs({"bin", "--threads=-3"}).GetThreads(),
               std::runtime_error);
  EXPECT_THROW(ParseArgs({"bin", "--threads", "4097"}).GetThreads(),
               std::runtime_error);
  EXPECT_THROW(ParseArgs({"bin", "--threads", "100000"}).GetThreads(),
               std::runtime_error);
  EXPECT_THROW(ParseArgs({"bin", "--workers=0"}).GetThreads("workers", 2),
               std::runtime_error);
}

TEST(ThreadsFlag, UnparseableValueIsRejected) {
  EXPECT_THROW(ParseArgs({"bin", "--threads", "two"}).GetThreads(),
               std::runtime_error);
}

}  // namespace
}  // namespace pivotscale
