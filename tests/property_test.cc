// Property-style invariants of exact clique counting, exercised through
// the production pipeline (not brute force): any total order is a valid
// ordering, counts add over disjoint unions, counts are monotone under
// edge insertion, and structural no-ops leave counts unchanged.
#include <gtest/gtest.h>

#include <numeric>
#include <tuple>

#include "graph/builder.h"
#include "graph/dag.h"
#include "graph/generators.h"
#include "graph/transform.h"
#include "pivot/count.h"
#include "test_helpers.h"
#include "util/binomial.h"
#include "util/rng.h"

namespace pivotscale {
namespace {

using testing_helpers::MakeDag;

BigCount CountWith(const Graph& g, std::uint32_t k,
                   std::span<const NodeId> ranks) {
  const Graph dag = Directionalize(g, ranks);
  CountOptions options;
  options.k = k;
  return CountCliques(dag, options).total;
}

// ---------------------------------------------------- ordering invariance

class RandomOrderInvariance
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RandomOrderInvariance, AnyPermutationCountsTheSame) {
  const auto [seed, k] = GetParam();
  EdgeList edges = Rmat(9, 6.0, static_cast<std::uint64_t>(seed));
  PlantCliques(&edges, 512, 3, 5, 10, static_cast<std::uint64_t>(seed) + 100);
  const Graph g = BuildGraph(std::move(edges));

  // Reference: core ordering.
  const BigCount reference = CountWith(
      g, static_cast<std::uint32_t>(k),
      ComputeOrdering(g, {OrderingKind::kCore}).ranks);

  // Three random total orders must give identical counts — the counting
  // theorem depends only on acyclicity, not ordering quality.
  Rng rng(static_cast<std::uint64_t>(seed) * 7 + 1);
  for (int trial = 0; trial < 3; ++trial) {
    std::vector<NodeId> ranks(g.NumNodes());
    std::iota(ranks.begin(), ranks.end(), NodeId{0});
    for (NodeId i = g.NumNodes(); i > 1; --i)
      std::swap(ranks[i - 1], ranks[rng.Below(i)]);
    EXPECT_EQ(CountWith(g, static_cast<std::uint32_t>(k), ranks),
              reference)
        << "seed=" << seed << " k=" << k << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomOrderInvariance,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4),
                                            ::testing::Values(3, 5, 8)));

// ---------------------------------------------------- union additivity

TEST(CountingInvariants, DisjointUnionAddsViaPipeline) {
  EdgeList ea = GnM(200, 900, 21);
  PlantCliques(&ea, 200, 2, 6, 9, 22);
  const Graph a = BuildGraph(std::move(ea));
  const Graph b = BuildGraph(Rmat(8, 8.0, 23));
  const Graph u = DisjointUnion(a, b);
  for (std::uint32_t k : {3u, 5u, 7u}) {
    const BigCount ca = CountWith(
        a, k, ComputeOrdering(a, {OrderingKind::kCore}).ranks);
    const BigCount cb = CountWith(
        b, k, ComputeOrdering(b, {OrderingKind::kCore}).ranks);
    const BigCount cu = CountWith(
        u, k, ComputeOrdering(u, {OrderingKind::kCore}).ranks);
    EXPECT_EQ(cu, ca + cb) << k;
  }
}

// ---------------------------------------------------- edge monotonicity

TEST(CountingInvariants, AddingEdgesNeverDecreasesCounts) {
  Rng rng(31);
  EdgeList edges = GnM(60, 200, 33);
  Graph g = BuildUndirected(EdgeList(edges), 60);
  BigCount last = CountWith(
      g, 4, ComputeOrdering(g, {OrderingKind::kDegree}).ranks);
  for (int step = 0; step < 10; ++step) {
    // Add 20 random (possibly duplicate) edges.
    for (int i = 0; i < 20; ++i) {
      const NodeId u = static_cast<NodeId>(rng.Below(60));
      const NodeId v = static_cast<NodeId>(rng.Below(60));
      if (u != v) edges.emplace_back(u, v);
    }
    g = BuildUndirected(EdgeList(edges), 60);
    const BigCount now = CountWith(
        g, 4, ComputeOrdering(g, {OrderingKind::kDegree}).ranks);
    EXPECT_GE(now, last) << step;
    last = now;
  }
}

TEST(CountingInvariants, FillingToCompleteReachesBinomial) {
  // Keep adding all missing edges: the final count is C(n, k).
  const NodeId n = 18;
  const Graph g = BuildGraph(CompleteGraph(n));
  for (std::uint32_t k = 2; k <= 6; ++k) {
    EXPECT_EQ(
        CountWith(g, k, ComputeOrdering(g, {OrderingKind::kCore}).ranks)
            .value(),
        BinomialChoose(n, k));
  }
}

// ---------------------------------------------------- structural no-ops

TEST(CountingInvariants, IsolatedVerticesDontMatter) {
  EdgeList edges = GnM(80, 400, 41);
  const Graph tight = BuildGraph(EdgeList(edges));
  const Graph padded = BuildUndirected(EdgeList(edges), 200);
  for (std::uint32_t k : {2u, 4u, 6u}) {
    EXPECT_EQ(
        CountWith(tight, k,
                  ComputeOrdering(tight, {OrderingKind::kCore}).ranks),
        CountWith(padded, k,
                  ComputeOrdering(padded, {OrderingKind::kCore}).ranks))
        << k;
  }
}

TEST(CountingInvariants, PendantVertexOnlyAddsAnEdge) {
  EdgeList edges = GnM(50, 300, 43);
  const Graph base = BuildUndirected(EdgeList(edges), 51);
  edges.emplace_back(7, 50);  // vertex 50 becomes a pendant of 7
  const Graph pendant = BuildUndirected(std::move(edges), 51);

  const auto count = [](const Graph& g, std::uint32_t k) {
    return CountWith(g, k,
                     ComputeOrdering(g, {OrderingKind::kDegree}).ranks);
  };
  EXPECT_EQ(count(pendant, 2), count(base, 2) + BigCount{1});
  EXPECT_EQ(count(pendant, 3), count(base, 3));
  EXPECT_EQ(count(pendant, 5), count(base, 5));
}

TEST(CountingInvariants, RelabelingIsInvariant) {
  EdgeList edges = Rmat(8, 8.0, 47);
  PlantCliques(&edges, 256, 2, 6, 10, 48);
  EdgeList shuffled = edges;
  ShuffleVertexIds(&shuffled, 256, 49);
  const Graph a = BuildUndirected(std::move(edges), 256);
  const Graph b = BuildUndirected(std::move(shuffled), 256);
  for (std::uint32_t k : {3u, 6u, 9u}) {
    EXPECT_EQ(
        CountWith(a, k, ComputeOrdering(a, {OrderingKind::kCore}).ranks),
        CountWith(b, k, ComputeOrdering(b, {OrderingKind::kCore}).ranks))
        << k;
  }
}

// ------------------------------------------- small-world generator counts

TEST(CountingInvariants, WattsStrogatzLatticeClosedForm) {
  // Ring lattice (no rewiring), k_nearest = 4: each vertex closes exactly
  // its two "adjacent step" triangles; total triangles = n (for n > 6):
  // triangle {u, u+1, u+2} once per u plus no others.
  const NodeId n = 40;
  const Graph g = BuildGraph(WattsStrogatz(n, 4, 0.0, 1));
  const BigCount triangles = CountWith(
      g, 3, ComputeOrdering(g, {OrderingKind::kDegree}).ranks);
  EXPECT_EQ(triangles.value(), static_cast<uint128>(n));
}

}  // namespace
}  // namespace pivotscale
