// Store subsystem tests: .psx artifacts must round-trip bit-exactly
// against a fresh pipeline run, reject version/endianness mismatches, and
// fail the checksum on any bit flip — plus the atomic-write contract every
// artifact writer shares.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "order/core_order.h"
#include "pivot/pivotscale.h"
#include "store/artifact.h"
#include "store/checksum.h"
#include "util/atomic_file.h"
#include "util/telemetry.h"

namespace pivotscale {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(::testing::TempDir() + "/" + name) {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// A clique-rich test graph, deterministic across runs.
Graph TestGraph() {
  EdgeList edges = Rmat(9, 6.0, 7);
  PlantCliques(&edges, 512, 6, 5, 9, 3);
  return BuildGraph(std::move(edges));
}

// ------------------------------------------------------------- checksum

TEST(Crc64, KnownVectorAndIncrementalAgree) {
  // CRC-64/XZ check value for "123456789".
  const char* check = "123456789";
  EXPECT_EQ(Crc64(check, 9), 0x995DC9BBDF1939FAull);

  std::uint64_t state = Crc64Init();
  state = Crc64Update(state, check, 4);
  state = Crc64Update(state, check + 4, 5);
  EXPECT_EQ(Crc64Final(state), Crc64(check, 9));
}

TEST(Crc64, DetectsEverySingleBitFlipOfASmallPayload) {
  std::string payload = "pivotscale artifact payload";
  const std::uint64_t clean = Crc64(payload.data(), payload.size());
  for (std::size_t byte = 0; byte < payload.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      payload[byte] ^= static_cast<char>(1 << bit);
      EXPECT_NE(Crc64(payload.data(), payload.size()), clean)
          << "undetected flip at byte " << byte << " bit " << bit;
      payload[byte] ^= static_cast<char>(1 << bit);
    }
  }
}

// ------------------------------------------------------------ round trip

TEST(Artifact, RoundTripMatchesFreshPipelineRun) {
  const Graph g = TestGraph();
  const GraphArtifact built = BuildArtifact(g);
  TempFile f("roundtrip.psx");
  WriteArtifact(f.path(), built);
  const GraphArtifact loaded = ReadArtifact(f.path());

  EXPECT_EQ(loaded.graph.offsets(), built.graph.offsets());
  EXPECT_EQ(loaded.graph.neighbor_array(), built.graph.neighbor_array());
  EXPECT_TRUE(loaded.graph.undirected());
  EXPECT_EQ(loaded.dag.offsets(), built.dag.offsets());
  EXPECT_EQ(loaded.dag.neighbor_array(), built.dag.neighbor_array());
  EXPECT_FALSE(loaded.dag.undirected());
  EXPECT_EQ(loaded.ranks, built.ranks);
  EXPECT_EQ(loaded.ordering_name, built.ordering_name);
  EXPECT_EQ(loaded.max_out_degree, built.max_out_degree);
  EXPECT_EQ(loaded.degeneracy, built.degeneracy);
  EXPECT_EQ(loaded.degeneracy, Degeneracy(g));

  // Counting on the loaded DAG must match the fresh pipeline exactly.
  for (std::uint32_t k : {3u, 5u, 7u}) {
    CountOptions copts;
    copts.k = k;
    const BigCount from_store =
        CountCliques(loaded.dag, copts).total;
    EXPECT_EQ(from_store, CountKCliquesSimple(g, k)) << "k=" << k;
  }
}

TEST(Artifact, ForcedOrderingAndSkippedDegeneracy) {
  const Graph g = TestGraph();
  ArtifactBuildOptions options;
  options.forced_ordering = OrderingSpec{OrderingKind::kCore};
  options.compute_degeneracy = false;
  const GraphArtifact built = BuildArtifact(g, options);
  EXPECT_EQ(built.ordering_name, "core");
  EXPECT_EQ(built.degeneracy, 0u);
  // The core ordering provably achieves max out-degree == degeneracy.
  EXPECT_EQ(built.max_out_degree, Degeneracy(g));
}

TEST(Artifact, BuildRecordsStoreSpans) {
  TelemetryRegistry telemetry;
  ArtifactBuildOptions options;
  options.telemetry = &telemetry;
  BuildArtifact(TestGraph(), options);
  EXPECT_TRUE(telemetry.HasSpan("store.heuristic"));
  EXPECT_TRUE(telemetry.HasSpan("store.ordering"));
  EXPECT_TRUE(telemetry.HasSpan("store.directionalize"));
  EXPECT_TRUE(telemetry.HasSpan("store.degeneracy"));
}

// ------------------------------------------------------------- rejection

class ArtifactFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    file_ = std::make_unique<TempFile>("reject.psx");
    WriteArtifact(file_->path(), BuildArtifact(TestGraph()));
    bytes_ = ReadAll(file_->path());
    ASSERT_GT(bytes_.size(), 100u);
  }

  void ExpectThrowContaining(const std::string& what) {
    WriteAll(file_->path(), bytes_);
    try {
      ReadArtifact(file_->path());
      FAIL() << "expected rejection mentioning \"" << what << "\"";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(what), std::string::npos)
          << "actual error: " << e.what();
    }
  }

  std::unique_ptr<TempFile> file_;
  std::string bytes_;
};

TEST_F(ArtifactFileTest, RejectsBadMagic) {
  bytes_[0] = 'Q';
  ExpectThrowContaining("not a PSX1 artifact");
}

TEST_F(ArtifactFileTest, RejectsUnsupportedVersion) {
  bytes_[4] = 2;  // version field (little-endian u32 at offset 4)
  ExpectThrowContaining("unsupported artifact version 2");
}

TEST_F(ArtifactFileTest, RejectsForeignEndianness) {
  // Byte-swap the endianness sentinel, as a big-endian writer would have
  // laid it down.
  std::swap(bytes_[8], bytes_[11]);
  std::swap(bytes_[9], bytes_[10]);
  ExpectThrowContaining("endianness mismatch");
}

TEST_F(ArtifactFileTest, BitFlipAnywhereFailsChecksum) {
  // Flip one bit in the middle of the CSR payload and near the end.
  for (const std::size_t pos :
       {bytes_.size() / 2, bytes_.size() - 16}) {
    SCOPED_TRACE(pos);
    bytes_[pos] ^= 0x10;
    ExpectThrowContaining("checksum mismatch");
    bytes_[pos] ^= 0x10;
  }
}

TEST_F(ArtifactFileTest, RejectsTruncation) {
  bytes_.resize(bytes_.size() / 2);
  ExpectThrowContaining("checksum mismatch");
}

TEST_F(ArtifactFileTest, RejectsTruncatedHeader) {
  bytes_.resize(10);
  ExpectThrowContaining("truncated");
}

// ---------------------------------------------------------- atomic write

TEST(AtomicFile, WritesAndOverwrites) {
  TempFile f("atomic.txt");
  WriteFileAtomic(f.path(), "first");
  EXPECT_EQ(ReadAll(f.path()), "first");
  WriteFileAtomic(f.path(), "second, longer payload");
  EXPECT_EQ(ReadAll(f.path()), "second, longer payload");
}

TEST(AtomicFile, FailedWriteLeavesNoFile) {
  const std::string path =
      ::testing::TempDir() + "/no_such_dir/out.bin";
  EXPECT_THROW(WriteFileAtomic(path, "payload"), std::runtime_error);
  std::ifstream in(path);
  EXPECT_FALSE(static_cast<bool>(in));
}

TEST(AtomicFile, BinaryGraphWriterGoesThroughTempRename) {
  // WriteBinaryGraph must land the complete file under the final name and
  // leave no temp droppings next to it.
  TempFile f("atomic_graph.psg");
  const Graph g = TestGraph();
  WriteBinaryGraph(f.path(), g);
  const Graph loaded = ReadBinaryGraph(f.path());
  EXPECT_EQ(loaded.offsets(), g.offsets());
  EXPECT_EQ(loaded.neighbor_array(), g.neighbor_array());
  std::ifstream tmp(f.path() + ".tmp." + std::to_string(::getpid()));
  EXPECT_FALSE(static_cast<bool>(tmp));
}

TEST(AtomicFile, RunReportWriterIsAtomic) {
  TempFile f("atomic_report.json");
  TelemetryRegistry telemetry;
  telemetry.AddCounter("demo", 1);
  WriteRunReport(f.path(), telemetry);
  const std::string report = ReadAll(f.path());
  EXPECT_NE(report.find("\"demo\""), std::string::npos);
  std::ifstream tmp(f.path() + ".tmp." + std::to_string(::getpid()));
  EXPECT_FALSE(static_cast<bool>(tmp));
}

}  // namespace
}  // namespace pivotscale
