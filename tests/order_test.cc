// Tests for the ordering library: permutation validity, degeneracy
// guarantees, approximation quality, and the selection heuristic.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/builder.h"
#include "graph/dag.h"
#include "graph/generators.h"
#include "order/approx_core_order.h"
#include "order/centrality_order.h"
#include "order/core_order.h"
#include "order/degree_order.h"
#include "order/heuristic.h"
#include "order/kcore_order.h"
#include "order/ordering.h"
#include "util/telemetry.h"

namespace pivotscale {
namespace {

// Reference degeneracy: repeatedly strip min-degree vertices, O(n^2).
EdgeId ReferenceDegeneracy(const Graph& g) {
  const NodeId n = g.NumNodes();
  std::vector<EdgeId> degree(n);
  std::vector<bool> removed(n, false);
  for (NodeId u = 0; u < n; ++u) degree[u] = g.Degree(u);
  EdgeId degeneracy = 0;
  for (NodeId step = 0; step < n; ++step) {
    NodeId best = 0;
    EdgeId best_degree = ~EdgeId{0};
    for (NodeId u = 0; u < n; ++u)
      if (!removed[u] && degree[u] < best_degree) {
        best = u;
        best_degree = degree[u];
      }
    removed[best] = true;
    degeneracy = std::max(degeneracy, best_degree);
    for (NodeId v : g.Neighbors(best))
      if (!removed[v]) --degree[v];
  }
  return degeneracy;
}

// Reference coreness: iterate peeling at each level, O(n^2).
std::vector<EdgeId> ReferenceCoreness(const Graph& g) {
  const NodeId n = g.NumNodes();
  std::vector<EdgeId> degree(n), coreness(n, 0);
  std::vector<bool> removed(n, false);
  for (NodeId u = 0; u < n; ++u) degree[u] = g.Degree(u);
  NodeId left = n;
  EdgeId level = 0;
  while (left > 0) {
    bool any = true;
    while (any) {
      any = false;
      for (NodeId u = 0; u < n; ++u) {
        if (!removed[u] && degree[u] <= level) {
          removed[u] = true;
          coreness[u] = level;
          --left;
          any = true;
          for (NodeId v : g.Neighbors(u))
            if (!removed[v]) --degree[v];
        }
      }
    }
    ++level;
  }
  return coreness;
}

std::vector<Graph> TestGraphs() {
  std::vector<Graph> graphs;
  graphs.push_back(BuildGraph(CompleteGraph(12)));
  graphs.push_back(BuildGraph(PathGraph(30)));
  graphs.push_back(BuildGraph(StarGraph(20)));
  graphs.push_back(BuildGraph(Rmat(9, 6.0, 3)));
  graphs.push_back(BuildGraph(ErdosRenyi(60, 0.15, 5)));
  {
    EdgeList edges = GnM(100, 300, 7);
    PlantCliques(&edges, 100, 2, 8, 12, 9);
    graphs.push_back(BuildGraph(std::move(edges)));
  }
  return graphs;
}

// ---------------------------------------------------------------- validity

TEST(Orderings, AllProducePermutations) {
  for (const Graph& g : TestGraphs()) {
    for (auto kind :
         {OrderingKind::kDegree, OrderingKind::kCore,
          OrderingKind::kApproxCore, OrderingKind::kKCore,
          OrderingKind::kCentrality}) {
      const Ordering o = ComputeOrdering(g, {kind, -0.5, 3});
      EXPECT_EQ(o.ranks.size(), g.NumNodes());
      EXPECT_TRUE(IsPermutation(o.ranks)) << o.name;
    }
  }
}

TEST(Orderings, SpecNamesAreDistinct) {
  EXPECT_EQ(OrderingSpecName({OrderingKind::kDegree}), "degree");
  EXPECT_EQ(OrderingSpecName({OrderingKind::kCore}), "core");
  EXPECT_NE(OrderingSpecName({OrderingKind::kApproxCore, -0.5}),
            OrderingSpecName({OrderingKind::kApproxCore, 0.1}));
}

TEST(RanksFromKeys, TiebreaksById) {
  const std::vector<std::uint64_t> keys = {5, 5, 1, 5};
  const auto ranks = RanksFromKeys(keys);
  EXPECT_EQ(ranks[2], 0u);  // lowest key first
  EXPECT_LT(ranks[0], ranks[1]);  // id order among ties
  EXPECT_LT(ranks[1], ranks[3]);
}

TEST(PackKey, OrdersLexicographically) {
  EXPECT_LT(PackKey(1, 1000), PackKey(2, 0));
  EXPECT_LT(PackKey(1, 5), PackKey(1, 6));
}

// ---------------------------------------------------------------- degree

TEST(DegreeOrdering, RanksAscendByDegree) {
  const Graph g = BuildGraph(StarGraph(10));
  const Ordering o = DegreeOrdering(g);
  // The hub (degree 9) must be ranked last.
  EXPECT_EQ(o.ranks[0], g.NumNodes() - 1);
}

TEST(DegreeOrdering, MaxOutDegreeOnStarIsOne)  {
  // Directing low->high degree turns a star into leaves -> hub: every
  // out-degree is 1.
  const Graph g = BuildGraph(StarGraph(10));
  const Graph dag = Directionalize(g, DegreeOrdering(g).ranks);
  EXPECT_EQ(MaxOutDegree(dag), 1u);
}

// ---------------------------------------------------------------- core

TEST(CoreOrdering, AchievesDegeneracyBound) {
  for (const Graph& g : TestGraphs()) {
    const EdgeId degeneracy = ReferenceDegeneracy(g);
    const Graph dag = Directionalize(g, CoreOrdering(g).ranks);
    EXPECT_LE(MaxOutDegree(dag), degeneracy);
  }
}

TEST(CoreOrdering, DegeneracyMatchesReference) {
  for (const Graph& g : TestGraphs())
    EXPECT_EQ(Degeneracy(g), ReferenceDegeneracy(g));
}

TEST(CoreOrdering, CompleteGraphDegeneracy) {
  const Graph g = BuildGraph(CompleteGraph(9));
  EXPECT_EQ(Degeneracy(g), 8u);
}

TEST(CoreOrdering, TreeDegeneracyIsOne) {
  const Graph g = BuildGraph(PathGraph(50));
  EXPECT_EQ(Degeneracy(g), 1u);
}

TEST(CoreOrdering, NoOrderingBeatsDegeneracy) {
  // The core ordering is optimal: every other ordering's max out-degree is
  // at least the degeneracy.
  for (const Graph& g : TestGraphs()) {
    const EdgeId degeneracy = Degeneracy(g);
    for (auto kind : {OrderingKind::kDegree, OrderingKind::kApproxCore,
                      OrderingKind::kKCore, OrderingKind::kCentrality}) {
      const Graph dag =
          Directionalize(g, ComputeOrdering(g, {kind, -0.5, 3}).ranks);
      EXPECT_GE(MaxOutDegree(dag), degeneracy)
          << OrderingSpecName({kind});
    }
  }
}

// ---------------------------------------------------------------- approx core

TEST(ApproxCore, LowEpsilonMatchesCoreQuality) {
  // The paper's headline: eps = -0.5 typically reproduces the core
  // ordering's max out-degree.
  for (const Graph& g : TestGraphs()) {
    const Graph core_dag = Directionalize(g, CoreOrdering(g).ranks);
    const Graph approx_dag =
        Directionalize(g, ApproxCoreOrdering(g, -0.5).ranks);
    EXPECT_LE(MaxOutDegree(approx_dag), MaxOutDegree(core_dag) * 2);
  }
}

TEST(ApproxCore, HighEpsilonDegeneratesToDegreeLike) {
  // eps so large that round 0 removes everything: ordering = (degree, id),
  // i.e. exactly the degree ordering.
  const Graph g = BuildGraph(Rmat(8, 6.0, 11));
  const ApproxCoreResult result = ApproxCoreOrderingWithStats(g, 50000);
  EXPECT_EQ(result.rounds, 1);
  EXPECT_EQ(result.ordering.ranks, DegreeOrdering(g).ranks);
}

TEST(ApproxCore, RoundsDecreaseWithEpsilon) {
  const Graph g = BuildGraph(Rmat(10, 8.0, 13));
  const int rounds_low = ApproxCoreOrderingWithStats(g, -0.5).rounds;
  const int rounds_mid = ApproxCoreOrderingWithStats(g, 0.1).rounds;
  EXPECT_GT(rounds_low, rounds_mid);
  EXPECT_GE(rounds_mid, 1);
}

TEST(ApproxCore, TerminatesOnRegularGraphs) {
  // On a cycle every degree equals the average; eps < 0 relies on the
  // min-degree fallback for progress.
  const Graph g = BuildGraph(CycleGraph(40));
  const Ordering o = ApproxCoreOrdering(g, -0.5);
  EXPECT_TRUE(IsPermutation(o.ranks));
}

TEST(ApproxCore, TerminatesOnCompleteGraph) {
  const Graph g = BuildGraph(CompleteGraph(16));
  EXPECT_TRUE(IsPermutation(ApproxCoreOrdering(g, -0.9).ranks));
  EXPECT_TRUE(IsPermutation(ApproxCoreOrdering(g, 0.5).ranks));
}

TEST(ApproxCore, HandlesIsolatedVertices) {
  const Graph g = BuildUndirected({{0, 1}}, 5);
  EXPECT_TRUE(IsPermutation(ApproxCoreOrdering(g, -0.5).ranks));
}

// ---------------------------------------------------------------- k-core

TEST(KCore, CorenessMatchesReference) {
  for (const Graph& g : TestGraphs())
    EXPECT_EQ(CoreDecomposition(g), ReferenceCoreness(g));
}

TEST(KCore, CompleteGraphCoreness) {
  const Graph g = BuildGraph(CompleteGraph(7));
  for (EdgeId c : CoreDecomposition(g)) EXPECT_EQ(c, 6u);
}

TEST(KCore, PlantedCliqueHasHighCore) {
  EdgeList edges = PathGraph(100);
  PlantCliques(&edges, 100, 1, 10, 10, 3);
  const Graph g = BuildGraph(std::move(edges));
  const auto coreness = CoreDecomposition(g);
  const EdgeId max_core = *std::max_element(coreness.begin(), coreness.end());
  EXPECT_EQ(max_core, 9u);
}

TEST(KCore, MaxCorenessEqualsDegeneracy) {
  for (const Graph& g : TestGraphs()) {
    const auto coreness = CoreDecomposition(g);
    const EdgeId max_core =
        coreness.empty()
            ? 0
            : *std::max_element(coreness.begin(), coreness.end());
    EXPECT_EQ(max_core, Degeneracy(g));
  }
}

// ---------------------------------------------------------------- centrality

TEST(Centrality, HubRankedLast) {
  const Graph g = BuildGraph(StarGraph(20));
  const Ordering o = CentralityOrdering(g, 3);
  EXPECT_EQ(o.ranks[0], g.NumNodes() - 1);
}

TEST(Centrality, ValidatesIterations) {
  const Graph g = BuildGraph(PathGraph(5));
  EXPECT_THROW(CentralityOrdering(g, 0), std::invalid_argument);
}

TEST(Centrality, QualityBetweenCoreAndDegreeOnSocialGraph) {
  // The Section III-C claim, tested loosely: centrality is never wildly
  // worse than degree.
  EdgeList edges = Rmat(10, 8.0, 17);
  PlantCliques(&edges, 1024, 6, 6, 14, 18);
  const Graph g = BuildGraph(std::move(edges));
  const EdgeId centrality_quality = MaxOutDegree(
      Directionalize(g, CentralityOrdering(g, 3).ranks));
  const EdgeId degree_quality =
      MaxOutDegree(Directionalize(g, DegreeOrdering(g).ranks));
  EXPECT_LE(centrality_quality, degree_quality * 2);
}

// ---------------------------------------------------------------- heuristic

TEST(Heuristic, SmallGraphSelectsDegree) {
  const Graph g = BuildGraph(CompleteGraph(20));
  HeuristicConfig config;  // min_nodes = 1M
  EXPECT_FALSE(SelectOrdering(g, config).use_core_approx);
}

TEST(Heuristic, AssortativeLargeGraphSelectsCore) {
  // Two overlapping hubs with a large common neighborhood.
  EdgeList edges;
  const NodeId n = 2000;
  for (NodeId v = 2; v < 800; ++v) {
    edges.emplace_back(0, v);
    edges.emplace_back(1, v);
  }
  edges.emplace_back(0, 1);
  const Graph g = BuildUndirected(std::move(edges), n);
  HeuristicConfig config;
  config.min_nodes = 1000;
  const HeuristicDecision d = SelectOrdering(g, config);
  EXPECT_TRUE(d.use_core_approx);
  EXPECT_GT(d.common_fraction, 0.9);
  EXPECT_GT(d.a_ratio, 0.0015);
}

TEST(Heuristic, NonAssortativeSelectsDegree) {
  // One big hub whose neighbors are all leaves: a is tiny, no common
  // neighbors.
  const Graph g = BuildGraph(StarGraph(5000));
  HeuristicConfig config;
  config.min_nodes = 1000;
  const HeuristicDecision d = SelectOrdering(g, config);
  EXPECT_FALSE(d.use_core_approx);
  EXPECT_DOUBLE_EQ(d.common_fraction, 0.0);
}

TEST(Heuristic, ProbesMatchGraph) {
  const Graph g = BuildGraph(StarGraph(100));
  const HeuristicDecision d = SelectOrdering(g);
  EXPECT_EQ(d.max_degree_vertex, 0u);
  EXPECT_EQ(d.max_degree, 99u);
  EXPECT_EQ(d.a, 1u);  // neighbors are leaves
}

TEST(Heuristic, EmptyGraph) {
  const Graph g = BuildGraph({});
  const HeuristicDecision d = SelectOrdering(g);
  EXPECT_FALSE(d.use_core_approx);
}

TEST(Heuristic, AllIsolatedVertices) {
  // Nonzero node count, zero edges: every probe degenerates to zero and
  // the parallel degree argmax must not read past the (empty) adjacency.
  const Graph g = BuildUndirected({}, 500);
  const HeuristicDecision d = SelectOrdering(g);
  EXPECT_EQ(d.max_degree, 0u);
  EXPECT_EQ(d.max_degree_vertex, 0u);  // id tiebreak on all-equal degrees
  EXPECT_EQ(d.a, 0u);
  EXPECT_DOUBLE_EQ(d.common_fraction, 0.0);
  EXPECT_FALSE(d.use_core_approx);
}

TEST(Heuristic, ParallelArgMaxTiebreaksByLowestId) {
  // Two disjoint stars of equal degree: the reduction must pick the
  // lower-id center deterministically regardless of thread count.
  EdgeList edges;
  for (NodeId v = 0; v < 40; ++v) edges.emplace_back(50, 100 + v);
  for (NodeId v = 0; v < 40; ++v) edges.emplace_back(51, 200 + v);
  const Graph g = BuildUndirected(std::move(edges), 300);
  for (int rep = 0; rep < 8; ++rep) {
    const HeuristicDecision d = SelectOrdering(g);
    EXPECT_EQ(d.max_degree_vertex, 50u);
    EXPECT_EQ(d.max_degree, 40u);
  }
}

TEST(Heuristic, RecordsProbeTelemetry) {
  const Graph g = BuildGraph(StarGraph(100));
  TelemetryRegistry telemetry;
  const HeuristicDecision d =
      SelectOrdering(g, HeuristicConfig{}, &telemetry);
  EXPECT_DOUBLE_EQ(telemetry.Gauge("heuristic.max_degree"),
                   static_cast<double>(d.max_degree));
  EXPECT_DOUBLE_EQ(telemetry.Gauge("heuristic.a"),
                   static_cast<double>(d.a));
  EXPECT_DOUBLE_EQ(telemetry.Gauge("heuristic.use_core_approx"), 0.0);
}

TEST(Heuristic, SingleVertexGraph) {
  const Graph g = BuildUndirected({}, 1);
  const HeuristicDecision d = SelectOrdering(g);
  EXPECT_EQ(d.max_degree, 0u);
  EXPECT_FALSE(d.use_core_approx);
}

TEST(Heuristic, ARatioThresholdBoundary) {
  // A graph engineered so a/|V| straddles the threshold as config varies.
  EdgeList edges;
  const NodeId n = 1000;
  for (NodeId v = 1; v <= 10; ++v) edges.emplace_back(0, v);
  for (NodeId v = 11; v < 30; ++v) edges.emplace_back(1, v);
  const Graph g = BuildUndirected(std::move(edges), n);
  HeuristicConfig strict;
  strict.min_nodes = 100;
  strict.a_ratio_threshold = 0.5;          // unattainable
  strict.common_fraction_threshold = 1.1;  // unattainable
  EXPECT_FALSE(SelectOrdering(g, strict).use_core_approx);
  HeuristicConfig lenient = strict;
  lenient.a_ratio_threshold = 0.0001;
  EXPECT_TRUE(SelectOrdering(g, lenient).use_core_approx);
}

}  // namespace
}  // namespace pivotscale
