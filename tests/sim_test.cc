// Tests for the simulation substrate: scheduler/scaling simulation, cache
// simulation, and the memory model.
#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/generators.h"
#include "pivot/count.h"
#include "sim/cache_sim.h"
#include "sim/mem_model.h"
#include "sim/scaling_sim.h"
#include "sim/work_trace.h"
#include "test_helpers.h"

namespace pivotscale {
namespace {

using testing_helpers::MakeDag;

WorkTrace UniformTrace(std::size_t n, std::uint64_t nanos_each) {
  WorkTrace trace;
  trace.roots.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    trace.roots[i] = {static_cast<NodeId>(i), nanos_each, nanos_each};
  return trace;
}

// ---------------------------------------------------------------- work trace

TEST(WorkTrace, Totals) {
  WorkTrace trace;
  trace.roots = {{0, 10, 1}, {1, 20, 2}, {2, 5, 3}};
  EXPECT_EQ(trace.TotalNanos(), 35u);
  EXPECT_EQ(trace.TotalEdgeOps(), 6u);
  EXPECT_EQ(trace.MaxNanos(), 20u);
}

// ---------------------------------------------------------------- scaling sim

TEST(ScalingSim, OneThreadMakespanIsSerialTime) {
  const WorkTrace trace = UniformTrace(1000, 1000);
  ScalingSimConfig config;
  config.num_threads = 1;
  const ScalingSimResult result = SimulateScaling(trace, config);
  // Chunked accumulation order differs from the serial sum; allow FP slack.
  EXPECT_NEAR(result.makespan_seconds, result.serial_seconds,
              result.serial_seconds * 1e-9);
}

TEST(ScalingSim, UniformWorkScalesLinearly) {
  const WorkTrace trace = UniformTrace(64000, 1000);
  for (int threads : {2, 4, 8, 16, 32, 64}) {
    ScalingSimConfig config;
    config.num_threads = threads;
    const double speedup = SimulateSpeedup(trace, config);
    EXPECT_NEAR(speedup, threads, threads * 0.05) << threads;
  }
}

TEST(ScalingSim, MakespanBounds) {
  // Greedy scheduling bound: max(max_task, total/T) <= makespan
  // <= total/T + chunk_max.
  WorkTrace trace = UniformTrace(5000, 500);
  trace.roots[17].nanos = 4000000;  // one heavy root
  trace.roots[17].edge_ops = 4000000;
  ScalingSimConfig config;
  config.num_threads = 8;
  const ScalingSimResult result = SimulateScaling(trace, config);
  const double total = result.serial_seconds;
  // The deterministic work model rescales per-root seconds to unit shares;
  // derive the heavy task's modeled seconds the same way.
  const double heavy_units = 4000000 + config.per_root_overhead_units;
  const double total_units =
      4999.0 * (500 + config.per_root_overhead_units) + heavy_units;
  const double max_task = total * heavy_units / total_units;
  EXPECT_GE(result.makespan_seconds,
            std::max(max_task, total / 8) - 1e-12);
  EXPECT_LE(result.makespan_seconds, total / 8 + max_task * 2 + 1e-12);
}

TEST(ScalingSim, HeavyRootLimitsSpeedup) {
  // One root holding half the work bounds speedup at ~2 regardless of T.
  WorkTrace trace = UniformTrace(1000, 1000);
  trace.roots[0].nanos = 999000;
  trace.roots[0].edge_ops = 999000;
  ScalingSimConfig config;
  config.num_threads = 64;
  config.chunk_size = 1;
  EXPECT_LT(SimulateSpeedup(trace, config), 2.3);
}

TEST(ScalingSim, StaticScheduleWorseOnSkewedPrefix) {
  // All heavy roots at the front of the id range: a static block partition
  // assigns them to one thread; dynamic spreads them.
  WorkTrace trace = UniformTrace(6400, 10);
  for (std::size_t i = 0; i < 100; ++i) {
    trace.roots[i].nanos = 50000;
    trace.roots[i].edge_ops = 50000;
  }
  ScalingSimConfig dynamic_config;
  dynamic_config.num_threads = 16;
  dynamic_config.chunk_size = 4;
  ScalingSimConfig static_config = dynamic_config;
  static_config.static_schedule = true;
  EXPECT_GT(SimulateSpeedup(trace, dynamic_config),
            SimulateSpeedup(trace, static_config) * 1.5);
}

TEST(ScalingSim, MemoryFloorCapsDenseScaling) {
  // Aggregate footprint >> cache: speedup plateaus near
  // 1 / memory_time_fraction; compact footprint keeps scaling.
  const WorkTrace trace = UniformTrace(64000, 1000);
  ScalingSimConfig big;
  big.num_threads = 64;
  big.per_thread_footprint_bytes = std::size_t{64} << 20;  // 4 GiB aggregate
  big.cache_capacity_bytes = std::size_t{256} << 20;
  big.memory_time_fraction = 0.05;
  const double capped = SimulateSpeedup(trace, big);
  EXPECT_LT(capped, 1.0 / 0.05 * 1.3);

  ScalingSimConfig small = big;
  small.per_thread_footprint_bytes = 1 << 20;  // 64 MiB aggregate: fits
  EXPECT_GT(SimulateSpeedup(trace, small), capped * 1.5);
}

TEST(ScalingSim, BusyCovLowOnUniformWork) {
  const WorkTrace trace = UniformTrace(64000, 1000);
  ScalingSimConfig config;
  config.num_threads = 64;
  const ScalingSimResult result = SimulateScaling(trace, config);
  EXPECT_LT(result.busy_cov, 0.05);
}

TEST(ScalingSim, ValidatesArguments) {
  const WorkTrace trace = UniformTrace(10, 1);
  ScalingSimConfig config;
  config.num_threads = 0;
  EXPECT_THROW(SimulateScaling(trace, config), std::invalid_argument);
  config.num_threads = 2;
  config.chunk_size = 0;
  EXPECT_THROW(SimulateScaling(trace, config), std::invalid_argument);
}

TEST(ScalingSim, RealTraceFromCounter) {
  // End-to-end: capture a trace from the actual counter and simulate.
  EdgeList edges = Rmat(10, 6.0, 3);
  PlantCliques(&edges, 1024, 4, 6, 12, 4);
  const Graph g = BuildGraph(std::move(edges));
  const Graph dag = MakeDag(g, OrderingKind::kCore);
  CountOptions options;
  options.k = 6;
  options.collect_work_trace = true;
  const CountResult count = CountCliques(dag, options);
  ScalingSimConfig config;
  config.num_threads = 16;
  const double speedup = SimulateSpeedup(count.work_trace, config);
  EXPECT_GT(speedup, 1.0);
  EXPECT_LE(speedup, 16.05);
}

// ---------------------------------------------------------------- cache sim

TEST(CacheSim, ColdMissesThenHits) {
  CacheSim cache(1024, 4, 64);
  cache.Access(0);
  cache.Access(0);
  cache.Access(4);  // same line
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 2u);
}

TEST(CacheSim, LruEviction) {
  // Direct-mapped 2-line cache, 64 B lines: lines alternate sets.
  CacheSim cache(128, 1, 64);
  cache.Access(0);     // set 0 miss
  cache.Access(128);   // set 0 miss, evicts line 0
  cache.Access(0);     // set 0 miss again
  EXPECT_EQ(cache.misses(), 3u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(CacheSim, AssociativityHoldsWorkingSet) {
  // 4-way set: 4 conflicting lines all fit; a 5th thrashes.
  CacheSim cache(4 * 64, 4, 64);  // 1 set, 4 ways
  for (int rep = 0; rep < 3; ++rep)
    for (std::uint64_t line = 0; line < 4; ++line)
      cache.Access(line * 64);
  EXPECT_EQ(cache.misses(), 4u);  // cold only
  EXPECT_EQ(cache.hits(), 8u);
}

TEST(CacheSim, ThrashingBeyondAssociativity) {
  CacheSim cache(4 * 64, 4, 64);  // 1 set, 4 ways
  for (int rep = 0; rep < 4; ++rep)
    for (std::uint64_t line = 0; line < 5; ++line)
      cache.Access(line * 64);
  // Cyclic access of 5 lines through a 4-way LRU set misses always.
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 20u);
}

TEST(CacheSim, SmallFootprintFitsLargeSpreads) {
  // The Section VI-D effect in miniature: a loop over 1000 distinct lines
  // fits a 1 MiB cache (high hit rate) but a loop over 100k lines does not.
  CacheSim cache(1 << 20, 8, 64);
  for (int rep = 0; rep < 4; ++rep)
    for (std::uint64_t i = 0; i < 1000; ++i) cache.Access(i * 64);
  const double compact_miss_rate = cache.MissRate();
  cache.Reset();
  for (int rep = 0; rep < 4; ++rep)
    for (std::uint64_t i = 0; i < 100000; ++i) cache.Access(i * 64);
  EXPECT_LT(compact_miss_rate, 0.3);
  EXPECT_GT(cache.MissRate(), 0.9);
}

TEST(CacheSim, ResetClearsState) {
  CacheSim cache(1024, 2, 64);
  cache.Access(0);
  cache.Reset();
  EXPECT_EQ(cache.accesses(), 0u);
  cache.Access(0);
  EXPECT_EQ(cache.misses(), 1u);  // cold again after reset
}

TEST(CacheSim, ValidatesGeometry) {
  EXPECT_THROW(CacheSim(1000, 4, 64), std::invalid_argument);  // not pow2
  EXPECT_THROW(CacheSim(0, 4, 64), std::invalid_argument);
  EXPECT_THROW(CacheSim(1024, 0, 64), std::invalid_argument);
}

// ---------------------------------------------------------------- mem model

TEST(MemModel, DenseScalesWithV) {
  const auto small = EstimateStructureBytes(SubgraphKind::kDense, 1000, 50);
  const auto large =
      EstimateStructureBytes(SubgraphKind::kDense, 1000000, 50);
  EXPECT_GT(large, small * 100);
}

TEST(MemModel, CompactStructuresIndependentOfV) {
  const auto remap_small =
      EstimateStructureBytes(SubgraphKind::kRemap, 1000, 50);
  const auto remap_large =
      EstimateStructureBytes(SubgraphKind::kRemap, 1000000, 50);
  EXPECT_EQ(remap_small, remap_large);
}

TEST(MemModel, DenseDominatesOnLargeGraphs) {
  for (auto kind : {SubgraphKind::kSparse, SubgraphKind::kRemap}) {
    EXPECT_GT(EstimateStructureBytes(SubgraphKind::kDense, 2000000, 100),
              10 * EstimateStructureBytes(kind, 2000000, 100));
  }
}

TEST(MemModel, AggregatePrefersMeasured) {
  EXPECT_EQ(AggregateWorkspaceBytes(SubgraphKind::kRemap, 1000, 10, 8,
                                    /*measured_per_thread=*/500),
            4000u);
  EXPECT_EQ(AggregateWorkspaceBytes(SubgraphKind::kRemap, 1000, 10, 8, 0),
            8 * EstimateStructureBytes(SubgraphKind::kRemap, 1000, 10));
}

}  // namespace
}  // namespace pivotscale
